"""The parts-explosion problem with aggregation (Section 6 of the paper).

One generic HiLog program computes, for every machine registered in the
``assoc`` relation, how many copies of each (transitive) subpart a part
contains — the paper's example being a bicycle with two wheels of 47 spokes
each, hence 94 spokes in total.  The recursion goes *through* the sum
aggregate, which is legal here because each part hierarchy is acyclic:
this is the aggregate analogue of modular stratification.

Run with::

    python examples/parts_explosion.py
"""

from repro import format_term, parse_program
from repro.core.modular import modularly_stratified_for_hilog, perfect_model_for_hilog
from repro.workloads.parts import bicycle_parts_program, parts_explosion_program, random_hierarchy


def show_contains(model, machine):
    rows = []
    for atom in sorted(model.true, key=repr):
        text = format_term(atom)
        if text.startswith("contains(%s," % machine):
            rows.append("    " + text)
    return rows


def main():
    program = bicycle_parts_program()
    print("The parts-explosion program (shared rules):")
    for rule in program.proper_rules():
        print("   ", rule)

    result = modularly_stratified_for_hilog(program)
    print("\nModularly stratified through aggregation:", result.is_modularly_stratified)

    model = perfect_model_for_hilog(program)
    print("\nContainment counts for the bicycle:")
    for row in show_contains(model, "bike"):
        print(row)
    print("  -> a bicycle has 94 spokes, as in the paper.")

    # A second machine, sharing nothing with the bicycle, evaluated by the
    # same rules: this is the reuse the paper's assoc relation is about.
    print("\nA randomly generated appliance evaluated by the same rules:")
    triples = random_hierarchy(levels=3, parts_per_level=3, fanout=2, seed=7, prefix="unit")
    appliance = parts_explosion_program({"appliance": {"appliance_parts": triples}})
    appliance_model = perfect_model_for_hilog(appliance)
    for row in show_contains(appliance_model, "appliance")[:8]:
        print(row)
    print("    ... (%d containment facts in total)"
          % len(show_contains(appliance_model, "appliance")))


if __name__ == "__main__":
    main()
