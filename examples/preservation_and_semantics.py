"""Walk through the paper's semantic examples (Sections 3-5).

* Example 3.1/3.2 — the classical well-founded and stable semantics.
* Example 4.1 — a normal program whose HiLog semantics differs from its
  normal semantics because it is not domain independent.
* Example 5.1 — a HiLog program that is domain independent but *not*
  preserved under extensions, showing that preservation under extensions is
  a strictly stronger, genuinely second-order property.
* Theorem 5.3/5.4 — range-restricted programs are preserved.

Run with::

    python examples/preservation_and_semantics.py
"""

from repro import (
    check_domain_independence,
    check_preservation_under_extensions,
    format_term,
    hilog_well_founded_model,
    normal_stable_models,
    normal_well_founded_model,
    parse_program,
    parse_term,
)


def show_model(model, atoms):
    return ", ".join("%s=%s" % (text, model.value(parse_term(text))) for text in atoms)


def main():
    print("Example 3.1 (well-founded model, three-valued):")
    example31 = parse_program("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.")
    model = normal_well_founded_model(example31)
    print("   ", show_model(model, ["p", "q", "r", "s", "t", "u"]))

    print("\nExample 3.2 (two stable models, everything undefined in the WFS):")
    example32 = parse_program("p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.")
    for stable in normal_stable_models(example32):
        print("    stable model:", sorted(format_term(a) for a in stable.true))

    print("\nExample 4.1 (HiLog vs normal semantics):")
    example41 = parse_program("p :- not q(X). q(a).")
    print("    normal semantics:  p is",
          normal_well_founded_model(example41).value(parse_term("p")))
    print("    HiLog semantics:   p is",
          hilog_well_founded_model(example41, grounding="universe").value(parse_term("p")))
    print("    (the program is not range restricted, so Theorem 4.1 does not apply)")

    print("\nExample 5.1 (preservation under extensions is stronger than domain independence):")
    example51 = parse_program("p :- X(Y), Y(X).")
    extension = parse_program("q(r). r(q).")
    domain = check_domain_independence(example51, trials=3)
    preservation = check_preservation_under_extensions(example51, extensions=[extension])
    print("    domain independent:", domain.domain_independent)
    print("    preserved under extensions:", preservation.preserved,
          "(counterexample Q = { q(r). r(q). })")

    print("\nTheorem 5.3 (range-restricted HiLog programs are preserved, WFS):")
    game = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y). game(m). m(a, b). m(b, c)."
    )
    report = check_preservation_under_extensions(game, trials=8, seed=4)
    print("    %d random disjoint extensions checked, preserved = %s"
          % (report.trials, report.preserved))


if __name__ == "__main__":
    main()
