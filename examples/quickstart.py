"""Quickstart: parse a HiLog program with negation and inspect its semantics.

Run with::

    python examples/quickstart.py

The example walks through the basic API surface:

1. parse a HiLog program (the parameterized win/move game of Example 6.3 of
   the paper),
2. compute its HiLog well-founded model,
3. check the syntactic classes the paper introduces (strong range
   restriction, Datahilog, modular stratification for HiLog),
4. answer a query with the magic-sets (query-driven) evaluator.
"""

from repro import (
    answer_query,
    classify_rule,
    format_term,
    hilog_well_founded_model,
    is_datahilog,
    is_strongly_range_restricted,
    modularly_stratified_for_hilog,
    parse_program,
    parse_query,
)

PROGRAM_TEXT = """
    % Example 6.3 of the paper: one generic set of rules, many games.
    winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).

    game(chess_endgame).
    game(nim).

    chess_endgame(p0, p1). chess_endgame(p1, p2). chess_endgame(p2, p3).
    nim(s3, s2). nim(s2, s1). nim(s1, s0).
"""


def main():
    program = parse_program(PROGRAM_TEXT)

    print("The program:")
    for rule in program.rules:
        print("   ", rule)

    print("\nSyntactic classes from the paper:")
    print("    strongly range restricted (Def 5.6):", is_strongly_range_restricted(program))
    print("    Datahilog (Def 6.7):", is_datahilog(program))
    print("    rule classes:", {str(rule.head_predicate()): classify_rule(rule)
                                for rule in program.proper_rules()})

    result = modularly_stratified_for_hilog(program)
    print("\nModularly stratified for HiLog (Fig. 1 procedure):",
          result.is_modularly_stratified)

    model = hilog_well_founded_model(program)
    print("\nHiLog well-founded model (winning positions):")
    for atom in sorted(model.true, key=repr):
        if "winning" in format_term(atom):
            print("    true:", format_term(atom))
    print("    (everything else about `winning` is false; the model is total:",
          model.is_total(), ")")

    print("\nQuery-driven (magic sets) evaluation of ?- winning(nim)(X):")
    for answer in answer_query(program, parse_query("winning(nim)(X)")):
        print("    ", format_term(answer))


if __name__ == "__main__":
    main()
