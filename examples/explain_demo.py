"""Why is this fact true?  Derivation provenance with ``session.explain``.

Run with::

    python examples/explain_demo.py

A deductive database that only answers *what* is derivable leaves the user
to reverse-engineer *why*.  ``DatabaseSession.explain(fact)`` reconstructs
a derivation tree for any true atom — the rule instance that produced it
and, recursively, the body facts down to the EDB — and every tree is
re-verifiable against the model with
:func:`repro.obs.explain.verify_derivation`.

The example walks three cases:

1. a stratified transitive-closure chain, where ``explain`` recovers the
   hop-by-hop path behind ``tc(n0, n4)``,
2. a false atom, which yields a one-node ``"false"`` tree rather than an
   exception,
3. a win/move game with a cycle, where ``explain`` on an *undefined* atom
   exhibits the negation loop that the well-founded semantics refuses to
   resolve — the concrete cycle of atoms each hanging on the next.
"""

from repro.db import DatabaseSession
from repro.obs.explain import verify_derivation


def show(tree, indent=0):
    pad = "    " * indent
    label = tree.kind
    if tree.rule is not None:
        label += "  via  %s" % (tree.rule,)
    if tree.meta:
        extras = ", ".join("%s=%s" % item for item in sorted(tree.meta.items()))
        label += "  [%s]" % extras
    print("%s%s  (%s)" % (pad, tree.atom, label))
    for child in tree.children:
        show(child, indent + 1)


def main():
    print("1. A true atom in a stratified program")
    print("   -----------------------------------")
    session = DatabaseSession("""
        e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4).
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
    """)
    tree = session.explain("tc(n0, n4)")
    show(tree)
    verify_derivation(tree, session.store, edb=session.edb())
    print("   verified: every rule instance re-matches, every leaf is EDB\n")

    print("2. A false atom")
    print("   ------------")
    tree = session.explain("tc(n4, n0)")
    show(tree)
    assert tree.kind == "false"
    print()

    print("3. An undefined atom in a win/move game")
    print("   ------------------------------------")
    game = DatabaseSession("""
        winning(X) :- move(X, Y), not winning(Y).
        move(a, b). move(b, a).   % a pure 2-cycle: both undefined
        move(n0, n1). move(n1, n2).
    """)
    assert game.value("winning(a)") == "undefined"
    tree = game.explain("winning(a)")
    show(tree)
    verify_derivation(tree, game.store, edb=game.edb(),
                      undefined=game.undefined)
    print("   verified: the witness is a real negation loop — winning(a)")
    print("   hangs on winning(b), which hangs back on winning(a).")

    # True atoms in the same three-valued model still explain normally.
    tree = game.explain("winning(n1)")
    assert tree.kind == "rule"
    print("\n   winning(n1) stays two-valued and gets an ordinary tree:")
    show(tree, indent=1)


if __name__ == "__main__":
    main()
