"""Win/move games over cyclic graphs: three-valued models, fast.

Run with::

    python examples/win_move_game.py

Win/move over a graph *with cycles* is the paper's flagship example of a
program between the stratified and arbitrary normal classes: no stratum
order resolves ``winning(X) :- move(X, Y), not winning(Y)`` because the
predicate depends on itself through negation, yet its well-founded model is
perfectly well defined — and genuinely three-valued, with every pure cycle
left *undefined*.

The example walks through the alternating-fixpoint machinery added for this
class:

1. build a game graph mixing a line (total subgame) with a cycle
   (undefined subgame) and an escape edge,
2. compute the well-founded model with ``well_founded_for_hilog`` under
   both strategies — the grounding oracle and the semi-naive alternating
   fixpoint on the register machine — and check they agree,
3. open a ``DatabaseSession`` on the same program (it routes to
   well-founded mode automatically) and watch the partition shift as moves
   are inserted and retracted.
"""

from repro import parse_program, well_founded_for_hilog
from repro.db import DatabaseSession
from repro.engine.seminaive import seminaive_well_founded_detailed
from repro.hilog.pretty import format_term

PROGRAM_TEXT = """
    winning(X) :- move(X, Y), not winning(Y).

    % A line: n0 -> n1 -> n2 (n2 is stuck, so n1 wins and n0 loses).
    move(n0, n1). move(n1, n2).

    % A 2-cycle: neither a nor b can force a win -- both undefined.
    move(a, b). move(b, a).

    % c can enter the cycle: its fate is undefined too.
    move(c, a).
"""


def show(model, label):
    winning = sorted(
        (a for a in model.true if "winning" in format_term(a)), key=repr
    )
    undefined = sorted(model.undefined, key=repr)
    print("%s:" % label)
    print("    true:     ", ", ".join(map(format_term, winning)) or "(none)")
    print("    undefined:", ", ".join(map(format_term, undefined)) or "(none)")
    print("    total model:", model.is_total())


def main():
    program = parse_program(PROGRAM_TEXT)
    print("The program:")
    for rule in program.rules:
        print("   ", rule)
    print()

    # The two strategies compute the same three-valued model; the seminaive
    # one never materializes a ground program.
    oracle = well_founded_for_hilog(program)
    fast = well_founded_for_hilog(program, strategy="seminaive")
    assert oracle.true == fast.true and oracle.undefined == fast.undefined
    show(fast, "Well-founded model (seminaive == ground oracle)")

    detailed = seminaive_well_founded_detailed(program)
    print("    engine=%s, alternations=%d, iterations=%d\n"
          % (detailed.engine, detailed.alternations, detailed.iterations))

    # Sessions route non-stratified programs to well-founded mode and keep
    # the partition current under updates.
    session = DatabaseSession(program)
    print("Session mode:", session.mode)
    print("    winning(a) is", session.value("winning(a)"))

    print("\nBreak the cycle: retract move(b, a), so b is stuck...")
    session.retract("move(b, a).")
    print("    winning(a) is", session.value("winning(a)"),
          "| winning(b) is", session.value("winning(b)"),
          "| total:", session.is_total())

    print("Close it again and give b an escape to a fresh sink...")
    session.update(inserts="move(b, a). move(b, out).", retracts=())
    print("    winning(b) is", session.value("winning(b)"),
          "| winning(a) is", session.value("winning(a)"),
          "| total:", session.is_total())
    assert session.check()
    print("\nsession.check() verified the maintained partition against a "
          "from-scratch recomputation.")


if __name__ == "__main__":
    main()
