"""Incremental deductive-database sessions.

A DatabaseSession materializes the perfect model of a HiLog program once
and then maintains it under fact insertion/retraction — counting for
non-recursive strata, delete-rederive for recursive and negation strata —
instead of recomputing from scratch on every change.

Run with::

    PYTHONPATH=src python examples/incremental_session.py
"""

from repro import DatabaseSession

session = DatabaseSession("""
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    reachable(Y) :- tc(root, Y).
    orphan(X) :- node(X), not reachable(X), X \\= root.
    node(root). node(a). node(b). node(c).
    e(root, a). e(a, b).
""")

print("mode:", session.mode, " strategies:", session.strategies())
print("orphans initially:", session.query("orphan(X)"))

summary = session.insert("e(b, c).")
print("insert e(b, c):", len(summary.added), "atoms became true")
print("orphans now:", session.query("orphan(X)"))

with session.transaction() as txn:   # batched; atomic; rolls back on error
    txn.retract("e(a, b).")
    txn.insert("e(root, c).")
print("after rewiring, reachable:", session.query("reachable(X)"))
print("orphans:", session.query("orphan(X)"))

session.check()   # maintained model == from-scratch recomputation
print("integrity check passed;", session.stats()["updates"], "updates applied")
