"""Static analysis: lint a HiLog program before running it.

Run with::

    python examples/lint_demo.py

The example walks the linter's surface:

1. lint a program with deliberate defects and read the structured report
   (stable codes, source spans, fix hints),
2. render the same report as JSON (the ``--format json`` document of
   ``python -m repro.lint``, validated against the published schema),
3. filter findings with select/ignore,
4. open a :class:`~repro.db.session.DatabaseSession` under
   ``validate="strict"`` and watch a broken program get rejected at load
   time — before any materialization work.
"""

import json

from repro.db.session import DatabaseSession
from repro.hilog.errors import DiagnosticError
from repro.lint import lint_source, validate_report

# A program with one defect per severity: the second tc rule is subsumed
# (W302), `Extra` is a singleton (W201), and the last rule's head variable
# Z is unbound (E101 — the engine would reject this at evaluation time).
DEFECTIVE = """
    edge(a, b). edge(b, c).
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- edge(X, Y), tc(Y, Z).
    tc(X, Y) :- edge(X, Y), edge(X, Extra).
    broken(Z) :- edge(X, Y).
"""

CLEAN = """
    edge(a, b). edge(b, c).
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""


def main():
    report = lint_source(DEFECTIVE, file="defective.hilog")
    print("Lint report (text):")
    for line in report.to_text().splitlines():
        print("   ", line)

    print("\nThe same report as JSON (schema-validated):")
    document = validate_report(report.to_json())
    print("    %d diagnostics, %d error(s), %d warning(s)"
          % (len(document["diagnostics"]), document["errors"],
             document["warnings"]))
    print("   ", json.dumps(document["diagnostics"][0], sort_keys=True))

    print("\nOnly the errors (select='E'):")
    for diagnostic in report.filter(select=["E"]):
        print("    %s: %s" % (diagnostic.location(), diagnostic.code))

    print("\nOpening a strict session on the defective program:")
    try:
        DatabaseSession(DEFECTIVE, validate="strict")
    except DiagnosticError as error:
        print("    rejected at load time: %d error(s), %d warning(s)"
              % (len(error.diagnostics.errors),
                 len(error.diagnostics.warnings)))

    print("\nOpening a strict session on the clean program:")
    session = DatabaseSession(CLEAN, validate="strict")
    print("    accepted; lint summary in stats():",
          session.stats()["lint"])
    print("    tc(a, c) is", session.value("tc(a, c)"))


if __name__ == "__main__":
    main()
