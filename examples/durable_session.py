"""Durable deductive-database sessions: WAL, checkpoints, crash recovery.

Giving a DatabaseSession a ``path`` turns it into a single-writer durable
database: every insert/retract batch is framed into a write-ahead log
*before* it is applied, snapshots of the materialized model are
checkpointed atomically on the side, and ``DatabaseSession.open(path)``
recovers the session from the newest valid snapshot plus the committed
WAL tail — surviving crashes at any point, including mid-checkpoint.

This demo crashes the process the rude way (dropping the descriptors
without a final checkpoint, exactly what ``kill -9`` leaves behind) and
shows recovery producing the same answers, including the *undefined*
partition of a non-stratified program's well-founded model.

Run with::

    PYTHONPATH=src python examples/durable_session.py
"""

import os
import shutil
import tempfile

from repro import DatabaseSession

base = tempfile.mkdtemp(prefix="repro-durable-")
data_dir = os.path.join(base, "data")

# A program with a well-founded twist: jobs depend on each other, a pair
# of mutually-suspicious audits goes *undefined* rather than true/false.
session = DatabaseSession("""
    needs(build, fetch). needs(test, build). needs(ship, test).
    runnable(X) :- job(X), not blocked(X).
    blocked(X) :- needs(X, Y), not done(Y).
    job(fetch). job(build). job(test). job(ship).
    audit(a, b). audit(b, a).
    flagged(X) :- audit(X, Y), not flagged(Y).
""", path=data_dir, fsync="always", checkpoint_every=4)

print("fresh durable session at", data_dir)
print("  runnable:", session.query("runnable(X)"))
print("  undefined audit atoms:", sorted(map(str, session.undefined)))

# Committed work: each batch hits the WAL before the model.
session.insert("done(fetch).")
session.insert("done(build).")
session.retract("needs(ship, test).")   # ship no longer waits on test
print("after churn, runnable:", session.query("runnable(X)"))
expected = session.query("runnable(X)")
expected_undefined = sorted(map(str, session.undefined))
stats = session.stats()["durability"]
print("  wal txns: %d, snapshots kept: %d"
      % (stats["wal_last_txn"], stats["snapshots"]))

# Crash: descriptors dropped, no goodbye checkpoint, lock released the
# way process death releases it.  (session.close() is the polite path.)
session._durable.abandon()
print("crashed (no final checkpoint)")

# Recovery: newest valid snapshot + committed WAL tail, then verify the
# recovered model against a from-scratch recomputation.
recovered = DatabaseSession.open(data_dir, verify=True)
info = recovered.stats()["durability"]
print("recovered: snapshot txn %s, %d txn(s) replayed"
      % (info["snapshot_txn"], info["replayed_txns"]))
assert recovered.query("runnable(X)") == expected
assert sorted(map(str, recovered.undefined)) == expected_undefined
print("  runnable:", recovered.query("runnable(X)"))
print("  undefined audit atoms:", sorted(map(str, recovered.undefined)))

# The recovered session is live — and its updates are durable too.
recovered.insert("done(test).")
print("after recovery-side insert, runnable:", recovered.query("runnable(X)"))
recovered.close()   # final checkpoint + clean WAL close

shutil.rmtree(base)
print("ok")
