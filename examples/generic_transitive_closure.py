"""Generic transitive closure — the paper's motivating Example 2.1/5.2.

HiLog lets one write a *single* transitive-closure routine parameterized by
the relation to close, instead of one copy per relation.  The example also
demonstrates the pitfall the paper warns about in Example 5.2: with the
unguarded rules the set of predicates to consider (``tc(e)``, ``tc(tc(e))``,
...) is infinite, while the guarded, strongly range-restricted version is
perfectly well behaved — and queries against it can be answered with the
magic-sets evaluator touching only the queried relation.

Run with::

    python examples/generic_transitive_closure.py
"""

from repro import (
    answer_query,
    classify_rule,
    format_term,
    hilog_well_founded_model,
    parse_program,
    parse_query,
)
from repro.hilog.errors import GroundingError
from repro.engine.grounding import relevant_ground_program

GUARDED = """
    % Strongly range restricted: the graph/1 guard binds the relation name.
    tc(G)(X, Y) :- graph(G), G(X, Y).
    tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).

    graph(flights).
    graph(roads).

    flights(nyc, chicago). flights(chicago, denver). flights(denver, sfo).
    roads(amsterdam, utrecht). roads(utrecht, arnhem).
"""

UNGUARDED = """
    % Example 5.2: range restricted, but not strongly range restricted.
    tc(G)(X, Y) :- G(X, Y).
    tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).
    flights(nyc, chicago). flights(chicago, denver).
"""


def main():
    guarded = parse_program(GUARDED)
    print("Guarded generic transitive closure (strongly range restricted):")
    for rule in guarded.proper_rules():
        print("   ", rule, "  [%s]" % classify_rule(rule))

    model = hilog_well_founded_model(guarded)
    print("\nAll derived tc facts:")
    for atom in sorted(model.true, key=repr):
        if format_term(atom).startswith("tc("):
            print("    ", format_term(atom))

    print("\nQuery-driven evaluation of ?- tc(flights)(nyc, Where):")
    for answer in answer_query(guarded, parse_query("tc(flights)(nyc, Where)")):
        print("    ", format_term(answer))

    print("\nNow the unguarded version of Example 5.2:")
    unguarded = parse_program(UNGUARDED)
    for rule in unguarded.proper_rules():
        print("   ", rule, "  [%s]" % classify_rule(rule))
    print("Trying to materialize it bottom-up (the relation argument is unbound,")
    print("so tc(flights), tc(tc(flights)), ... would all have to be considered):")
    try:
        relevant_ground_program(unguarded, max_term_depth=12)
    except GroundingError as error:
        print("    GroundingError:", str(error)[:100], "...")


if __name__ == "__main__":
    main()
