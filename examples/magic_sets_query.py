"""Magic sets for modularly stratified HiLog programs (Section 6.1).

Builds a game program over several independent move relations, shows the
declarative magic-sets rewriting for a query (the structure of Example 6.6),
and compares query-driven evaluation against full bottom-up materialization:
the query about one game never touches the other games' positions.

Run with::

    python examples/magic_sets_query.py
"""

import time

from repro import (
    format_term,
    hilog_well_founded_model,
    magic_evaluate,
    magic_rewrite,
    parse_query,
)
from repro.workloads.games import multi_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges


def main():
    edge_lists = [chain_edges(12, "p")] + [
        random_dag_edges(60, 120, seed=seed, prefix="g%d_" % seed) for seed in range(6)
    ]
    program, relations = multi_game_program(edge_lists)
    query = parse_query("w(move0)(p0)")

    print("Game program over %d move relations, %d facts in total."
          % (len(relations), len(program.facts())))

    print("\nThe magic-sets rewriting for ?- w(move0)(p0) (Example 6.6 style):")
    rewritten = magic_rewrite(program, query)
    for rule in (rewritten.seed_facts + rewritten.supplementary_rules)[:6]:
        print("   ", rule)
    print("    ... (%d rewritten rules in total)" % rewritten.rule_count())

    print("\nQuery-driven evaluation vs full materialization:")
    start = time.perf_counter()
    magic_result = magic_evaluate(program, query)
    magic_seconds = time.perf_counter() - start

    start = time.perf_counter()
    full_model = hilog_well_founded_model(program)
    full_seconds = time.perf_counter() - start

    print("    magic: %5d relevant atoms, %.4fs, answers = %s"
          % (len(magic_result.relevant_atoms), magic_seconds,
             [format_term(a) for a in magic_result.answers]))
    print("    full:  %5d atoms materialized, %.4fs" % (len(full_model.base), full_seconds))
    print("    both agree that w(move0)(p0) is %s"
          % full_model.value(next(iter(parse_query("w(move0)(p0)"))).atom))


if __name__ == "__main__":
    main()
