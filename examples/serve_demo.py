"""Concurrent serving: snapshot-isolated readers over a churning model.

Starts the asyncio HTTP server (repro.serve) on an ephemeral port, streams
a sliding-window edge churn through the writer while four client threads
hammer /query over HTTP, and verifies two guarantees at the end:

* every HTTP response was internally consistent (answers re-checked
  against the epoch id the server reported — no torn reads);
* the final served model equals the wrapped session's from-scratch
  recomputation (session.check()).

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import json
import threading
import time
import urllib.request

from repro.serve import ServingSession
from repro.serve.server import serve
from repro.workloads.streams import sliding_window_stream

PROGRAM = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

serving = ServingSession(PROGRAM, max_batch=16)

# -- start the HTTP server on a background thread ---------------------------

ready = threading.Event()
address = {}
loop_holder = {}


def run_server():
    async def main():
        def on_ready(server):
            address["hostport"] = server.address
            loop_holder["loop"] = asyncio.get_event_loop()
            ready.set()

        loop_holder["task"] = asyncio.current_task()
        await serve(serving, port=0, ready=on_ready)

    asyncio.run(main())


server_thread = threading.Thread(target=run_server, daemon=True)
server_thread.start()
assert ready.wait(10), "server did not start"
host, port = address["hostport"]
print("serving on http://%s:%d" % (host, port))


def http_query(text):
    request = urllib.request.Request(
        "http://%s:%d/query" % (host, port),
        data=json.dumps({"query": text}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))

# -- client threads query over HTTP while the writer churns -----------------

stop = threading.Event()
tallies = []


def client():
    queries = epochs_seen = 0
    while not stop.is_set():
        result = http_query("tc(n0, X)")
        queries += 1
        epochs_seen = max(epochs_seen, result["epoch"] + 1)
        # the server answered from one pinned epoch: the count it reports
        # must match the answers it actually shipped
        assert result["count"] == len(result["answers"])
    tallies.append((queries, epochs_seen))


clients = [threading.Thread(target=client) for _ in range(4)]
for thread in clients:
    thread.start()

# A sliding window of chain edges: every step inserts a fresh edge and
# retracts the oldest one — steady fact count, heavy epoch turnover.
steps = 0
chain = [("n%d" % i, "n%d" % (i + 1)) for i in range(40)]
for update in sliding_window_stream(chain, window=12):
    if update.action == "insert":
        serving.submit(inserts=list(update.atoms))
    else:
        serving.submit(retracts=list(update.atoms))
    steps += 1
    if steps % 8 == 0:
        serving.collect()  # intern sweep mid-churn, readers stay pinned
        time.sleep(0.001)  # let clients interleave between batches
serving.flush(30)
time.sleep(0.05)
stop.set()
for thread in clients:
    thread.join(10)
    assert not thread.is_alive()

# -- verify and shut down ---------------------------------------------------

total_queries = sum(queries for queries, _epochs in tallies)
max_epoch = max(epochs for _queries, epochs in tallies)
stats = serving.stats()
print("churn steps: %d  batches: %d  epochs published: %d  rebases: %d"
      % (steps, stats["batches"], stats["epochs"]["published"],
         stats["epochs"]["rebases"]))
print("HTTP queries served: %d across 4 clients (saw %d epochs)"
      % (total_queries, max_epoch))

serving.session.check()   # served model == from-scratch recomputation
print("integrity check passed")

loop = loop_holder["loop"]
loop.call_soon_threadsafe(loop_holder["task"].cancel)
server_thread.join(10)
assert not server_thread.is_alive(), "server did not shut down"
serving.close()
print("clean shutdown")
