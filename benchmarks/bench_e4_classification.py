"""E4 — Example 5.3: classification of clauses into the range-restriction classes.

Reproduces the paper's table of nine clauses (strongly range restricted /
range restricted / neither) and benchmarks the classifier on batches of
generated rules.

Run with::

    pytest benchmarks/bench_e4_classification.py --benchmark-only -s
"""

from repro.analysis.report import ExperimentRow, print_table
from repro.core.range_restriction import classify_rule
from repro.hilog.parser import parse_rule
from repro.workloads.random_programs import random_range_restricted_program

EXAMPLE_5_3 = [
    ("X(Y)(Z) :- p(X, Y, W), W(a)(Z), not W(b)(Z).", "strongly_range_restricted"),
    ("p(X) :- X(a), q(X).", "strongly_range_restricted"),
    ("tc(G, X, Y) :- graph(G), G(X, Y).", "strongly_range_restricted"),
    ("X(Y)(Z) :- p(Y, Z, W), W(a)(Z), not X(b)(Z).", "range_restricted"),
    ("tc(G)(X, Y) :- G(X, Y).", "range_restricted"),
    ("not(X)() :- not X.", "range_restricted"),
    ("X(Y)(Z) :- Z(X, Y, W), W(a)(Z), not W(b)(Z).", "unrestricted"),
    ("p(X) :- X(a).", "unrestricted"),
    ("tc(G, X, Y) :- G(X, Y).", "unrestricted"),
    ("not(X) :- not X.", "unrestricted"),
]


def test_example_53_classification(benchmark):
    rules = [(parse_rule(text), expected) for text, expected in EXAMPLE_5_3]

    def run():
        return [classify_rule(rule) for rule, _expected in rules]

    observed = benchmark(run)
    rows = []
    for (text, expected), got in zip(EXAMPLE_5_3, observed):
        assert got == expected, text
        rows.append(ExperimentRow(text, {"paper": expected, "measured": got}))
    print_table("E4  Example 5.3 clause classification", ["clause", "paper", "measured"], rows)


def test_classifier_throughput(benchmark):
    rules = []
    for seed in range(40):
        rules.extend(random_range_restricted_program(seed=seed, n_rules=6).proper_rules())

    def run():
        return sum(1 for rule in rules if classify_rule(rule) != "unrestricted")

    restricted = benchmark(run)
    assert restricted == len(rules)  # generated programs are range restricted
