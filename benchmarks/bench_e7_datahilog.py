"""E7 — Definition 6.7 and Lemma 6.3: Datahilog finiteness.

For strongly range-restricted Datahilog programs the set of atoms not made
false by the well-founded semantics is finite and bounded by
``sum_n |C|^(n+1)`` (Lemma 6.3); the benchmark measures the actual number of
non-false atoms against that bound as the constant pool grows, and contrasts
the Datahilog game with the (non-Datahilog) nested-name variant.

Run with::

    pytest benchmarks/bench_e7_datahilog.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.datahilog import datahilog_bound, is_datahilog
from repro.core.semantics import hilog_well_founded_model
from repro.workloads.games import datahilog_game_program, hilog_game_program
from repro.workloads.graphs import chain_edges


@pytest.mark.parametrize("length", [5, 15, 40])
def test_lemma_63_bound(benchmark, length):
    program = datahilog_game_program({"m": chain_edges(length)})
    assert is_datahilog(program)

    def run():
        model = hilog_well_founded_model(program)
        return len(model.true | model.undefined)

    non_false = benchmark(run)
    bound = datahilog_bound(program)
    assert non_false <= bound
    print_table(
        "E7  Lemma 6.3 on the Datahilog game with a %d-move chain" % length,
        ["quantity", "atoms"],
        [ExperimentRow("non-false atoms (measured)", {"atoms": non_false}),
         ExperimentRow("Lemma 6.3 bound sum |C|^(n+1)", {"atoms": bound})],
    )


def test_datahilog_vs_hilog_classification(benchmark):
    datahilog = datahilog_game_program({"m": chain_edges(5)})
    hilog = hilog_game_program({"m": chain_edges(5)})
    verdicts = benchmark(lambda: (is_datahilog(datahilog), is_datahilog(hilog)))
    assert verdicts == (True, False)
    print_table(
        "E7b  Definition 6.7 classification (paper: winning(M, X) yes, winning(M)(X) no)",
        ["program", "Datahilog"],
        [ExperimentRow("winning(M, X) :- game(M), M(X, Y), not winning(M, Y)", {"Datahilog": True}),
         ExperimentRow("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y)", {"Datahilog": False})],
    )
