"""E5 — Section 6: modular stratification for HiLog (Figure 1, Examples 6.1-6.5).

Reproduces the classification of the paper's example programs (modularly
stratified or not), Theorem 6.1 (the computed model is total and is the
unique stable model), Lemma 6.2 (agreement with normal modular
stratification) and benchmarks the Figure-1 procedure on game programs of
growing size.

Run with::

    pytest benchmarks/bench_e5_modular_stratification.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.modular import modularly_stratified_for_hilog, perfect_model_for_hilog
from repro.core.semantics import hilog_well_founded_model
from repro.hilog.parser import parse_program
from repro.normal.modular import modular_stratification
from repro.workloads.games import hilog_game_program, normal_game_program
from repro.workloads.graphs import chain_edges, cycle_edges, random_dag_edges

EXAMPLE_63 = parse_program("""
    winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
    game(move1). game(move2).
    move1(a, b). move1(b, c). move2(x, y).
""")
EXAMPLE_64 = parse_program("""
    p(X) :- t(X, Y, Z, p), not p(Y), not p(Z).
    t(a, b, a, p). t(e, a, b, p).
    p(b) :- t(X, Y, b, p).
""")
CYCLIC_GAME = hilog_game_program({"m": cycle_edges(3)})


def test_paper_program_classification(benchmark):
    def run():
        return {
            "Example 6.3 (acyclic games)": modularly_stratified_for_hilog(EXAMPLE_63),
            "Example 6.4 (negative self-dependency)": modularly_stratified_for_hilog(EXAMPLE_64),
            "Example 6.1/6.3 with a cyclic move relation": modularly_stratified_for_hilog(CYCLIC_GAME),
        }

    results = benchmark(run)
    assert results["Example 6.3 (acyclic games)"].is_modularly_stratified
    assert not results["Example 6.4 (negative self-dependency)"].is_modularly_stratified
    assert not results["Example 6.1/6.3 with a cyclic move relation"].is_modularly_stratified
    print_table(
        "E5a  Modular stratification for HiLog (paper: yes / no / no)",
        ["program", "modularly stratified", "rounds"],
        [ExperimentRow(name, {"modularly stratified": result.is_modularly_stratified,
                              "rounds": len(result.rounds)})
         for name, result in results.items()],
    )


def test_theorem_61_total_model(benchmark):
    model = benchmark(lambda: perfect_model_for_hilog(EXAMPLE_63))
    wfs = hilog_well_founded_model(EXAMPLE_63)
    assert model.is_total()
    assert model.true == wfs.true
    print_table(
        "E5b  Theorem 6.1: Figure-1 model equals the (total) well-founded model",
        ["quantity", "value"],
        [ExperimentRow("atoms true in both", {"value": len(model.true)}),
         ExperimentRow("model is total", {"value": model.is_total()})],
    )


@pytest.mark.parametrize("nodes", [20, 60, 150])
def test_lemma_62_agreement_and_scaling(benchmark, nodes):
    edges = random_dag_edges(nodes, nodes * 2, seed=nodes)
    normal_program = normal_game_program(edges)
    hilog_program = hilog_game_program({"m": edges})

    def run():
        return (
            modular_stratification(normal_program),
            modularly_stratified_for_hilog(hilog_program),
        )

    normal_result, hilog_result = benchmark(run)
    assert normal_result.is_modularly_stratified
    assert hilog_result.is_modularly_stratified
    normal_wins = {repr(a) for a in normal_result.model.true if "winning" in repr(a)}
    hilog_wins = {repr(a).replace("winning(m)", "winning") for a in hilog_result.model.true
                  if "winning" in repr(a)}
    assert {w.replace("winning(", "").rstrip(")") for w in normal_wins} == \
           {w.replace("winning(", "").rstrip(")") for w in hilog_wins}


@pytest.mark.parametrize("games", [2, 6, 12])
def test_figure_1_scaling_in_game_count(benchmark, games):
    edge_lists = {("m%d" % index): chain_edges(15, "m%d_" % index) for index in range(games)}
    program = hilog_game_program(edge_lists)
    result = benchmark(lambda: modularly_stratified_for_hilog(program))
    assert result.is_modularly_stratified
