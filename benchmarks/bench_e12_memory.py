"""E12 — bounded intern-table memory under long-lived session churn.

PR 3's hash-consing made term equality pointer equality, but the intern
tables originally held strong references forever: a long-lived
:class:`~repro.db.DatabaseSession` churning ever-fresh constants
(timestamps, ids) accreted interned terms even after the facts were
retracted.  This benchmark is the regression gate for the
generation-scoped eviction that fixed it (``terms.begin_generation`` /
``collect_generation``, driven by ``DatabaseSession.collect``):

* **E12a** — a chain-200 TC session runs ``E12_CYCLES`` (default 10 000)
  insert/retract cycles of facts carrying ten entirely fresh constants
  each, collecting every 100 cycles.  The intern-table sizes sampled at
  each collection must be non-increasing (bounded, not monotone), and the
  tracemalloc peak of the full run must stay within 2x of the peak after
  the first 100-cycle window.  Both peaks are measured from *before*
  session construction, so the comparison is against the session's real
  steady-state footprint (~12 MB for the chain-200 store): CPython's
  periodic hash-table rebuilds of the steady 20k-fact store (old and new
  tables briefly coexist, ~2.5 MB) stay well inside the bound, while the
  strong-reference leak this gate guards against — ~250 B per fresh
  constant, ~25 MB over the run — blows straight through it.
* **E12b** — derived-fact churn: fresh chain extensions each derive ~200
  transitive-closure facts through DRed maintenance; after retraction and
  collection the mortal intern population returns to its baseline.

Timings (``churn_s``, ``collect_s``, ``cycle_s``) are recorded in
``extra_info`` and gated by ``run_all.py --check-baseline``, so eviction
overhead cannot silently regress either.

Run with::

    pytest benchmarks/bench_e12_memory.py --benchmark-only -s
"""

import os
import time
import tracemalloc

from repro.analysis.report import ExperimentRow, print_table
from repro.db import DatabaseSession
from repro.hilog.terms import intern_generation_sizes, intern_table_sizes
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges

CHAIN = 200
CYCLES = int(os.environ.get("E12_CYCLES", "10000"))
COLLECT_EVERY = 100


def _total_interned():
    return sum(intern_table_sizes().values())


def _mortal_count():
    return sum(
        count for gen, count in intern_generation_sizes().items() if gen != 0
    )


def _churn_fresh(session, start, count):
    """``count`` insert/retract cycles, ten fresh constants per cycle."""
    for index in range(start, start + count):
        fact = "obs(%s)." % ", ".join(
            "t%d_%d" % (index, part) for part in range(10)
        )
        session.insert(fact)
        session.retract(fact)


def test_chain200_fresh_constant_churn(benchmark):
    """E12a: 10k fresh-constant cycles; intern sizes bounded, peak flat."""
    program = transitive_closure_program(chain_edges(CHAIN))

    # Both peaks below include the session's construction and steady-state
    # footprint — see the module docstring for why.
    tracemalloc.start()
    session = DatabaseSession(program)
    session.collect()  # sweep construction transients out of the baseline

    # First window: 100 cycles + 1 collection, tracemalloc peak recorded.
    _churn_fresh(session, 0, COLLECT_EVERY)
    session.collect()
    _current, peak_window = tracemalloc.get_traced_memory()
    sizes_start = _total_interned()

    # Full run: CYCLES more cycles, collecting every COLLECT_EVERY, with
    # the intern-table size sampled at every collection point.
    sizes_at_collect = []
    collect_times = []
    start = time.perf_counter()
    for block in range(CYCLES // COLLECT_EVERY):
        _churn_fresh(
            session, COLLECT_EVERY * (block + 1), COLLECT_EVERY
        )
        collect_start = time.perf_counter()
        session.collect()
        collect_times.append(time.perf_counter() - collect_start)
        sizes_at_collect.append(_total_interned())
    churn = time.perf_counter() - start
    _current, peak_full = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    session.check()

    slope = (
        (sizes_at_collect[-1] - sizes_at_collect[0]) / (len(sizes_at_collect) - 1)
        if len(sizes_at_collect) > 1 else 0.0
    )
    collect_mean = sum(collect_times) / len(collect_times)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain=CHAIN, cycles=CYCLES, collect_every=COLLECT_EVERY,
        churn_s=round(churn, 4),
        collect_s=round(collect_mean, 6),
        cycle_s=round(churn / CYCLES, 6),
        interned_start=sizes_start,
        interned_end=sizes_at_collect[-1],
        interned_slope_per_collect=round(slope, 3),
        mortal_end=_mortal_count(),
        alloc_peak_window_kb=peak_window // 1024,
        alloc_peak_full_kb=peak_full // 1024,
    )
    print_table(
        "E12a  Chain-%d session: %d fresh-constant insert/retract cycles"
        % (CHAIN, CYCLES),
        ["measure", "value"],
        [
            ExperimentRow("churn total (s)", {"value": round(churn, 3)}),
            ExperimentRow("per cycle (us)", {"value": round(1e6 * churn / CYCLES, 1)}),
            ExperimentRow("collect mean (ms)", {"value": round(1e3 * collect_mean, 3)}),
            ExperimentRow("interned @first/@last collect", {
                "value": "%d / %d" % (sizes_at_collect[0], sizes_at_collect[-1]),
            }),
            ExperimentRow("tracemalloc peak @100 cycles / full run (KB)", {
                "value": "%d / %d" % (peak_window // 1024, peak_full // 1024),
            }),
        ],
    )

    # The bounded-memory guarantee: sizes at collection points never grow
    # past the first sample (the leak showed a strictly increasing series).
    assert all(size <= sizes_at_collect[0] for size in sizes_at_collect[1:]), \
        "intern tables grew between collections: %r" % (sizes_at_collect,)
    assert slope <= 0, "positive intern-size slope %r" % (slope,)
    # The full run's peak stays within 2x of the 100-cycle peak — the
    # strong-reference leak added ~250 B per fresh constant and would land
    # around 3x here (~25 MB over ~12 MB of steady-state footprint).
    assert peak_full <= 2 * peak_window, (
        "tracemalloc peak %d exceeds 2x the 100-cycle peak %d"
        % (peak_full, peak_window)
    )


def test_chain200_derived_churn_evicts_closure(benchmark):
    """E12b: fresh chain extensions derive ~200 TC facts each (DRed);
    retraction plus collection returns the mortal population to baseline."""
    program = transitive_closure_program(chain_edges(CHAIN))
    session = DatabaseSession(program)
    session.collect()
    mortal_baseline = _mortal_count()
    interned_baseline = _total_interned()

    cycles = 200
    sizes_at_collect = []
    start = time.perf_counter()
    for index in range(cycles):
        fact = "e(n%d, x%d)." % (CHAIN, index)
        summary = session.insert(fact)
        assert len(summary.added) > CHAIN  # the fresh tail closes the chain
        session.retract(fact)
        if (index + 1) % 20 == 0:
            session.collect()
            sizes_at_collect.append(_total_interned())
    elapsed = time.perf_counter() - start
    session.check()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain=CHAIN, cycles=cycles,
        derived_churn_s=round(elapsed, 4),
        cycle_s=round(elapsed / cycles, 6),
        interned_baseline=interned_baseline,
        interned_end=sizes_at_collect[-1],
        mortal_baseline=mortal_baseline,
        mortal_end=_mortal_count(),
    )
    print_table(
        "E12b  Chain-%d session: derived-closure churn over fresh endpoints"
        % CHAIN,
        ["measure", "value"],
        [
            ExperimentRow("cycles", {"value": cycles}),
            ExperimentRow("total (s)", {"value": round(elapsed, 3)}),
            ExperimentRow("per cycle (ms)", {"value": round(1e3 * elapsed / cycles, 2)}),
            ExperimentRow("interned baseline/end", {
                "value": "%d / %d" % (interned_baseline, sizes_at_collect[-1]),
            }),
        ],
    )
    assert all(size <= sizes_at_collect[0] for size in sizes_at_collect[1:])
    # Fresh endpoints and their derived closure are fully reclaimed: the
    # mortal population does not grow with the cycle count.
    assert _mortal_count() <= mortal_baseline + 8
