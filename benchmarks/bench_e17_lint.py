"""E17 — Static analysis: lint cost stays marginal next to evaluation.

The linter is a load-time pass, so its budget is a *fraction* of the work
it fronts.  Two rows, both machine-independent ratio gates:

* **E17a — lint vs. materialization (the ≤``E17_LINT_FRACTION_BAR`` gate,
  default 0.10).**  The chain-200 transitive-closure program is linted
  (:func:`repro.lint.lint_program` — all passes: safety, stratification,
  plan compilation, hygiene, liveness) and materialized through a
  :class:`~repro.db.session.DatabaseSession`; the lint run must cost at
  most a tenth of the materialization it guards.
* **E17b — ``validate="warn"`` session-open overhead (the
  ≤``E17_OPEN_OVERHEAD_BAR``x gate, default 1.1x).**  The same session is
  opened with validation off and with ``validate="warn"``; end to end the
  validated open must stay within 1.1x of the raw open — the linter
  reuses the plan compiler and dependency graph the session builds
  anyway, so its marginal cost is small.

Run with::

    pytest benchmarks/bench_e17_lint.py --benchmark-only -s
"""

import os
import time

from repro.analysis.report import ExperimentRow, print_table
from repro.db.session import DatabaseSession
from repro.lint import lint_program
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges

#: E17a bar: lint wall time over materialization wall time.
LINT_FRACTION_BAR = float(os.environ.get("E17_LINT_FRACTION_BAR", "0.10"))
#: E17b bar: validate="warn" session open over validate="off" open.
OPEN_OVERHEAD_BAR = float(os.environ.get("E17_OPEN_OVERHEAD_BAR", "1.1"))

CHAIN = 200
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lint_cost_vs_materialization(benchmark):
    """E17a: all lint passes on chain-200 TC cost ≤10% of materializing it."""
    program = transitive_closure_program(chain_edges(CHAIN))
    report = lint_program(program)  # warmup + correctness: the program is clean
    assert not report.has_errors(), [d.code for d in report.errors]
    assert not report.warnings, [d.code for d in report.warnings]
    DatabaseSession(program).stats()  # warmup the evaluation path

    lint_s = _best_of(lambda: lint_program(program))
    materialize_s = _best_of(lambda: DatabaseSession(program))
    fraction = lint_s / materialize_s

    benchmark.extra_info.update({
        "chain": CHAIN,
        "lint_s": round(lint_s, 4),
        "materialize_s": round(materialize_s, 4),
        "lint_fraction": round(fraction, 4),
        "diagnostics": len(report),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E17a  Lint cost vs materialization (chain-%d TC)" % CHAIN,
        ["pass", "wall (s)", "fraction"],
        [
            ExperimentRow("lint (all checks)", {
                "wall (s)": round(lint_s, 4),
                "fraction": round(fraction, 4),
            }),
            ExperimentRow("materialize", {
                "wall (s)": round(materialize_s, 4), "fraction": 1.0,
            }),
        ],
    )
    assert fraction <= LINT_FRACTION_BAR, (
        "linting costs %.1f%% of materialization (bar: %.1f%%)"
        % (fraction * 100.0, LINT_FRACTION_BAR * 100.0)
    )


def test_validated_session_open_overhead(benchmark):
    """E17b: a validate="warn" session open stays within 1.1x of a raw open."""
    program = transitive_closure_program(chain_edges(CHAIN))
    DatabaseSession(program, validate="warn").stats()  # warmup both paths

    raw_s = _best_of(lambda: DatabaseSession(program))
    validated_s = _best_of(lambda: DatabaseSession(program, validate="warn"))
    overhead = validated_s / raw_s

    benchmark.extra_info.update({
        "chain": CHAIN,
        "open_off_s": round(raw_s, 4),
        "open_warn_s": round(validated_s, 4),
        "overhead_x": round(overhead, 3),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E17b  Session open: validate='warn' overhead (chain-%d TC)" % CHAIN,
        ["open", "wall (s)", "overhead"],
        [
            ExperimentRow("validate=off", {
                "wall (s)": round(raw_s, 4), "overhead": 1.0,
            }),
            ExperimentRow("validate=warn", {
                "wall (s)": round(validated_s, 4),
                "overhead": round(overhead, 3),
            }),
        ],
    )
    assert overhead <= OPEN_OVERHEAD_BAR, (
        "validated session open is %.2fx the raw open (bar: %.2fx)"
        % (overhead, OPEN_OVERHEAD_BAR)
    )
