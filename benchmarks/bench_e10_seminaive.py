"""E10 — Semi-naive evaluation vs the grounding oracle (Section 6.1).

Compares the two evaluation strategies of ``perfect_model_for_hilog`` /
``magic_evaluate`` — ``"ground"`` (relevance grounding + ground
well-founded fixpoint, the reference oracle) and ``"seminaive"``
(delta-driven bottom-up evaluation over indexed relations) — on scaled-up
transitive-closure, win/move and parts-explosion workloads, asserting on
every instance that both strategies derive the same true atoms.

Alongside wall time, the seminaive runs record the register executor's
*join-candidate* counters (``EXECUTION_STATS``) and the allocation volume
of a traced run, so speedups stay attributable to fewer candidates /
allocations rather than measurement luck.

Hotspot history (cProfile, chain-80 seminaive perfect model, this machine):

* PR 2 (Substitution-based executor, 59 ms): ``unify.match`` (binding-dict
  copy per candidate) 33%, ``Substitution.apply`` 31%, store ``candidates``
  17% of cumulative time; ~788k function calls.
* PR 3 (hash-consed terms + register executor, ~14 ms): the match/apply
  pair is gone — remaining top entries are the register-op collector loop
  (~16%), relation-store insertion/index maintenance (~14%) and head
  intern probes (~8%); ~230k function calls, join candidates unchanged
  (the same joins run — each candidate now costs a few pointer
  comparisons, index probes hash one interned term instead of a tuple).

Run with::

    pytest benchmarks/bench_e10_seminaive.py --benchmark-only -s
"""

import time
import tracemalloc

import pytest

from repro.engine.seminaive import EXECUTION_STATS

from repro.analysis.report import ExperimentRow, print_table
from repro.core.magic.evaluate import magic_evaluate
from repro.core.modular import perfect_model_for_hilog
from repro.hilog.parser import parse_query
from repro.workloads.closure import expected_closure, transitive_closure_program
from repro.workloads.games import datahilog_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges
from repro.workloads.parts import parts_explosion_program, random_hierarchy

STRATEGIES = ("ground", "seminaive")

#: Chain lengths for the closure scaling runs; 40 is the largest
#: transitive-closure size the seed benchmarks (E7) use.
TC_SIZES = (20, 40, 80)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("length", TC_SIZES)
def test_transitive_closure_scaling(benchmark, length, strategy):
    program = transitive_closure_program(chain_edges(length))
    before = EXECUTION_STATS.snapshot()
    model = benchmark.pedantic(
        lambda: perfect_model_for_hilog(program, strategy=strategy),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(EXECUTION_STATS.diff(before))
    if strategy == "seminaive":
        # Attribute the win: how much the engine allocates for this model.
        tracemalloc.start()
        perfect_model_for_hilog(program, strategy=strategy)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        benchmark.extra_info["alloc_peak_kb"] = peak // 1024
    derived = {a for a in model.true if repr(a).startswith("tc(")}
    assert len(derived) == length * (length + 1) // 2


def test_transitive_closure_strategy_comparison(benchmark):
    """The headline comparison: one timed run per (size, strategy), both
    models checked against the plain-Python closure, and the semi-naive
    path required to win at every size."""
    rows = []
    speedup_at_largest = None
    for length in TC_SIZES:
        edges = chain_edges(length)
        program = transitive_closure_program(edges)
        expected = expected_closure(edges)
        times = {}
        candidates = {}
        for strategy in STRATEGIES:
            before = EXECUTION_STATS.snapshot()
            model, elapsed = _timed(
                lambda strategy=strategy: perfect_model_for_hilog(program, strategy=strategy)
            )
            candidates[strategy] = EXECUTION_STATS.diff(before)["candidates"]
            pairs = {
                (repr(a.args[0]), repr(a.args[1]))
                for a in model.true if repr(a).startswith("tc(")
            }
            assert pairs == expected
            times[strategy] = elapsed
        speedup = times["ground"] / times["seminaive"]
        speedup_at_largest = speedup
        rows.append(ExperimentRow("chain %d" % length, {
            "ground (s)": round(times["ground"], 3),
            "seminaive (s)": round(times["seminaive"], 3),
            "speedup": round(speedup, 1),
            "join cands": candidates["seminaive"],
        }))
        assert times["seminaive"] < times["ground"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E10a  Transitive closure: grounding oracle vs semi-naive engine",
        ["workload", "ground (s)", "seminaive (s)", "speedup", "join cands"],
        rows,
    )
    assert speedup_at_largest > 1.0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_win_move_game(benchmark, strategy):
    """Win/move recurses through negation inside its component, so the fast
    path falls back to the oracle there — this run documents that the
    fallback costs nothing and stays correct."""
    edges = random_dag_edges(60, 120, seed=10)
    program = datahilog_game_program({"m": edges})
    model = benchmark.pedantic(
        lambda: perfect_model_for_hilog(program, strategy=strategy),
        rounds=1, iterations=1,
    )
    assert model.is_total()


def test_win_move_strategies_agree():
    edges = random_dag_edges(60, 120, seed=10)
    program = datahilog_game_program({"m": edges})
    ground = perfect_model_for_hilog(program)
    fast = perfect_model_for_hilog(program, strategy="seminaive")
    assert ground.true == fast.true


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_parts_explosion(benchmark, strategy):
    """Parts explosion recurses through aggregation, another oracle-fallback
    class; correctness of the aggregate component is unaffected."""
    triples = random_hierarchy(levels=4, parts_per_level=3, fanout=2, seed=4)
    program = parts_explosion_program({"m": {"part_m": triples}})
    model = benchmark.pedantic(
        lambda: perfect_model_for_hilog(program, strategy=strategy),
        rounds=1, iterations=1,
    )
    assert any(repr(a).startswith("contains(") for a in model.true)


def test_parts_explosion_strategies_agree():
    triples = random_hierarchy(levels=4, parts_per_level=3, fanout=2, seed=4)
    program = parts_explosion_program({"m": {"part_m": triples}})
    ground = perfect_model_for_hilog(program)
    fast = perfect_model_for_hilog(program, strategy="seminaive")
    assert ground.true == fast.true


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_magic_bound_query(benchmark, strategy):
    """Query-driven evaluation: magic rewriting + semi-naive bottom-up vs
    the call-pattern-propagation grounding path, on a bound closure query."""
    program = transitive_closure_program(chain_edges(40))
    query = parse_query("tc(n5, Y)")
    result = benchmark.pedantic(
        lambda: magic_evaluate(program, query, strategy=strategy),
        rounds=1, iterations=1,
    )
    assert len(result.answers) == 35
