"""E2 — Example 4.1 and Theorems 4.1/4.2 (HiLog vs normal semantics).

For the non-range-restricted program of Example 4.1 the HiLog semantics
differs from the normal semantics (p flips from false to true); for
range-restricted normal programs the HiLog well-founded model conservatively
extends the normal one and stable models are in one-to-one correspondence.
The benchmark sweeps random range-restricted programs of growing size and
reports the fraction for which the conservative-extension check holds
(paper: 100%).

Run with::

    pytest benchmarks/bench_e2_reduction_theorems.py --benchmark-only -s
"""

import pytest

from repro.analysis.compare import hilog_vs_normal_reduction
from repro.analysis.report import ExperimentRow, print_table
from repro.core.semantics import hilog_well_founded_model, normal_well_founded_model
from repro.hilog.parser import parse_program, parse_term
from repro.workloads.random_programs import random_range_restricted_program

EXAMPLE_41 = parse_program("p :- not q(X). q(a).")


def test_example_41_divergence(benchmark):
    def run():
        normal = normal_well_founded_model(EXAMPLE_41)
        hilog = hilog_well_founded_model(EXAMPLE_41, grounding="universe", max_depth=1)
        return normal, hilog

    normal, hilog = benchmark(run)
    assert normal.is_false(parse_term("p"))
    assert hilog.is_true(parse_term("p"))
    print_table(
        "E2a  Example 4.1: p under the two semantics (paper: false / true)",
        ["semantics", "p"],
        [ExperimentRow("normal", {"p": normal.value(parse_term("p"))}),
         ExperimentRow("HiLog", {"p": hilog.value(parse_term("p"))})],
    )


@pytest.mark.parametrize("size", [(3, 3, 6, 4), (4, 4, 10, 6), (5, 5, 16, 8)])
def test_theorems_41_42_sweep(benchmark, size):
    n_predicates, n_constants, n_facts, n_rules = size
    programs = [
        random_range_restricted_program(
            n_predicates=n_predicates, n_constants=n_constants,
            n_facts=n_facts, n_rules=n_rules, seed=seed,
        )
        for seed in range(10)
    ]

    def run():
        wf_ok = stable_ok = 0
        for program in programs:
            check = hilog_vs_normal_reduction(program)
            wf_ok += bool(check.well_founded_conservative)
            stable_ok += bool(check.stable_correspondence)
        return wf_ok, stable_ok

    wf_ok, stable_ok = benchmark(run)
    assert wf_ok == len(programs)
    assert stable_ok == len(programs)
    print_table(
        "E2b  Theorems 4.1/4.2 on %d random range-restricted programs (preds=%d)"
        % (len(programs), n_predicates),
        ["check", "holds for"],
        [ExperimentRow("Thm 4.1 (WFS conservative extension)", {"holds for": "%d/%d" % (wf_ok, len(programs))}),
         ExperimentRow("Thm 4.2 (stable 1-1 correspondence)", {"holds for": "%d/%d" % (stable_ok, len(programs))})],
    )
