"""E1 — Section 3 baseline semantics (Examples 3.1 and 3.2).

Reproduces the paper's two worked examples of the classical semantics and
benchmarks the two well-founded engines (the paper-faithful ``W_P``
iteration vs the alternating Gelfond–Lifschitz fixpoint) on win/move games of
growing size — the ablation called out in DESIGN.md.

Run with::

    pytest benchmarks/bench_e1_normal_semantics.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.semantics import normal_stable_models, normal_well_founded_model
from repro.engine.grounding import relevant_ground_program
from repro.engine.wellfounded import well_founded_model
from repro.hilog.parser import parse_program, parse_term
from repro.workloads.games import normal_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges

EXAMPLE_31 = parse_program("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.")
EXAMPLE_32 = parse_program("p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.")


def test_example_31_well_founded(benchmark):
    model = benchmark(lambda: normal_well_founded_model(EXAMPLE_31))
    assert model.is_true(parse_term("r"))
    assert model.is_false(parse_term("t"))
    assert model.is_undefined(parse_term("u"))
    print_table(
        "E1a  Example 3.1 well-founded model (paper: r,s true; p,q,t false; u undefined)",
        ["atom", "value"],
        [ExperimentRow(atom, {"value": model.value(parse_term(atom))})
         for atom in ["p", "q", "r", "s", "t", "u"]],
    )


def test_example_32_stable_models(benchmark):
    models = benchmark(lambda: normal_stable_models(EXAMPLE_32))
    assert len(models) == 2
    print_table(
        "E1b  Example 3.2 stable models (paper: {p,r} and {q,r})",
        ["model", "true atoms"],
        [ExperimentRow("M%d" % index, {"true atoms": sorted(map(repr, model.true))})
         for index, model in enumerate(models, start=1)],
    )


@pytest.mark.parametrize("nodes", [50, 200, 800])
@pytest.mark.parametrize("engine", ["wp", "alternating"])
def test_wfs_engine_ablation(benchmark, nodes, engine):
    """Ablation: W_P iteration vs alternating fixpoint on win/move DAG games."""
    program = normal_game_program(random_dag_edges(nodes, nodes * 2, seed=nodes))
    ground = relevant_ground_program(program)
    model = benchmark(lambda: well_founded_model(ground, engine=engine))
    assert model.is_total()
