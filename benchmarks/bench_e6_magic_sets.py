"""E6 — Section 6.1 / Example 6.6: magic sets vs exhaustive evaluation.

The paper's claim is qualitative: the magic-sets rewriting "allows the
efficient evaluation of queries over a large class of HiLog programs" by
restricting computation to atoms relevant to the query.  The benchmark
quantifies the claim on the multi-game workload: a query about one game
should not materialize the positions of the others, so the magic evaluator's
atom count (and time) stays roughly constant as unrelated games are added,
while exhaustive bottom-up evaluation grows linearly.

Run with::

    pytest benchmarks/bench_e6_magic_sets.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.magic import magic_evaluate, magic_rewrite
from repro.core.semantics import hilog_well_founded_model
from repro.hilog.parser import parse_program, parse_query, parse_term
from repro.workloads.games import multi_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges

GAME_66 = parse_program("""
    w(M)(X) :- g(M), M(X, Y), not w(M)(Y).
    g(m). m(n0, n1). m(n1, n2). m(n2, n3).
""")


def _workload(unrelated_games):
    edge_lists = [chain_edges(20, "q")] + [
        random_dag_edges(40, 80, seed=index, prefix="u%d_" % index)
        for index in range(unrelated_games)
    ]
    return multi_game_program(edge_lists)[0]


def test_example_66_rewriting(benchmark):
    rewritten = benchmark(lambda: magic_rewrite(GAME_66, parse_query("w(m)(n0)")))
    # The paper's listing has one seed fact, four supplementary rules for the
    # game rule, one answer rule per reachable rule and one magic rule per
    # subgoal; our rewriting reproduces that structure (plus the fact rules).
    assert any("magic(w(m)(n0))" in repr(rule) for rule in rewritten.seed_facts)
    assert sum(1 for rule in rewritten.supplementary_rules
               if repr(rule.head).startswith("sup_1_")) == 4
    print_table(
        "E6a  Example 6.6 rewriting structure",
        ["component", "rules"],
        [ExperimentRow("seed facts", {"rules": len(rewritten.seed_facts)}),
         ExperimentRow("supplementary rules", {"rules": len(rewritten.supplementary_rules)}),
         ExperimentRow("magic rules", {"rules": len(rewritten.magic_rules)}),
         ExperimentRow("answer rules", {"rules": len(rewritten.answer_rules)})],
    )


@pytest.mark.parametrize("unrelated_games", [0, 4, 8])
def test_magic_evaluation_scaling(benchmark, unrelated_games):
    program = _workload(unrelated_games)
    query = parse_query("w(move0)(q0)")
    result = benchmark(lambda: magic_evaluate(program, query))
    full = hilog_well_founded_model(program)
    atom = parse_term("w(move0)(q0)")
    assert (atom in result.answers) == full.is_true(atom)
    print_table(
        "E6b  Magic vs exhaustive with %d unrelated games (paper shape: magic stays flat)"
        % unrelated_games,
        ["strategy", "atoms"],
        [ExperimentRow("magic (query-driven)", {"atoms": len(result.relevant_atoms)}),
         ExperimentRow("exhaustive bottom-up", {"atoms": len(full.base)})],
    )
    if unrelated_games:
        # The crossover the paper's argument predicts: relevance keeps the
        # magic evaluation an order of magnitude smaller once unrelated games exist.
        assert len(result.relevant_atoms) * 3 < len(full.base)


@pytest.mark.parametrize("unrelated_games", [0, 4, 8])
def test_exhaustive_evaluation_scaling(benchmark, unrelated_games):
    program = _workload(unrelated_games)
    model = benchmark(lambda: hilog_well_founded_model(program))
    assert model.is_total()
