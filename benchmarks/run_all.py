#!/usr/bin/env python
"""Run the benchmark suite and record the results machine-readably.

Each ``bench_e*.py`` file is executed with pytest-benchmark's JSON output
enabled; the per-benchmark results (name, wall time, parameters, the
benchmarks' own ``extra_info`` sizes/speedups) are merged into a single
``BENCH_results.json`` so the performance trajectory of the repository is
recorded run over run (CI uploads the file as an artifact).

Usage::

    python benchmarks/run_all.py                  # the full suite
    python benchmarks/run_all.py --only e10 e11   # a subset (substring match)
    python benchmarks/run_all.py --smoke          # the fast incremental smoke set
    python benchmarks/run_all.py --output path.json

Exit status is non-zero when any benchmark file fails.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: The subset exercised by the CI smoke step: the incremental-maintenance
#: acceptance benchmark (fast, asserts the speedup bar).
SMOKE = ("bench_e11_incremental.py",)


def discover(only=None, smoke=False):
    if smoke:
        return [os.path.join(HERE, name) for name in SMOKE]
    files = sorted(glob.glob(os.path.join(HERE, "bench_e*.py")))
    if only:
        files = [f for f in files if any(token in os.path.basename(f) for token in only)]
    return files


def run_file(path, timeout):
    """Run one benchmark file; returns ``(ok, wall_seconds, benchmarks)``."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "pytest", path,
        "--benchmark-only", "-q", "--benchmark-json=%s" % json_path,
    ]
    start = time.perf_counter()
    try:
        completed = subprocess.run(
            command, cwd=REPO, env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        ok = completed.returncode == 0
        output = completed.stdout.decode("utf-8", "replace")
    except subprocess.TimeoutExpired as error:
        ok = False
        output = "TIMEOUT after %ss\n%s" % (
            timeout, (error.stdout or b"").decode("utf-8", "replace")
        )
    wall = time.perf_counter() - start

    benchmarks = []
    try:
        with open(json_path) as handle:
            report = json.load(handle)
        for bench in report.get("benchmarks", ()):
            benchmarks.append({
                "name": bench.get("name"),
                "group": bench.get("group"),
                "params": bench.get("params"),
                "wall_time_s": bench.get("stats", {}).get("mean"),
                "rounds": bench.get("stats", {}).get("rounds"),
                "sizes": bench.get("extra_info") or {},
            })
    except (OSError, ValueError):
        pass
    finally:
        try:
            os.unlink(json_path)
        except OSError:
            pass
    return ok, wall, benchmarks, output


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filters on benchmark file names")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast incremental smoke subset")
    parser.add_argument("--output", default=os.path.join(REPO, "BENCH_results.json"))
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-file timeout in seconds")
    args = parser.parse_args(argv)

    files = discover(only=args.only, smoke=args.smoke)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    results = {
        "suite": "conf_pods_Ross91a benchmarks",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "files": [],
        "benchmarks": [],
    }
    failures = 0
    for path in files:
        name = os.path.basename(path)
        print("== %s" % name, flush=True)
        ok, wall, benchmarks, output = run_file(path, args.timeout)
        if not ok:
            failures += 1
            print(output)
        print("   %s in %.1fs, %d benchmark(s)"
              % ("ok" if ok else "FAILED", wall, len(benchmarks)), flush=True)
        results["files"].append({"file": name, "ok": ok, "wall_time_s": round(wall, 3)})
        for bench in benchmarks:
            bench["file"] = name
            results["benchmarks"].append(bench)

    results["total_wall_time_s"] = round(
        sum(entry["wall_time_s"] for entry in results["files"]), 3
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d files, %d benchmarks, %d failure(s))"
          % (args.output, len(results["files"]), len(results["benchmarks"]), failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
