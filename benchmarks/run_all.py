#!/usr/bin/env python
"""Run the benchmark suite and record the results machine-readably.

Each ``bench_e*.py`` file is executed with pytest-benchmark's JSON output
enabled; the per-benchmark results (name, wall time, parameters, the
benchmarks' own ``extra_info`` sizes/speedups) are merged into a single
``BENCH_results.json`` so the performance trajectory of the repository is
recorded run over run (CI uploads the file as an artifact).

Usage::

    python benchmarks/run_all.py                  # the full suite
    python benchmarks/run_all.py --only e10 e11   # a subset (substring match)
    python benchmarks/run_all.py --smoke          # the fast incremental smoke set
    python benchmarks/run_all.py --output path.json
    python benchmarks/run_all.py --profile        # cProfile top-N per file
    python benchmarks/run_all.py --check-baseline # regression-gate vs baseline.json
    python benchmarks/run_all.py --update-baseline

The **regression gate** (``--check-baseline``) compares the fresh results
against the committed ``benchmarks/baseline.json``: any benchmark whose wall
time exceeds ``baseline * tolerance`` (``--tolerance``, default 3.0 — CI
runners are noisy) fails the run.  Refresh the baseline with
``--update-baseline`` after an intentional performance change, on a quiet
machine.

The **profiling harness** (``--profile``) reruns each benchmark file under
``cProfile`` and prints/records the top functions by internal time, so perf
PRs start from evidence instead of guesses.

Exit status is non-zero when any benchmark file fails (or regresses).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import pstats
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: The subset exercised by the CI smoke step: the incremental-maintenance
#: acceptance benchmark, the intern-table memory gate, the well-founded
#: alternating-fixpoint gate, the concurrent-serving gate, the
#: observability gate and the durability gate (all fast, all assert their
#: acceptance bars — speedup, bounded memory, the non-stratified speedup,
#: zero consistency violations + the writer batching speedup, the
#: disabled-tracing overhead bound + a parseable /metrics exposition, the
#: snapshot-recovery speedup + the WAL fsync=batch overhead bound, and the
#: linter's cost bounds (lint ≤10% of materialization, validated session
#: open ≤1.1x) respectively).
SMOKE = (
    "bench_e11_incremental.py",
    "bench_e12_memory.py",
    "bench_e13_wellfounded.py",
    "bench_e14_serving.py",
    "bench_e15_observability.py",
    "bench_e16_durability.py",
    "bench_e17_lint.py",
)


def discover(only=None, smoke=False):
    if smoke:
        return [os.path.join(HERE, name) for name in SMOKE]
    files = sorted(glob.glob(os.path.join(HERE, "bench_e*.py")))
    if only:
        files = [f for f in files if any(token in os.path.basename(f) for token in only)]
    return files


def run_file(path, timeout, profile=False, profile_top=15):
    """Run one benchmark file; returns ``(ok, wall, benchmarks, output, hotspots)``."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    profile_path = None
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable]
    if profile:
        with tempfile.NamedTemporaryFile(suffix=".pstats", delete=False) as handle:
            profile_path = handle.name
        command += ["-m", "cProfile", "-o", profile_path]
    command += [
        "-m", "pytest", path,
        "--benchmark-only", "-q", "--benchmark-json=%s" % json_path,
    ]
    start = time.perf_counter()
    try:
        completed = subprocess.run(
            command, cwd=REPO, env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        ok = completed.returncode == 0
        output = completed.stdout.decode("utf-8", "replace")
    except subprocess.TimeoutExpired as error:
        ok = False
        output = "TIMEOUT after %ss\n%s" % (
            timeout, (error.stdout or b"").decode("utf-8", "replace")
        )
    wall = time.perf_counter() - start

    benchmarks = []
    try:
        with open(json_path) as handle:
            report = json.load(handle)
        for bench in report.get("benchmarks", ()):
            sizes = dict(bench.get("extra_info") or {})
            # A benchmark may export a metrics-registry snapshot; surface
            # it as its own key so the timing gate only sees scalars.
            metrics = sizes.pop("metrics", None)
            entry = {
                "name": bench.get("name"),
                "group": bench.get("group"),
                "params": bench.get("params"),
                "wall_time_s": bench.get("stats", {}).get("mean"),
                "rounds": bench.get("stats", {}).get("rounds"),
                "sizes": sizes,
            }
            if metrics:
                entry["metrics"] = metrics
            benchmarks.append(entry)
    except (OSError, ValueError):
        pass
    finally:
        try:
            os.unlink(json_path)
        except OSError:
            pass

    hotspots = []
    if profile_path is not None:
        try:
            stats = pstats.Stats(profile_path)
            entries = sorted(
                stats.stats.items(), key=lambda item: item[1][2], reverse=True
            )
            for (filename, line, func), (cc, ncalls, tottime, cumtime, _callers) \
                    in entries:
                if filename == "~":
                    continue  # builtins (incl. the profiler's own hooks)
                location = "%s:%d" % (os.path.basename(filename), line)
                hotspots.append({
                    "function": "%s (%s)" % (func, location),
                    "ncalls": ncalls,
                    "tottime_s": round(tottime, 4),
                    "cumtime_s": round(cumtime, 4),
                })
                if len(hotspots) >= profile_top:
                    break
        except Exception:
            pass
        finally:
            try:
                os.unlink(profile_path)
            except OSError:
                pass
    return ok, wall, benchmarks, output, hotspots


def _benchmark_key(entry):
    """Stable identity of one benchmark across runs."""
    return "%s::%s" % (entry.get("file", ""), entry.get("name", ""))


def _timing_measures(entry, min_seconds):
    """The gateable timings of one benchmark entry: its pytest-benchmark
    wall time plus every ``*_s`` seconds-valued measurement the benchmark
    recorded in ``extra_info`` (the e10/e11 headline numbers — insert_s,
    retract_s, incremental_s, ... — live there, the pedantic wall time being
    a placeholder).  Sub-``min_seconds`` values are noise and skipped."""
    measures = {}
    wall = entry.get("wall_time_s")
    if isinstance(wall, (int, float)) and wall >= min_seconds:
        measures["wall_time_s"] = wall
    for key, value in (entry.get("sizes") or {}).items():
        if key.endswith("_s") and isinstance(value, (int, float)) \
                and value >= min_seconds:
            measures[key] = value
    return measures


def check_baseline(results, baseline_path, tolerance, min_seconds=0.0005):
    """Compare fresh results against the committed baseline.

    Every timing measure of every benchmark present in both runs is gated:
    the pytest-benchmark wall time and the ``*_s`` extra-info measurements
    (where the e11 maintenance benchmarks record their real numbers — the
    half-millisecond floor keeps sub-millisecond insert/retract timings
    gated while the ~2 microsecond pedantic placeholders stay excluded).
    Returns a list of human-readable regression strings; benchmarks missing
    from either side, and sub-``min_seconds`` baseline values (pure noise),
    are skipped.
    """
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except OSError:
        return ["baseline file %s is missing (generate it with "
                "--update-baseline)" % baseline_path]
    baseline_entries = {
        _benchmark_key(entry): entry for entry in baseline.get("benchmarks", ())
    }
    regressions = []
    for entry in results["benchmarks"]:
        reference = baseline_entries.get(_benchmark_key(entry))
        if reference is None:
            continue
        reference_measures = _timing_measures(reference, min_seconds)
        fresh_measures = _timing_measures(entry, 0.0)
        for measure, reference_value in reference_measures.items():
            fresh_value = fresh_measures.get(measure)
            if fresh_value is None:
                continue
            if fresh_value > reference_value * tolerance:
                regressions.append(
                    "%s [%s]: %.4fs vs baseline %.4fs (> %.1fx tolerance)"
                    % (_benchmark_key(entry), measure, fresh_value,
                       reference_value, tolerance)
                )
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filters on benchmark file names")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast incremental smoke subset")
    parser.add_argument("--output", default=os.path.join(REPO, "BENCH_results.json"))
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-file timeout in seconds")
    parser.add_argument("--profile", action="store_true",
                        help="rerun each file under cProfile and record the "
                             "top functions by internal time")
    parser.add_argument("--profile-top", type=int, default=15,
                        help="how many hotspot entries to keep per file")
    parser.add_argument("--check-baseline", action="store_true",
                        help="fail when any benchmark regresses beyond "
                             "tolerance vs benchmarks/baseline.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the fresh results to the baseline file")
    parser.add_argument("--baseline",
                        default=os.path.join(HERE, "baseline.json"),
                        help="path of the committed baseline")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slowdown factor vs the baseline")
    args = parser.parse_args(argv)

    files = discover(only=args.only, smoke=args.smoke)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    results = {
        "suite": "conf_pods_Ross91a benchmarks",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "files": [],
        "benchmarks": [],
    }
    failures = 0
    for path in files:
        name = os.path.basename(path)
        print("== %s" % name, flush=True)
        ok, wall, benchmarks, output, hotspots = run_file(
            path, args.timeout, profile=args.profile,
            profile_top=args.profile_top,
        )
        if not ok:
            failures += 1
            print(output)
        print("   %s in %.1fs, %d benchmark(s)"
              % ("ok" if ok else "FAILED", wall, len(benchmarks)), flush=True)
        entry = {"file": name, "ok": ok, "wall_time_s": round(wall, 3)}
        if hotspots:
            entry["hotspots"] = hotspots
            print("   top hotspots (tottime):")
            for spot in hotspots[:5]:
                print("     %7.3fs  %s" % (spot["tottime_s"], spot["function"]))
        results["files"].append(entry)
        for bench in benchmarks:
            bench["file"] = name
            results["benchmarks"].append(bench)

    results["total_wall_time_s"] = round(
        sum(entry["wall_time_s"] for entry in results["files"]), 3
    )
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d files, %d benchmarks, %d failure(s))"
          % (args.output, len(results["files"]), len(results["benchmarks"]), failures))

    if args.update_baseline:
        baseline_out = results
        if args.smoke or args.only:
            # Partial run: merge into the existing baseline instead of
            # overwriting it, so the gate over the other files survives.
            try:
                with open(args.baseline) as handle:
                    baseline_out = json.load(handle)
            except OSError:
                baseline_out = {"benchmarks": [], "files": []}
            fresh_keys = {_benchmark_key(b) for b in results["benchmarks"]}
            fresh_files = {entry["file"] for entry in results["files"]}
            baseline_out["benchmarks"] = [
                b for b in baseline_out.get("benchmarks", ())
                if _benchmark_key(b) not in fresh_keys
            ] + results["benchmarks"]
            baseline_out["files"] = [
                entry for entry in baseline_out.get("files", ())
                if entry.get("file") not in fresh_files
            ] + results["files"]
        with open(args.baseline, "w") as handle:
            json.dump(baseline_out, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("updated baseline %s (%s)" % (
            args.baseline,
            "merged partial run" if baseline_out is not results else "full run",
        ))

    if args.check_baseline:
        regressions = check_baseline(results, args.baseline, args.tolerance)
        if regressions:
            print("BASELINE REGRESSIONS:")
            for line in regressions:
                print("  " + line)
            return 1
        print("baseline check ok (tolerance %.1fx vs %s)"
              % (args.tolerance, os.path.basename(args.baseline)))

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
