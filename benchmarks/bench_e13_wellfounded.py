"""E13 — Semi-naive well-founded evaluation vs the grounding path.

The non-stratified workload gate: win/move games over cyclic graphs have a
genuinely three-valued well-founded model, which the repository previously
computed only by materializing a ground program and iterating the ground
alternating fixpoint (``well_founded_for_hilog(strategy="ground")``, i.e.
``core/semantics`` → ``engine/wellfounded``).  The semi-naive alternating
fixpoint (``engine/seminaive/wellfounded``) runs both phases as indexed
register-machine fixpoints instead:

* **E13a** (the acceptance bar, default ≥``E13_SPEEDUP_BAR``=50x) — the
  composed-move game on a 200-node cyclic graph (a 196-cycle with chords
  plus a 4-node line): ``move(X, Z) <- edge(X, Y), edge(Y, Z)`` then the
  negation cycle ``winning(X) <- move(X, Y), not winning(Y)``.  The
  composed join is where the paths diverge — one indexed probe per edge on
  the register machine versus a scan of every ``edge`` atom per candidate
  binding in the grounder — and the cyclic component exercises the
  alternation itself.  Both engines must return the identical
  true/undefined partition, cross-checked against the game-theoretic
  backward-induction reference (``win_move_partition``).
* **E13b** — the plain one-hop game on the same 200-node graph shape: the
  ground alternating fixpoint (Dowling–Gallier) is genuinely good here, so
  the recorded speedup is modest (~5x); the row documents that the win in
  E13a comes from avoiding unindexed grounding work, not from beating the
  ground fixpoint at its own game.
* **E13c** — a well-founded-mode ``DatabaseSession`` absorbing move
  insertions/retractions that repeatedly break and close the cycles, with
  ``check()`` verifying the partition at the end.

``EXECUTION_STATS`` — including the new ``alternations`` counter — and the
headline ``*_s`` timings land in ``extra_info``, so ``run_all.py
--check-baseline`` gates the absolute times and the recorded speedup keeps
the machine-independent bar.

Run with::

    pytest benchmarks/bench_e13_wellfounded.py --benchmark-only -s
"""

import os
import time

from repro.analysis.report import ExperimentRow, print_table
from repro.core.semantics import well_founded_for_hilog
from repro.db import DatabaseSession
from repro.engine.seminaive import EXECUTION_STATS
from repro.workloads.games import (
    composed_move_game_program,
    normal_game_program,
    two_hop_moves,
    win_move_partition,
)
from repro.workloads.graphs import chain_edges, cycle_edges, random_graph_edges

#: Machine-independent acceptance bar for E13a (both sides are measured in
#: the same process, so the ratio is robust; CI relaxes it for shared-runner
#: noise the same way it relaxes E11's).
SPEEDUP_BAR = float(os.environ.get("E13_SPEEDUP_BAR", "50"))

CYCLE_NODES = 196
LINE_NODES = 4
CHORDS = 120


def _edges():
    """A 200-node cyclic graph: a 196-cycle with 120 chords, plus a disjoint
    4-node line so the partition mixes winning/losing with undefined.  The
    line is kept short deliberately: every two positions of backward
    induction cost one more outer alternation in *both* engines, and E13a
    gates the grounding-vs-register-machine gap, not the alternation count
    (E13b's one-hop row documents that the alternation itself is cheap for
    the ground engine too)."""
    edges = list(cycle_edges(CYCLE_NODES, "c"))
    edges += random_graph_edges(CYCLE_NODES, CHORDS, seed=13, prefix="c")
    edges += chain_edges(LINE_NODES - 1, "t")
    edges = sorted(set(edges))
    assert CYCLE_NODES + LINE_NODES == 200
    return edges


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _partition(model, name="winning"):
    def nodes(atoms):
        return {repr(a.args[0]) for a in atoms if repr(a).startswith(name + "(")}
    return nodes(model.true), nodes(model.undefined)


def test_composed_game_speedup(benchmark):
    """E13a: the ≥50x acceptance gate on the composed-move cyclic game."""
    edges = _edges()
    program = composed_move_game_program(edges)

    # One untimed warmup: a ~16 ms measurement would otherwise absorb the
    # process's one-time costs (module imports, first-use code paths) that
    # the 1000x-larger ground measurement shrugs off.
    well_founded_for_hilog(program, strategy="seminaive")
    before = EXECUTION_STATS.snapshot()
    fast, seminaive_s = _timed(
        lambda: well_founded_for_hilog(program, strategy="seminaive")
    )
    stats = EXECUTION_STATS.diff(before)
    ground, ground_s = _timed(lambda: well_founded_for_hilog(program))

    # Identical three-valued partitions, and both match the game-theoretic
    # reference over the composed move relation.
    assert fast.true == ground.true
    assert fast.undefined == ground.undefined
    winning, _losing, undefined = win_move_partition(sorted(two_hop_moves(edges)))
    true_nodes, undefined_nodes = _partition(fast)
    assert true_nodes == set(winning)
    assert undefined_nodes == set(undefined)
    assert undefined_nodes and true_nodes  # genuinely mixed partition

    speedup = ground_s / seminaive_s
    benchmark.extra_info.update(stats)
    benchmark.extra_info.update({
        "edges": len(edges),
        "ground_s": round(ground_s, 4),
        "seminaive_s": round(seminaive_s, 4),
        "speedup": round(speedup, 1),
        "undefined_atoms": len(fast.undefined),
        "true_winning": len(true_nodes),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E13a  Composed-move cyclic game (200 nodes): grounding path vs "
        "semi-naive alternating fixpoint",
        ["workload", "ground (s)", "seminaive (s)", "speedup", "alternations",
         "join cands", "undefined"],
        [ExperimentRow("cycle%d+chords%d+line%d" % (CYCLE_NODES, CHORDS, LINE_NODES), {
            "ground (s)": round(ground_s, 3),
            "seminaive (s)": round(seminaive_s, 3),
            "speedup": round(speedup, 1),
            "alternations": stats["alternations"],
            "join cands": stats["candidates"],
            "undefined": len(fast.undefined),
        })],
    )
    assert speedup >= SPEEDUP_BAR, (
        "semi-naive well-founded evaluation is only %.1fx faster than the "
        "grounding path (bar: %.0fx)" % (speedup, SPEEDUP_BAR)
    )


def test_plain_game_agreement(benchmark):
    """E13b: the one-hop game — modest, honest numbers for the case where
    grounding is linear and Dowling–Gallier is already near-optimal."""
    edges = _edges()
    program = normal_game_program(edges)

    before = EXECUTION_STATS.snapshot()
    fast, seminaive_s = _timed(
        lambda: well_founded_for_hilog(program, strategy="seminaive")
    )
    stats = EXECUTION_STATS.diff(before)
    ground, ground_s = _timed(lambda: well_founded_for_hilog(program))
    assert fast.true == ground.true
    assert fast.undefined == ground.undefined
    winning, _losing, undefined = win_move_partition(edges)
    true_nodes, undefined_nodes = _partition(fast)
    assert true_nodes == set(winning)
    assert undefined_nodes == set(undefined)
    assert seminaive_s < ground_s

    benchmark.extra_info.update(stats)
    benchmark.extra_info.update({
        "ground_s": round(ground_s, 4),
        "seminaive_s": round(seminaive_s, 4),
        "speedup": round(ground_s / seminaive_s, 1),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_wellfounded_session_churn(benchmark):
    """E13c: a session over the non-stratified game absorbing updates that
    break and close cycles, verified against recomputation at the end."""
    program = normal_game_program(cycle_edges(60, "c") + chain_edges(20, "t"))
    session = DatabaseSession(program)
    assert session.mode == "wellfounded"

    def churn():
        for index in range(30):
            node = index % 60
            fact = "move(c%d, c%d)." % (node, (node + 1) % 60)
            session.retract(fact)   # break the cycle open
            session.insert(fact)    # and close it again
        return session

    _result, churn_s = _timed(churn)
    assert session.check()
    assert not session.is_total()  # the cycle is closed again: undefined
    benchmark.extra_info.update({
        "updates": 60,
        "churn_s": round(churn_s, 4),
        "update_ms": round(churn_s / 60 * 1000, 3),
        "undefined_atoms": len(session.undefined),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
