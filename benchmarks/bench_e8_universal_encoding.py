"""E8 — Section 2: the universal-relation ("call"/"apply") encoding.

Checks that evaluating a negation-free HiLog program directly and evaluating
its universal-relation encoding produce the same least model (after
decoding), and measures the overhead of the encoding on generic transitive
closure over graphs of growing size — the practical cost of the "first-order
semantics via apply" view the paper builds on.

Run with::

    pytest benchmarks/bench_e8_universal_encoding.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.engine.grounding import relevant_ground_program
from repro.engine.wellfounded import well_founded_model
from repro.hilog.parser import parse_program
from repro.hilog.universal import decode_atom, encode_program
from repro.workloads.graphs import chain_edges


def tc_program(length):
    lines = [
        "tc(G)(X, Y) :- graph(G), G(X, Y).",
        "tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).",
        "graph(e).",
    ]
    lines.extend("e(%s, %s)." % edge for edge in chain_edges(length))
    return parse_program("\n".join(lines))


@pytest.mark.parametrize("length", [8, 16, 32])
def test_direct_vs_encoded_equivalence(benchmark, length):
    program = tc_program(length)
    encoded = encode_program(program)

    def run():
        direct = well_founded_model(relevant_ground_program(program))
        via_encoding = well_founded_model(relevant_ground_program(encoded))
        return direct, via_encoding

    direct, via_encoding = benchmark(run)
    decoded = {decode_atom(atom) for atom in via_encoding.true}
    assert decoded == set(direct.true)
    print_table(
        "E8  Universal-relation encoding on tc over a %d-edge chain" % length,
        ["representation", "true atoms"],
        [ExperimentRow("direct HiLog evaluation", {"true atoms": len(direct.true)}),
         ExperimentRow("call/apply encoding (decoded)", {"true atoms": len(decoded)})],
    )


@pytest.mark.parametrize("representation", ["direct", "encoded"])
def test_encoding_overhead(benchmark, representation):
    program = tc_program(24)
    target = program if representation == "direct" else encode_program(program)
    model = benchmark(lambda: well_founded_model(relevant_ground_program(target)))
    assert model.is_total()
