"""E3 — Section 5: preservation under extensions vs domain independence.

Reproduces Example 5.1 (domain independent but not preserved under
extensions), Theorem 5.3 (range-restricted HiLog programs: WFS preserved),
Theorem 5.4 (strongly range-restricted: stable semantics preserved) and the
paper's counterexample showing Theorem 5.4 genuinely needs *strong* range
restriction.

Run with::

    pytest benchmarks/bench_e3_preservation.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.domain_independence import check_domain_independence
from repro.core.preservation import check_preservation_under_extensions, stable_over_universe
from repro.hilog.parser import parse_program

EXAMPLE_51 = parse_program("p :- X(Y), Y(X).")
PAPER_EXTENSION = parse_program("q(r). r(q).")
GAME = parse_program(
    "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y). game(m). m(a, b). m(b, c)."
)
COUNTEREXAMPLE_54 = parse_program("X(a) :- X(X), not X(a).")


def test_example_51_strictness(benchmark):
    def run():
        domain = check_domain_independence(EXAMPLE_51, trials=3)
        preservation = check_preservation_under_extensions(
            EXAMPLE_51, extensions=[PAPER_EXTENSION]
        )
        return domain, preservation

    domain, preservation = benchmark(run)
    assert domain.domain_independent
    assert not preservation.preserved
    print_table(
        "E3a  Example 5.1: domain independence vs preservation (paper: yes / no)",
        ["property", "holds"],
        [ExperimentRow("domain independent", {"holds": domain.domain_independent}),
         ExperimentRow("preserved under extensions", {"holds": preservation.preserved})],
    )


@pytest.mark.parametrize("trials", [5, 15])
def test_theorem_53_range_restricted_wfs(benchmark, trials):
    report = benchmark(lambda: check_preservation_under_extensions(
        GAME, semantics="well_founded", trials=trials, seed=0,
        extension_kwargs={"n_facts": 3, "n_rules": 1, "max_arity": 2},
    ))
    assert report.preserved
    print_table(
        "E3b  Theorem 5.3: WFS of the range-restricted game preserved under %d random extensions" % trials,
        ["program", "preserved"],
        [ExperimentRow("winning(M)(X) game", {"preserved": report.preserved})],
    )


def test_theorem_54_strong_range_restriction(benchmark):
    def run():
        strong = check_preservation_under_extensions(
            parse_program("p(X) :- q(X), not r(X). q(a). r(b)."),
            semantics="stable", trials=5, seed=1,
            extension_kwargs={"n_facts": 2, "n_rules": 1, "max_arity": 1},
        )
        weak = check_preservation_under_extensions(
            COUNTEREXAMPLE_54, semantics="stable", extensions=[parse_program("r(r).")]
        )
        return strong, weak

    strong, weak = benchmark(run)
    assert strong.preserved
    assert not weak.preserved
    assert stable_over_universe(COUNTEREXAMPLE_54 + parse_program("r(r).")) == []
    print_table(
        "E3c  Theorem 5.4 and its counterexample (paper: preserved / not preserved)",
        ["program", "stable semantics preserved"],
        [ExperimentRow("strongly range restricted", {"stable semantics preserved": strong.preserved}),
         ExperimentRow("X(a) :- X(X), not X(a)  (range restricted only)",
                       {"stable semantics preserved": weak.preserved})],
    )
