"""E14 — Concurrent serving: snapshot-isolated readers over a churning model.

The serving subsystem (:mod:`repro.serve`) must deliver the paper's
"efficient query answering" to *concurrent* callers: readers pin immutable
epochs while one writer thread coalesces queued updates into batched
maintenance passes.  Two rows:

* **E14a — consistency under churn.**  Four reader threads hammer
  ``tc(n0, X)`` over a chain-200 transitive-closure session while the
  writer streams edge rewires (each batch detours one chain edge through a
  fresh node, or restores it — every *consistent* snapshot therefore keeps
  all 200 chain nodes reachable from ``n0``).  Every answer set is checked
  three ways: the reachability invariant (a torn half-batch view breaks
  the chain), agreement with the per-epoch oracle captured at publication,
  and epoch stability (re-querying the same pinned epoch after further
  writer batches must answer identically).  The acceptance gate is **zero
  violations**; queries/sec and p50/p99 latency are recorded (``*_ms``
  keys — latency tails are too noisy for the ``*_s`` baseline gate).
* **E14b — writer batching (the ≥``E14_BATCH_BAR``x gate, default 2x).**
  The same rewire workload is driven through the write queue twice: with
  ``max_batch=1`` (one maintenance pass per op — the no-coalescing
  baseline) and ``max_batch=64`` (the queue drains into one merged pass).
  The rewires touch distinct edges, so coalescing cannot cheat by netting
  ops away; the win is one DRed delta propagation over 24 edge changes
  instead of 24 propagations of one change each.

Run with::

    pytest benchmarks/bench_e14_serving.py --benchmark-only -s
"""

import os
import threading
import time

from repro.analysis.report import ExperimentRow, print_table
from repro.serve import ServingSession
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges

#: Machine-independent acceptance bar for E14b (both sides are measured in
#: the same process on the same workload, so the ratio is robust to the
#: machine; CI relaxes it for shared-runner noise like E11's/E13's).
BATCH_BAR = float(os.environ.get("E14_BATCH_BAR", "2"))

CHAIN = 200
READERS = 4


def _rewire(position, detour):
    """Insert a 2-edge detour for chain edge ``position`` and retract the
    direct edge — reachability-preserving when applied atomically."""
    return (
        ["e(n%d, %s). e(%s, n%d)." % (position, detour, detour, position + 1)],
        ["e(n%d, n%d)." % (position, position + 1)],
    )


def _restore(position, detour):
    inserts, retracts = _rewire(position, detour)
    return retracts, inserts


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


class _Reader(threading.Thread):
    """Queries the serving session in a loop, verifying every answer set."""

    def __init__(self, serving, oracle, chain_nodes, stop):
        super().__init__(daemon=True)
        self.serving = serving
        self.oracle = oracle
        self.chain_nodes = chain_nodes
        self.stop = stop
        self.latencies = []
        self.violations = []
        self.stability_checks = 0

    def run(self):
        while not self.stop.is_set():
            start = time.perf_counter()
            with self.serving.reader() as reader:
                eid = reader.epoch.eid
                answers = frozenset(map(str, reader.query("tc(n0, X)")))
                self.latencies.append(time.perf_counter() - start)
                # 1. reachability invariant: every consistent snapshot keeps
                #    the whole chain reachable — a torn view loses a suffix
                reached = {text[len("tc(n0, "):-1] for text in answers}
                if not self.chain_nodes <= reached:
                    self.violations.append(
                        ("invariant", eid, sorted(self.chain_nodes - reached)[:3]))
                # 2. per-epoch oracle agreement
                expected = self.oracle.get(eid)
                if expected is not None and answers != expected:
                    self.violations.append(("oracle", eid))
                # 3. epoch stability: the pinned epoch must answer
                #    identically however much the writer publishes meanwhile
                again = frozenset(map(str, reader.query("tc(n0, X)")))
                if again != answers:
                    self.violations.append(("torn", eid))
                self.stability_checks += 1


def test_consistency_under_churn(benchmark):
    """E14a: four readers, zero consistency violations, latency recorded."""
    serving = ServingSession(transitive_closure_program(chain_edges(CHAIN)),
                             max_batch=16, max_pending=4096)
    chain_nodes = {"n%d" % i for i in range(1, CHAIN + 1)}
    oracle = {}

    def record(epoch, _summary):
        from repro.core.magic.evaluate import answer_from_store
        from repro.hilog.parser import parse_query
        from repro.hilog.program import Literal
        from repro.hilog.terms import Term

        query = parse_query("tc(n0, X)")
        if isinstance(query, Term):
            query = (Literal(query),)
        else:
            query = tuple(query)
        oracle[epoch.eid] = frozenset(
            map(str, answer_from_store(epoch.store, query).answers))

    try:
        with serving.reader() as reader:  # seed the oracle with epoch 0
            oracle[reader.epoch.eid] = frozenset(
                map(str, reader.query("tc(n0, X)")))
        serving.add_publish_hook(record)

        stop = threading.Event()
        readers = [_Reader(serving, oracle, chain_nodes, stop)
                   for _ in range(READERS)]
        churn_start = time.perf_counter()
        for worker in readers:
            worker.start()
        for k in range(20):
            position, detour = (k * 9) % (CHAIN - 1), "d%d" % k
            inserts, retracts = _rewire(position, detour)
            serving.submit(inserts=inserts, retracts=retracts)
            inserts, retracts = _restore(position, detour)
            serving.submit(inserts=inserts, retracts=retracts)
        serving.flush(120)
        churn_s = time.perf_counter() - churn_start
        time.sleep(0.02)
        stop.set()
        for worker in readers:
            worker.join(30)
            assert not worker.is_alive()

        violations = [v for worker in readers for v in worker.violations]
        latencies = [s for worker in readers for s in worker.latencies]
        queries = len(latencies)
        stats = serving.stats()
        assert serving.session.check()  # served model == from-scratch model
    finally:
        serving.close()

    assert violations == [], violations[:5]
    assert queries > 0 and all(w.stability_checks > 0 for w in readers)
    qps = queries / churn_s
    p50_ms = _percentile(latencies, 0.50) * 1000.0
    p99_ms = _percentile(latencies, 0.99) * 1000.0
    benchmark.extra_info.update({
        "readers": READERS,
        "queries": queries,
        "qps": round(qps, 1),
        "query_p50_ms": round(p50_ms, 3),
        "query_p99_ms": round(p99_ms, 3),
        "violations": len(violations),
        "epochs_published": stats["epochs"]["published"],
        "rebases": stats["epochs"]["rebases"],
        "batches": stats["batches"],
        "churn_s": round(churn_s, 4),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E14a  Snapshot-isolated serving under churn (chain-%d, %d readers)"
        % (CHAIN, READERS),
        ["workload", "queries", "qps", "p50 (ms)", "p99 (ms)", "epochs",
         "batches", "violations"],
        [ExperimentRow("rewire churn x40", {
            "queries": queries,
            "qps": round(qps, 1),
            "p50 (ms)": round(p50_ms, 2),
            "p99 (ms)": round(p99_ms, 2),
            "epochs": stats["epochs"]["published"],
            "batches": stats["batches"],
            "violations": len(violations),
        })],
    )


def _drive_batched(operations, max_batch):
    """Queue every op while paused, then time resume → drain."""
    serving = ServingSession(transitive_closure_program(chain_edges(CHAIN)),
                             max_batch=max_batch, max_pending=4096)
    try:
        serving.pause()
        futures = [serving.submit(inserts=ins, retracts=rem)
                   for ins, rem in operations]
        start = time.perf_counter()
        serving.resume()
        serving.flush(300)
        elapsed = time.perf_counter() - start
        assert all(future.done() for future in futures)
        # every chain node still reachable (now through its detour)
        answers = serving.query("tc(n0, X)")
        assert len(answers) >= CHAIN
        assert serving.session.check()
        return elapsed, serving.stats()["batches"]
    finally:
        serving.close()


def test_writer_batching_speedup(benchmark):
    """E14b: coalesced maintenance beats per-op maintenance ≥BATCH_BAR x."""
    operations = [_rewire((k * 8) % (CHAIN - 1), "d%d" % k)
                  for k in range(24)]
    unbatched_s, unbatched_batches = _drive_batched(operations, max_batch=1)
    batched_s, batched_batches = _drive_batched(operations, max_batch=64)
    assert unbatched_batches == len(operations)
    assert batched_batches < unbatched_batches

    speedup = unbatched_s / batched_s
    benchmark.extra_info.update({
        "operations": len(operations),
        "unbatched_s": round(unbatched_s, 4),
        "batched_s": round(batched_s, 4),
        "unbatched_batches": unbatched_batches,
        "batched_batches": batched_batches,
        "batch_speedup": round(speedup, 1),
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E14b  Writer batching: per-op vs coalesced maintenance "
        "(chain-%d, %d rewires)" % (CHAIN, len(operations)),
        ["max_batch", "passes", "wall (s)", "speedup"],
        [
            ExperimentRow("1 (per-op)", {
                "passes": unbatched_batches,
                "wall (s)": round(unbatched_s, 3),
                "speedup": 1.0,
            }),
            ExperimentRow("64 (coalesced)", {
                "passes": batched_batches,
                "wall (s)": round(batched_s, 3),
                "speedup": round(speedup, 1),
            }),
        ],
    )
    assert speedup >= BATCH_BAR, (
        "coalesced writer batching is only %.1fx faster than per-op "
        "maintenance (bar: %.1fx)" % (speedup, BATCH_BAR)
    )
