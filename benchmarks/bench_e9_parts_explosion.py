"""E9 — Section 6: the parts-explosion program (aggregation through recursion).

Reproduces the paper's bicycle example (94 spokes) and benchmarks the
aggregate-aware modular evaluation on random acyclic part hierarchies of
growing depth, validating every containment count against an independent
plain-Python reference implementation.

Run with::

    pytest benchmarks/bench_e9_parts_explosion.py --benchmark-only -s
"""

import pytest

from repro.analysis.report import ExperimentRow, print_table
from repro.core.modular import perfect_model_for_hilog
from repro.hilog.parser import parse_term
from repro.hilog.terms import App, Sym
from repro.workloads.parts import (
    bicycle_parts_program,
    expected_containment,
    parts_explosion_program,
    random_hierarchy,
)


def containment_of(model, machine):
    result = {}
    for atom in model.true:
        if isinstance(atom, App) and atom.name == Sym("contains") and atom.args[0] == Sym(machine):
            _mach, whole, part, count = atom.args
            result[(whole.name, part.name)] = count.value
    return result


def test_bicycle_example(benchmark):
    model = benchmark(lambda: perfect_model_for_hilog(bicycle_parts_program()))
    assert model.is_true(parse_term("contains(bike, bicycle, spoke, 94)"))
    counts = containment_of(model, "bike")
    print_table(
        "E9a  Parts explosion, the paper's bicycle (paper: 94 spokes per bicycle)",
        ["pair", "count"],
        [ExperimentRow("%s contains %s" % pair, {"count": count})
         for pair, count in sorted(counts.items())],
    )


@pytest.mark.parametrize("levels,parts_per_level", [(3, 3), (4, 4), (5, 4)])
def test_random_hierarchies(benchmark, levels, parts_per_level):
    triples = random_hierarchy(levels=levels, parts_per_level=parts_per_level,
                               fanout=2, seed=levels * 10 + parts_per_level)
    program = parts_explosion_program({"mach": {"rel": triples}})
    model = benchmark(lambda: perfect_model_for_hilog(program))
    measured = containment_of(model, "mach")
    assert measured == expected_containment(triples)
    print_table(
        "E9b  Parts explosion on a random %d-level hierarchy" % levels,
        ["quantity", "value"],
        [ExperimentRow("direct part facts", {"value": len(triples)}),
         ExperimentRow("containment pairs derived", {"value": len(measured)}),
         ExperimentRow("matches reference implementation", {"value": True})],
    )
