"""E16 — Durability: recovery speed and WAL overhead.

Two acceptance bars from the durability PR:

* **Recovery wins.**  Recovering a chain-200 transitive-closure session
  from its newest snapshot plus the WAL tail must be >= 5x faster than
  the no-checkpoint alternative — replaying the *entire* WAL through
  incremental maintenance from a freshly materialized base.  (That is
  the honest denominator: it is exactly what recovery degrades to when
  every snapshot is lost, and it is itself far cheaper than the naive
  re-derive-everything path, which is also recorded for scale.)
* **Logging is near-free.**  With ``fsync="batch"`` (the default
  policy), single-edge insert/retract maintenance on a durable chain-200
  session must cost <= 1.3x the plain in-memory session — the WAL append
  is two ``os.write`` calls per batch, amortizing the fsync.

CI's shared runners are noisy, so the smoke step can lower the bars via
``E16_RECOVERY_BAR`` / ``E16_OVERHEAD_BAR``; measured ratios are always
recorded in the benchmark JSON either way.

Run with::

    pytest benchmarks/bench_e16_durability.py --benchmark-only -s
"""

import os
import shutil
import time

from repro.analysis.report import ExperimentRow, print_table
from repro.db import DatabaseSession
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges

CHAIN = 200
#: Churn transactions logged before the crash (the WAL the no-snapshot
#: path must replay in full).
CHURN = 100
#: Transactions after the last checkpoint (the tail the snapshot path
#: replays).
TAIL = 8

RECOVERY_BAR = float(os.environ.get("E16_RECOVERY_BAR", "5"))
OVERHEAD_BAR = float(os.environ.get("E16_OVERHEAD_BAR", "1.3"))


def _churned_directory(base):
    """Build a crashed chain-200 data directory: CHURN committed WAL
    transactions, a checkpoint TAIL transactions before the end, no
    final checkpoint (the process 'died').

    The churn mixes cheap branch-edge inserts with mid-chain toggles of
    ``e(n100, n101)`` — a retract/insert pair there tears down and
    re-derives the O(n^2/4) paths crossing the cut, the expensive end of
    real maintenance — so full-WAL replay reflects an honest update mix,
    not just best-case appends."""
    directory = os.path.join(base, "data")
    program = transitive_closure_program(chain_edges(CHAIN))
    session = DatabaseSession(program, path=directory, fsync="off")
    _apply_churn(session)
    session.checkpoint()
    _apply_tail(session)
    expected_facts = len(session)
    total_txns = session.stats()["durability"]["wal_last_txn"]
    session._durable.abandon()
    return directory, expected_facts, total_txns


def _apply_churn(session):
    mid = "e(n%d, n%d)." % (CHAIN // 2, CHAIN // 2 + 1)
    present = True
    for step in range(CHURN - TAIL):
        if step % 8 == 7:
            (session.retract if present else session.insert)(mid)
            present = not present
        else:
            # Branch edges off the chain: each insert extends the closure
            # of every ancestor, so replay does real maintenance work.
            session.insert("e(n%d, x%d)." % (step % CHAIN, step))
    if not present:
        session.insert(mid)  # leave the chain whole for the tail


def _apply_tail(session):
    for step in range(TAIL):
        session.insert("e(n%d, y%d)." % (step, step))


def _time_open(directory):
    start = time.perf_counter()
    session = DatabaseSession.open(directory)
    elapsed = time.perf_counter() - start
    facts = len(session)
    replayed = session.stats()["durability"]["replayed_txns"]
    session.close(checkpoint=False)
    return elapsed, facts, replayed


def test_chain200_recovery_vs_full_replay(benchmark, tmp_path):
    directory, expected_facts, total_txns = _churned_directory(str(tmp_path))

    # Scenario A: snapshot + tail (the normal recovery path).
    snap_dir = os.path.join(str(tmp_path), "with_snapshot")
    shutil.copytree(directory, snap_dir)
    snap_s, snap_facts, snap_replayed = _time_open(snap_dir)

    # Scenario B: every snapshot lost — rematerialize the base program,
    # replay the whole WAL.  The honest no-checkpoint denominator.
    replay_dir = os.path.join(str(tmp_path), "wal_only")
    shutil.copytree(directory, replay_dir)
    for name in os.listdir(replay_dir):
        if name.endswith(".snap"):
            os.unlink(os.path.join(replay_dir, name))
    replay_s, replay_facts, replay_replayed = _time_open(replay_dir)

    # Scale reference: re-running the whole op stream against a plain
    # in-memory session — what a WAL-less system does, minus the log.
    start = time.perf_counter()
    fresh = DatabaseSession(transitive_closure_program(chain_edges(CHAIN)))
    _apply_churn(fresh)
    _apply_tail(fresh)
    rebuild_s = time.perf_counter() - start
    assert len(fresh) == expected_facts

    assert snap_facts == replay_facts == expected_facts
    assert snap_replayed == TAIL
    assert replay_replayed == total_txns
    ratio = replay_s / snap_s

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain=CHAIN, churn=CHURN, tail=TAIL, facts=expected_facts,
        snapshot_recovery_s=round(snap_s, 4),
        full_replay_s=round(replay_s, 4),
        rebuild_from_scratch_s=round(rebuild_s, 4),
        recovery_speedup=round(ratio, 1),
    )
    print_table(
        "E16a  Chain-%d crashed session: recovery paths" % CHAIN,
        ["path", "time (s)", "speedup"],
        [
            ExperimentRow("snapshot + %d-txn tail" % TAIL, {
                "time (s)": round(snap_s, 4),
                "speedup": round(ratio, 1),
            }),
            ExperimentRow("full WAL replay (%d txns)" % total_txns, {
                "time (s)": round(replay_s, 4), "speedup": 1.0,
            }),
            ExperimentRow("in-memory re-run (no WAL)", {
                "time (s)": round(rebuild_s, 4),
                "speedup": round(rebuild_s / replay_s, 2),
            }),
        ],
    )
    assert ratio >= RECOVERY_BAR


def test_fsync_batch_overhead_on_updates(benchmark, tmp_path):
    program = transitive_closure_program(chain_edges(CHAIN))
    edge = "e(n_pre, n0)."

    def _cycle_time(session, rounds=5):
        # Warm indexes, then best-of single-edge insert+retract cycles —
        # the same measurement e11 gates the in-memory session on.
        session.insert(edge)
        session.retract(edge)
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            session.insert(edge)
            session.retract(edge)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    plain = DatabaseSession(program)
    plain_s = _cycle_time(plain)

    durable = DatabaseSession(
        program, path=os.path.join(str(tmp_path), "data"), fsync="batch",
    )
    durable_s = _cycle_time(durable)
    durable.close()

    overhead = durable_s / plain_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain=CHAIN,
        plain_cycle_s=round(plain_s, 6),
        durable_cycle_s=round(durable_s, 6),
        overhead_x=round(overhead, 3),
    )
    print_table(
        "E16b  Chain-%d single-edge cycle: WAL (fsync=batch) overhead"
        % CHAIN,
        ["session", "cycle (s)", "ratio"],
        [
            ExperimentRow("in-memory", {
                "cycle (s)": round(plain_s, 5), "ratio": 1.0,
            }),
            ExperimentRow("durable, fsync=batch", {
                "cycle (s)": round(durable_s, 5),
                "ratio": round(overhead, 3),
            }),
        ],
    )
    assert overhead <= OVERHEAD_BAR


def test_wellfounded_recovery_round_trip(benchmark, tmp_path):
    """Durability is not stratified-only: a win/move session (undefined
    partition and all) crashes and recovers byte-identically."""
    from repro.workloads.games import line_into_cycle_game_program

    directory = os.path.join(str(tmp_path), "wf")
    program, _line, _cycle = line_into_cycle_game_program(40, 12)
    session = DatabaseSession(program, path=directory, fsync="off")
    for step in range(20):
        session.insert("move(extra%d, extra%d)." % (step, step + 1))
    expected_true = set(session.true)
    expected_undef = set(session.undefined)
    session._durable.abandon()

    start = time.perf_counter()
    recovered = DatabaseSession.open(directory)
    recovery_s = time.perf_counter() - start
    assert set(recovered.true) == expected_true
    assert set(recovered.undefined) == expected_undef
    recovered.close(checkpoint=False)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        recovery_s=round(recovery_s, 4),
        true_atoms=len(expected_true),
        undefined_atoms=len(expected_undef),
    )
