"""Benchmark-suite configuration: make the package importable from source,
and isolate the global execution counters between benchmarks."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.engine.seminaive import EXECUTION_STATS


@pytest.fixture(autouse=True)
def _reset_execution_stats():
    """Zero the register executor's global fetch/candidate counters before
    every benchmark, so one benchmark's join volume never skews another's
    recorded attribution (they are also flushed by every intern-table
    collection)."""
    EXECUTION_STATS.reset()
    yield
