"""E11 — Incremental maintenance vs full recomputation.

Measures :class:`repro.db.DatabaseSession` maintaining a materialized
perfect model under single-edge updates and update streams, against the
cost of recomputing the model from scratch with the semi-naive engine.

The headline scenario (the acceptance bar of the incremental-session PR):
on a chain-200 transitive-closure session, a single-edge insert and the
matching retract must each run >= 50x faster than full recomputation, with
the maintained model identical to the recomputed one at every step.

Alongside wall time, the headline scenario records the register executor's
join-candidate counters and the allocation volume of a traced
insert/retract cycle, so maintenance speedups stay attributable.

Run with::

    pytest benchmarks/bench_e11_incremental.py --benchmark-only -s
"""

import os
import time
import tracemalloc

import pytest

from repro.engine.seminaive import EXECUTION_STATS

from repro.analysis.report import ExperimentRow, print_table
from repro.db import DatabaseSession
from repro.engine.seminaive import seminaive_evaluate
from repro.workloads.closure import transitive_closure_program
from repro.workloads.games import datahilog_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges
from repro.workloads.streams import edge_churn_stream, replay, win_move_stream

CHAIN = 200
#: The acceptance bar on a quiet machine.  CI's shared runners are noisy
#: enough that a hard gate would flake on unrelated changes, so the smoke
#: step lowers the bar via this env var; the measured ratios are always
#: recorded in BENCH_results.json either way.  Originally 50x against the
#: PR-2 engine; the PR-3 register executor sped the full-recompute
#: *denominator* up ~3.5x while single-edge DRed maintenance (dominated by
#: per-fact over-delete/rederive bookkeeping) gained ~3x, so the same
#: absolute win now shows as a tighter ratio — 40x keeps an honest margin
#: without flaking, and the absolute times are gated by
#: ``run_all.py --check-baseline`` against ``benchmarks/baseline.json``.
SPEEDUP_BAR = float(os.environ.get("E11_SPEEDUP_BAR", "40"))


def _best_of(fn, rounds=5):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _full_recompute_time(program):
    return _best_of(lambda: seminaive_evaluate(program), rounds=3)


def test_chain200_single_edge_insert_and_retract(benchmark):
    """The headline: prepend/undo a single edge on a chain-200 TC session."""
    program = transitive_closure_program(chain_edges(CHAIN))
    session = DatabaseSession(program)
    full = _full_recompute_time(program)

    edge = "e(n_pre, n0)."
    # Warm the session's on-demand indexes out of the measurement.
    session.insert(edge)
    session.check()
    session.retract(edge)
    session.check()

    times = {"insert": [], "retract": []}
    before = EXECUTION_STATS.snapshot()
    for _ in range(5):
        start = time.perf_counter()
        session.insert(edge)
        times["insert"].append(time.perf_counter() - start)
        start = time.perf_counter()
        session.retract(edge)
        times["retract"].append(time.perf_counter() - start)
    update_stats = EXECUTION_STATS.diff(before)
    session.check()
    t_insert = min(times["insert"])
    t_retract = min(times["retract"])

    # Attribution: allocation volume of one maintained insert+retract cycle.
    tracemalloc.start()
    session.insert(edge)
    session.retract(edge)
    _current, alloc_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    session.check()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain=CHAIN, facts=len(session),
        full_s=round(full, 4), insert_s=round(t_insert, 6),
        retract_s=round(t_retract, 6),
        insert_speedup=round(full / t_insert, 1),
        retract_speedup=round(full / t_retract, 1),
        join_fetches_per_cycle=update_stats["fetches"] // 5,
        join_candidates_per_cycle=update_stats["candidates"] // 5,
        alloc_peak_kb=alloc_peak // 1024,
    )
    print_table(
        "E11a  Chain-%d TC session: single-edge update vs full recompute" % CHAIN,
        ["operation", "time (s)", "speedup"],
        [
            ExperimentRow("full recompute", {"time (s)": round(full, 4), "speedup": 1.0}),
            ExperimentRow("insert e(n_pre, n0)", {
                "time (s)": round(t_insert, 5),
                "speedup": round(full / t_insert, 1),
            }),
            ExperimentRow("retract e(n_pre, n0)", {
                "time (s)": round(t_retract, 5),
                "speedup": round(full / t_retract, 1),
            }),
        ],
    )
    assert full / t_insert >= SPEEDUP_BAR
    assert full / t_retract >= SPEEDUP_BAR


def test_chain200_update_positions(benchmark):
    """Transparency table: the incremental win depends on where the edge
    lands — appends/prepends touch O(n) facts, a mid-chain cut touches
    O(n^2/4).  The maintained model is verified at every step."""
    program = transitive_closure_program(chain_edges(CHAIN))
    session = DatabaseSession(program)
    full = _full_recompute_time(program)

    rows = []
    for label, edge in [
        ("prepend e(n_pre, n0)", "e(n_pre, n0)."),
        ("append e(n%d, n%d)" % (CHAIN, CHAIN + 1), "e(n%d, n%d)." % (CHAIN, CHAIN + 1)),
        ("mid cut e(n%d, n%d)" % (CHAIN // 2, CHAIN // 2 + 1),
         "e(n%d, n%d)." % (CHAIN // 2, CHAIN // 2 + 1)),
    ]:
        if label.startswith("mid"):
            t_retract = _best_of(lambda: session.retract(edge), rounds=1)
            session.check()
            t_insert = _best_of(lambda: session.insert(edge), rounds=1)
            session.check()
        else:
            session.insert(edge)
            session.retract(edge)
            best_i = best_r = None
            for _ in range(3):
                start = time.perf_counter(); session.insert(edge)
                elapsed = time.perf_counter() - start
                best_i = elapsed if best_i is None else min(best_i, elapsed)
                start = time.perf_counter(); session.retract(edge)
                elapsed = time.perf_counter() - start
                best_r = elapsed if best_r is None else min(best_r, elapsed)
            t_insert, t_retract = best_i, best_r
            session.check()
        rows.append(ExperimentRow(label, {
            "insert (s)": round(t_insert, 5),
            "ins x": round(full / t_insert, 1),
            "retract (s)": round(t_retract, 5),
            "ret x": round(full / t_retract, 1),
        }))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E11b  Chain-%d TC session: speedup by update position" % CHAIN,
        ["update", "insert (s)", "ins x", "retract (s)", "ret x"],
        rows,
    )


def test_closure_churn_stream(benchmark):
    """A 40-step random insert/retract stream over a DAG closure session:
    the maintained model equals the from-scratch model after every step."""
    edges = random_dag_edges(60, 150, seed=11)
    program = transitive_closure_program(edges)
    session = DatabaseSession(program)
    stream = edge_churn_stream(edges, operations=40, seed=11)

    before = EXECUTION_STATS.snapshot()
    start = time.perf_counter()
    replay(session, stream)
    incremental = time.perf_counter() - start
    incremental_candidates = EXECUTION_STATS.diff(before)["candidates"]
    session.check()

    before = EXECUTION_STATS.snapshot()
    start = time.perf_counter()
    for _ in range(len(stream)):
        seminaive_evaluate(program)
    scratch = time.perf_counter() - start
    scratch_candidates = EXECUTION_STATS.diff(before)["candidates"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        steps=len(stream), facts=len(session),
        incremental_s=round(incremental, 4), scratch_s=round(scratch, 4),
        speedup=round(scratch / incremental, 1),
        incremental_candidates=incremental_candidates,
        scratch_candidates=scratch_candidates,
    )
    print_table(
        "E11c  DAG-closure churn stream (%d steps)" % len(stream),
        ["mode", "time (s)", "speedup"],
        [
            ExperimentRow("recompute every step", {"time (s)": round(scratch, 3), "speedup": 1.0}),
            ExperimentRow("incremental session", {
                "time (s)": round(incremental, 3),
                "speedup": round(scratch / incremental, 1),
            }),
        ],
    )
    assert scratch / incremental > 1.0


def test_win_move_stream_recompute_mode(benchmark):
    """Win/move sessions fall back to whole-model recomputation (negation
    inside the component); the stream documents that the fallback stays
    correct under churn."""
    edges = random_dag_edges(30, 60, seed=5)
    program = datahilog_game_program({"m": edges})
    session = DatabaseSession(program)
    assert session.mode == "recompute"
    stream = win_move_stream(30, edges, operations=10, seed=5)
    summaries = benchmark.pedantic(
        lambda: replay(session, stream, verify=True), rounds=1, iterations=1
    )
    assert len(summaries) == len(stream)


def test_counting_stratum_maintenance(benchmark):
    """A non-recursive join stratum (two-hop reachability) is maintained by
    the counting algorithm; verify support-count bookkeeping under churn."""
    edges = random_dag_edges(80, 240, seed=3)
    lines = [
        "hop2(X, Y) :- e(X, Z), e(Z, Y).",
        "triangle(X) :- e(X, Y), hop2(Y, X).",
    ]
    lines.extend("e(%s, %s)." % edge for edge in edges)
    session = DatabaseSession("\n".join(lines))
    assert "counting" in session.strategies()
    stream = edge_churn_stream(edges, operations=30, seed=3)
    benchmark.pedantic(
        lambda: replay(session, stream, verify=True), rounds=1, iterations=1
    )
    assert session.stats()["counting_updates"] > 0
