"""E15 — Observability: tracing stays out of the hot path, /metrics scrapes.

The observability subsystem (:mod:`repro.obs`) must be free when unused
and correct when used.  Two rows:

* **E15a — disabled-tracing overhead (the ≤``E15_OVERHEAD_BAR``x gate,
  default 1.5x).**  The chain-80 seminaive perfect model is timed with no
  tracer installed and again with an in-memory
  :class:`~repro.obs.trace.EvaluationTracer` capturing every span.  The
  hooks fire per stratum / per fixpoint iteration — never per join
  candidate — so even the *enabled* run must stay within the bar, and the
  disabled run's ``perfect_off_s`` lands in ``extra_info`` where the
  baseline gate keeps it honest against the pre-instrumentation timings.
* **E15b — /metrics under serving churn.**  A :class:`ServeServer` fronts
  a chain-80 serving session while a client thread interleaves inserts,
  queries and scrapes; the final ``GET /metrics`` body must parse as
  Prometheus text exposition 0.0.4 (the strict
  :func:`~repro.obs.metrics.parse_prometheus_text` validator: counter
  ``_total`` naming, cumulative monotone buckets, the ``+Inf`` bucket)
  and carry the request-latency histogram, the writer-queue gauges and
  the session maintenance counters.  The registry snapshot is exported
  under ``extra_info["metrics"]``, which ``run_all.py`` surfaces as its
  own key in ``BENCH_results.json``.

Run with::

    pytest benchmarks/bench_e15_observability.py --benchmark-only -s
"""

import asyncio
import http.client
import json
import os
import threading
import time

from repro.analysis.report import ExperimentRow, print_table
from repro.core.modular import perfect_model_for_hilog
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus_text,
    set_default_registry,
)
from repro.obs.trace import EvaluationTracer, tracing
from repro.serve import ServingSession
from repro.serve.server import serve
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges

#: Machine-independent bar for E15a: the traced run over the untraced run
#: (same process, same workload — robust to the machine; CI relaxes it for
#: shared-runner noise like the other ratio gates).
OVERHEAD_BAR = float(os.environ.get("E15_OVERHEAD_BAR", "1.5"))

CHAIN = 80
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_disabled_overhead(benchmark):
    """E15a: span hooks cost nothing measurable when no tracer is live."""
    program = transitive_closure_program(chain_edges(CHAIN))
    evaluate = lambda: perfect_model_for_hilog(program, strategy="seminaive")
    evaluate()  # warmup: imports, first-use code paths

    off_s = _best_of(evaluate)
    tracer = EvaluationTracer(capacity=65536)
    with tracing(tracer):
        traced_s = _best_of(evaluate)
    events = len(tracer)
    assert events > 0, "enabled tracer captured no spans"
    assert {e["kind"] for e in tracer.events()} >= {
        "iteration", "stratum", "evaluate",
    }

    overhead = traced_s / off_s
    benchmark.extra_info.update({
        "chain": CHAIN,
        "perfect_off_s": round(off_s, 4),
        "perfect_traced_s": round(traced_s, 4),
        "overhead_x": round(overhead, 2),
        "trace_events": events,
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E15a  Tracing overhead (chain-%d seminaive perfect model)" % CHAIN,
        ["tracer", "wall (s)", "overhead", "events"],
        [
            ExperimentRow("disabled", {
                "wall (s)": round(off_s, 4), "overhead": 1.0, "events": 0,
            }),
            ExperimentRow("enabled", {
                "wall (s)": round(traced_s, 4),
                "overhead": round(overhead, 2), "events": events,
            }),
        ],
    )
    assert overhead <= OVERHEAD_BAR, (
        "tracing-enabled evaluation is %.2fx the untraced run "
        "(bar: %.2fx)" % (overhead, OVERHEAD_BAR)
    )


class _Server:
    """A ServeServer on a loop thread, plus a minimal raw-HTTP client."""

    def __init__(self, serving):
        self.serving = serving
        self.address = None
        self._ready = threading.Event()
        self._task = {}
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def ready(server):
            self.address = server.address
            self._ready.set()

        async def main():
            self._task["t"] = asyncio.current_task()
            await serve(self.serving, port=0, slow_query_ms=0.0, ready=ready)

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def request(self, method, path, payload=None):
        host, port = self.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        body = None if payload is None else json.dumps(payload)
        headers = {} if payload is None else {"Content-Type": "application/json"}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        content_type = response.getheader("Content-Type", "")
        conn.close()
        return response.status, content_type, data

    def stop(self):
        task = self._task.get("t")
        if task is not None:
            task.get_loop().call_soon_threadsafe(task.cancel)
        self._thread.join(10)


def test_metrics_scrape_under_churn(benchmark):
    """E15b: the /metrics exposition stays parseable while writes land."""
    registry = MetricsRegistry()
    # The writer thread resolves the *process* registry (contextvars do
    # not reach already-running threads), so swap the default for the test.
    previous = set_default_registry(registry)
    serving = ServingSession(transitive_closure_program(chain_edges(CHAIN)),
                             max_batch=16, max_pending=4096)
    try:
        server = _Server(serving)
        try:
            operations = 0
            start = time.perf_counter()
            for k in range(12):
                status, _ct, _body = server.request(
                    "POST", "/insert",
                    {"facts": "e(n%d, x%d)." % (k % CHAIN, k)},
                )
                assert status == 200
                status, _ct, body = server.request(
                    "POST", "/query", {"query": "tc(n0, X)"},
                )
                assert status == 200
                assert json.loads(body)["count"] >= CHAIN
                operations += 2
                if k % 4 == 0:  # interleave scrapes with the churn
                    status, _ct, _body = server.request("GET", "/metrics")
                    assert status == 200
                    operations += 1
            churn_s = time.perf_counter() - start

            status, content_type, data = server.request("GET", "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "version=0.0.4" in content_type
            text = data.decode("utf-8")
            parsed = parse_prometheus_text(text)  # strict format validator

            for family in (
                "repro_http_request_seconds_bucket",
                "repro_http_request_seconds_count",
                "repro_http_requests_total",
                "repro_serve_pending_ops",
                "repro_serve_writer_alive",
                "repro_session_updates_total",
                "repro_session_update_seconds_bucket",
            ):
                assert family in parsed, (family, sorted(parsed))
            insert_counts = [
                value for labels, value in parsed["repro_http_requests_total"]
                if labels.get("endpoint") == "/insert"
            ]
            assert sum(insert_counts) == 12
            alive = dict(
                (tuple(sorted(labels.items())), value)
                for labels, value in parsed["repro_serve_writer_alive"]
            )
            assert set(alive.values()) == {1.0}

            status, _ct, body = server.request("GET", "/healthz")
            assert status == 200 and json.loads(body)["ok"] is True
        finally:
            server.stop()
    finally:
        serving.close()
        set_default_registry(previous)

    snapshot = registry.snapshot()
    benchmark.extra_info.update({
        "operations": operations,
        "churn_s": round(churn_s, 4),
        "scrape_bytes": len(data),
        "sample_families": len(parsed),
        "metrics": snapshot,
    })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E15b  /metrics scrape under serving churn (chain-%d)" % CHAIN,
        ["measure", "value"],
        [
            ExperimentRow("operations", {"value": operations}),
            ExperimentRow("scrape bytes", {"value": len(data)}),
            ExperimentRow("sample families", {"value": len(parsed)}),
            ExperimentRow("registry series", {"value": len(snapshot)}),
        ],
    )
