"""Tests for the HiLog well-founded/stable semantics (Section 4).

Covers Example 4.1 (the HiLog semantics differs from the normal semantics on
non-domain-independent programs) and Theorems 4.1/4.2 (for range-restricted
normal programs the HiLog semantics conservatively extends the normal one).
"""

import pytest

from repro.analysis.compare import hilog_vs_normal_reduction
from repro.core.semantics import (
    hilog_ground_program,
    hilog_stable_models,
    hilog_well_founded_model,
    normal_stable_models,
    normal_well_founded_model,
)
from repro.engine.interpretation import conservatively_extends
from repro.hilog.errors import GroundingError
from repro.hilog.parser import parse_program, parse_term
from repro.workloads.random_programs import random_range_restricted_program


class TestExample41:
    PROGRAM = "p :- not q(X). q(a)."

    def test_normal_semantics_makes_p_false(self):
        # Over the normal Herbrand universe {a}, the only instance is
        # p :- not q(a), and q(a) is true, so p is false.
        model = normal_well_founded_model(parse_program(self.PROGRAM))
        assert model.is_false(parse_term("p"))

    def test_hilog_semantics_makes_p_true(self):
        # Over the HiLog universe there are other substitutions (X/p, X/q(a), ...)
        # for which q(X) is false, so p becomes true.
        model = hilog_well_founded_model(
            parse_program(self.PROGRAM), grounding="universe", max_depth=1
        )
        assert model.is_true(parse_term("p"))

    def test_hilog_and_normal_differ_hence_no_conservative_extension(self):
        program = parse_program(self.PROGRAM)
        normal_model = normal_well_founded_model(program)
        hilog_model = hilog_well_founded_model(program, grounding="universe", max_depth=1)
        assert not conservatively_extends(hilog_model, normal_model,
                                          smaller_symbols=program.symbols())

    def test_nonground_fact_example(self):
        # p(X, X, a): normally the only instance is p(a, a, a); in HiLog the
        # model is infinite — the universe fragment contains e.g. p(p, p, a).
        program = parse_program("p(X, X, a).")
        normal_model = normal_well_founded_model(program)
        assert normal_model.is_true(parse_term("p(a, a, a)"))
        assert len(normal_model.true) == 1
        hilog_model = hilog_well_founded_model(program, grounding="universe", max_depth=0)
        assert hilog_model.is_true(parse_term("p(a, a, a)"))
        assert hilog_model.is_true(parse_term("p(p, p, a)"))


class TestReductionTheorems:
    def test_theorem_4_1_on_win_move(self):
        program = parse_program(
            "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c)."
        )
        check = hilog_vs_normal_reduction(program)
        assert check.well_founded_conservative
        assert check.stable_correspondence

    def test_theorem_4_1_with_exhaustive_universe_grounding(self):
        # Small enough vocabulary to ground over the depth-1 HiLog fragment.
        program = parse_program("p(X) :- q(X), not r(X). q(a). r(b).")
        check = hilog_vs_normal_reduction(program, grounding="universe", check_stable=False)
        assert check.well_founded_conservative
        assert check.hilog_model.is_true(parse_term("p(a)"))
        assert check.hilog_model.is_false(parse_term("p(q(a))"))

    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_4_1_and_4_2_on_random_programs(self, seed):
        program = random_range_restricted_program(seed=seed)
        check = hilog_vs_normal_reduction(program)
        assert check.well_founded_conservative
        assert check.stable_correspondence

    @pytest.mark.parametrize("seed", range(4))
    def test_theorems_with_unstratified_negation(self, seed):
        program = random_range_restricted_program(seed=seed, negation="free", n_rules=3)
        check = hilog_vs_normal_reduction(program, check_stable=False)
        assert check.well_founded_conservative


class TestSemanticsEntryPoints:
    def test_relevant_and_universe_grounding_agree_on_true_atoms(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). q(b). r(b).")
        relevant = hilog_well_founded_model(program, grounding="relevant")
        universe = hilog_well_founded_model(program, grounding="universe", max_depth=1)
        assert relevant.true <= universe.true
        assert {a for a in universe.true} & set(relevant.base) == set(relevant.true)

    def test_stable_models_entry_point(self):
        program = parse_program("p :- not q. q :- not p. r(a).")
        models = hilog_stable_models(program, grounding="universe", max_depth=0)
        assert len(models) == 2

    def test_normal_entry_points_reject_hilog(self):
        with pytest.raises(GroundingError):
            normal_well_founded_model(parse_program("winning(M)(X) :- game(M)."))

    def test_unknown_grounding_strategy(self):
        with pytest.raises(ValueError):
            hilog_ground_program(parse_program("p."), grounding="bogus")

    def test_normal_stable_models(self):
        program = parse_program("p :- not q. q :- not p.")
        assert len(normal_stable_models(program)) == 2
