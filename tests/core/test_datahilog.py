"""Tests for Datahilog programs (Definition 6.7) and Lemma 6.3."""

import pytest

from repro.core.datahilog import (
    datahilog_bound,
    datahilog_relevant_atoms,
    is_datahilog,
    program_arities,
    program_constants,
    rule_is_datahilog,
)
from repro.core.semantics import hilog_well_founded_model
from repro.hilog.parser import parse_program, parse_rule
from repro.hilog.terms import Sym
from repro.workloads.games import datahilog_game_program
from repro.workloads.graphs import chain_edges


class TestDefinition67:
    def test_paper_positive_example(self):
        rule = parse_rule("winning(M, X) :- game(M), M(X, Y), not winning(M, Y).")
        assert rule_is_datahilog(rule)

    def test_paper_negative_example(self):
        rule = parse_rule("tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).")
        assert not rule_is_datahilog(rule)

    def test_function_symbols_disqualify(self):
        assert not rule_is_datahilog(parse_rule("p(f(X)) :- q(X)."))

    def test_variable_predicate_names_allowed(self):
        assert rule_is_datahilog(parse_rule("p(X) :- X(a, b)."))

    def test_program_level(self):
        assert is_datahilog(datahilog_game_program({"m": chain_edges(3)}))
        assert not is_datahilog(parse_program("winning(M)(X) :- game(M), M(X, Y)."))

    def test_builtins_are_exempt(self):
        assert rule_is_datahilog(parse_rule("t(X, N) :- c(X, M), N is M * 2."))


class TestLemma63:
    def test_relevant_atom_superset(self):
        program = parse_program("winning(M, X) :- game(M), M(X, Y), not winning(M, Y). game(m). m(a, b).")
        atoms = datahilog_relevant_atoms(program)
        # Every atom not made false by the WFS is inside the Lemma 6.3 set T.
        model = hilog_well_founded_model(program)
        for atom in model.true | model.undefined:
            assert atom in atoms

    def test_bound_formula(self):
        program = parse_program("p(a, b). q(c).")
        constants = program_constants(program)
        assert constants == {Sym("p"), Sym("q"), Sym("a"), Sym("b"), Sym("c")}
        assert program_arities(program) == {1, 2}
        # |C|^(n+1) for each arity: 5^2 + 5^3 = 150.
        assert datahilog_bound(program) == 150
        assert len(datahilog_relevant_atoms(program)) == 150

    def test_enumeration_guard(self):
        program = parse_program("p(a, b, c, d, e, f, g, h).")
        with pytest.raises(ValueError):
            datahilog_relevant_atoms(program, max_enumeration=1000)

    def test_non_datahilog_rejected(self):
        with pytest.raises(ValueError):
            datahilog_relevant_atoms(parse_program("p(f(a))."))

    def test_counterexample_without_strong_range_restriction(self):
        # The paper notes Lemma 6.3 fails for X(a, b): its (HiLog) model is
        # infinite, which shows up here as the program not being range
        # restricted at all (a non-ground fact).
        from repro.core.range_restriction import is_strongly_range_restricted

        program = parse_program("X(a, b).")
        assert is_datahilog(program)
        assert not is_strongly_range_restricted(program)
