"""Tests for the magic-sets rewriting and query-driven evaluation (Section 6.1)."""

import pytest

from repro.core.magic import (
    FREE,
    abstract_call,
    adornment_of,
    answer_query,
    left_to_right_sips,
    magic_evaluate,
    magic_rewrite,
)
from repro.core.magic.adornment import call_signature, generalize_pattern
from repro.core.semantics import hilog_well_founded_model
from repro.hilog.errors import GroundingError, StratificationError
from repro.hilog.parser import parse_program, parse_query, parse_rule, parse_term
from repro.hilog.terms import Sym, Var
from repro.workloads.games import multi_game_program
from repro.workloads.graphs import chain_edges


GAME_66 = parse_program("""
    w(M)(X) :- g(M), M(X, Y), not w(M)(Y).
    g(m). g(o).
    m(n0, n1). m(n1, n2). m(n2, n3).
    o(a, b).
""")


class TestAdornments:
    def test_abstract_call(self):
        atom = parse_term("w(M)(X)")
        abstracted = abstract_call(atom, bound_variables={Var("M")})
        assert abstracted == parse_term("w(M)('$free')")

    def test_adornment_of(self):
        assert adornment_of(parse_term("w(m)(a)")) == "bb"
        assert adornment_of(abstract_call(parse_term("w(M)(X)"), {Var("M")})) == "bf"
        assert adornment_of(abstract_call(parse_term("w(M)(X)"), set())) == "ff"

    def test_call_signature_merges_values(self):
        first = call_signature(parse_term("m(X, Y)"), {Var("X")})
        second = call_signature(parse_term("m(A, B)"), {Var("A")})
        assert generalize_pattern(first) == generalize_pattern(second)


class TestSips:
    def test_left_to_right_bindings(self):
        rule = parse_rule("w(M)(X) :- g(M), M(X, Y), not w(M)(Y).")
        steps = left_to_right_sips(rule, {Var("M"), Var("X")})
        assert steps[0].bound_before == frozenset({Var("M"), Var("X")})
        assert Var("Y") in steps[2].bound_before
        assert not any(step.flounders for step in steps)

    def test_floundering_negative_subgoal(self):
        rule = parse_rule("p(X) :- not q(Y), r(X, Y).")
        steps = left_to_right_sips(rule, {Var("X")})
        assert steps[0].flounders

    def test_supplementary_variables_only_keep_needed(self):
        rule = parse_rule("a(X) :- b(X, Y), c(Y, Z), d(X).")
        steps = left_to_right_sips(rule, {Var("X")})
        # After c(Y, Z), only X is still needed (by d and the head).
        assert steps[2].supplementary_variables == (Var("X"),)


class TestRewrite:
    def test_example_6_6_structure(self):
        rewritten = magic_rewrite(GAME_66, parse_query("w(m)(n0)"))
        program_text = repr(rewritten.rewritten_program())
        # Seed fact for the query.
        assert "magic(w(m)(n0))." in program_text
        # The four supplementary rules of the game rule (sup_1_0 .. sup_1_3).
        for index in range(4):
            assert "sup_1_%d" % index in program_text
        # Magic rules for the three subgoals, including the negative one.
        assert "magic(g(" in program_text
        assert "magic(w(" in program_text
        # One answer rule per original rule reachable from the query.
        assert any("w(" in repr(rule.head) for rule in rewritten.answer_rules)

    def test_rewritten_program_is_evaluable_and_correct(self):
        from repro.engine.grounding import relevant_ground_program
        from repro.engine.wellfounded import well_founded_model

        rewritten = magic_rewrite(GAME_66, parse_query("w(m)(n0)"))
        model = well_founded_model(relevant_ground_program(rewritten.rewritten_program()))
        full = hilog_well_founded_model(GAME_66)
        atom = parse_term("w(m)(n0)")
        assert model.is_true(atom) == full.is_true(atom)

    def test_binding_patterns_deduplicated(self):
        rewritten = magic_rewrite(GAME_66, parse_query("w(m)(n0)"))
        # The recursive negative call w(M)(Y) has the same (bb) pattern as the
        # query, so only a handful of patterns are produced.
        assert len(rewritten.binding_patterns) <= 5

    def test_floundering_rewrite_rejected(self):
        # With the argument unbound by the query, the leading negative subgoal
        # is reached with an unbound variable (footnote 10: the program flounders).
        program = parse_program("p(X) :- not q(X), r(X). r(a). q(a).")
        with pytest.raises(StratificationError):
            magic_rewrite(program, parse_query("p(X)"))

    def test_bound_query_does_not_flounder(self):
        # The same rule is fine when the call binds X before the negation.
        program = parse_program("p(X) :- not q(X), r(X). r(a). r(b). q(a).")
        rewritten = magic_rewrite(program, parse_query("p(b)"))
        assert rewritten.rule_count() > 0


class TestMagicEvaluate:
    def test_agrees_with_full_wfs(self):
        full = hilog_well_founded_model(GAME_66)
        for node in ["n0", "n1", "n2", "n3"]:
            atom = parse_term("w(m)(%s)" % node)
            result = magic_evaluate(GAME_66, parse_query("w(m)(%s)" % node))
            assert (atom in result.answers) == full.is_true(atom), node

    def test_open_argument_query(self):
        answers = answer_query(GAME_66, parse_query("w(m)(X)"))
        assert set(answers) == {parse_term("w(m)(n0)"), parse_term("w(m)(n2)")}

    def test_open_game_query(self):
        answers = answer_query(GAME_66, parse_query("w(G)(a)"))
        assert answers == (parse_term("w(o)(a)"),)

    def test_relevance_skips_other_games(self):
        edge_lists = [chain_edges(6, "x"), chain_edges(40, "y"), chain_edges(40, "z")]
        program, relations = multi_game_program(edge_lists)
        result = magic_evaluate(program, parse_query("w(move0)(x0)"))
        full = hilog_well_founded_model(program)
        # Magic evaluation only materializes atoms about the queried game.
        assert len(result.relevant_atoms) < len(full.base) / 3
        assert all("y" not in repr(atom) for atom in result.relevant_atoms)

    def test_floundering_query_detected(self):
        program = parse_program("p(X) :- q(X), not r(Y). q(a). r(b).")
        with pytest.raises(GroundingError):
            magic_evaluate(program, parse_query("p(a)"))

    def test_aggregates_rejected(self):
        program = parse_program("c(N) :- N = sum(P : in(P)). in(3).")
        with pytest.raises(GroundingError):
            magic_evaluate(program, parse_query("c(N)"))

    def test_datahilog_game(self):
        program = parse_program("""
            w(M, X) :- g(M), M(X, Y), not w(M, Y).
            g(m). m(a, b). m(b, c).
        """)
        assert answer_query(program, parse_query("w(m, a)")) == ()
        assert answer_query(program, parse_query("w(m, b)")) == (parse_term("w(m, b)"),)

    def test_builtin_in_body(self):
        program = parse_program("""
            expensive(X) :- cost(X, C), C > 5.
            cost(a, 3). cost(b, 9).
        """)
        assert answer_query(program, parse_query("expensive(X)")) == (parse_term("expensive(b)"),)

    def test_query_on_missing_predicate(self):
        assert answer_query(GAME_66, parse_query("nosuch(a)")) == ()
