"""Tests for HiLog range restriction (Definitions 5.5/5.6, Example 5.3)."""

import pytest

from repro.core.range_restriction import (
    classify_program,
    classify_rule,
    is_query_range_restricted,
    is_range_restricted,
    is_strongly_range_restricted,
    rule_is_range_restricted,
    rule_is_strongly_range_restricted,
)
from repro.hilog.parser import parse_program, parse_query, parse_rule


# The nine clauses of Example 5.3, with their classification.
EXAMPLE_5_3 = [
    ("X(Y)(Z) :- p(X, Y, W), W(a)(Z), not W(b)(Z).", "strongly_range_restricted"),
    ("p(X) :- X(a), q(X).", "strongly_range_restricted"),
    ("tc(G, X, Y) :- graph(G), G(X, Y).", "strongly_range_restricted"),
    ("X(Y)(Z) :- p(Y, Z, W), W(a)(Z), not X(b)(Z).", "range_restricted"),
    ("tc(G)(X, Y) :- G(X, Y).", "range_restricted"),
    ("not(X)() :- not X.", "range_restricted"),
    ("X(Y)(Z) :- Z(X, Y, W), W(a)(Z), not W(b)(Z).", "unrestricted"),
    ("p(X) :- X(a).", "unrestricted"),
    ("tc(G, X, Y) :- G(X, Y).", "unrestricted"),
    ("not(X) :- not X.", "unrestricted"),
]


class TestExample53:
    @pytest.mark.parametrize("text,expected", EXAMPLE_5_3)
    def test_classification(self, text, expected):
        assert classify_rule(parse_rule(text)) == expected

    def test_strongly_implies_range_restricted(self):
        for text, expected in EXAMPLE_5_3:
            rule = parse_rule(text)
            if rule_is_strongly_range_restricted(rule):
                assert rule_is_range_restricted(rule), text

    def test_classify_program(self):
        program = parse_program("tc(G)(X, Y) :- G(X, Y). graph(e).")
        classes = classify_program(program)
        assert set(classes.values()) == {"range_restricted", "strongly_range_restricted"}


class TestProgramLevel:
    def test_game_program_strongly_range_restricted(self):
        program = parse_program(
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y). game(m). m(a, b)."
        )
        assert is_strongly_range_restricted(program)
        assert is_range_restricted(program)

    def test_unguarded_tc_is_range_restricted_only(self):
        program = parse_program("tc(G)(X, Y) :- G(X, Y). tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).")
        assert is_range_restricted(program)
        assert not is_strongly_range_restricted(program)

    def test_guarded_tc_is_strongly_range_restricted(self):
        program = parse_program(
            "tc(G)(X, Y) :- graph(G), G(X, Y). tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y)."
        )
        assert is_strongly_range_restricted(program)

    def test_facts_are_strongly_range_restricted(self):
        assert is_strongly_range_restricted(parse_program("p(a). game(m)."))

    def test_nonground_fact_is_not_range_restricted(self):
        assert not is_range_restricted(parse_program("p(X, X, a)."))

    def test_paper_counterexample_rule(self):
        # X(a) :- X(X), not X(a): range restricted but not strongly (Section 5).
        rule = parse_rule("X(a) :- X(X), not X(a).")
        assert rule_is_range_restricted(rule)
        assert not rule_is_strongly_range_restricted(rule)

    def test_builtins_and_aggregates_bind(self):
        rule = parse_rule("total(X, N) :- cost(X, M), N is M * 2.")
        assert rule_is_strongly_range_restricted(rule)
        aggregate_rule = parse_rule("contains(M, X, Y, N) :- N = sum(P : in(M, X, Y, Z, P)).")
        assert rule_is_range_restricted(aggregate_rule)


class TestQueryRangeRestriction:
    def test_ground_predicate_name_query(self):
        assert is_query_range_restricted(parse_query("tc(e)(X, Y)"))

    def test_variable_predicate_name_query_not_restricted(self):
        # Queries must bind predicate names (discussion after Definition 5.5).
        assert not is_query_range_restricted(parse_query("tc(G)(X, Y)"))

    def test_query_with_binding_literal(self):
        assert is_query_range_restricted(parse_query("graph(G), tc(G)(X, Y)"))

    def test_negative_query_literal(self):
        assert is_query_range_restricted(parse_query("p(X), not q(X)"))
        assert not is_query_range_restricted(parse_query("not q(X)"))
