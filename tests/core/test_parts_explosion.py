"""Tests for the parts-explosion program with aggregation (Section 6)."""

import pytest

from repro.core.modular import modularly_stratified_for_hilog, perfect_model_for_hilog
from repro.hilog.parser import parse_program, parse_term
from repro.hilog.terms import App, Num, Sym
from repro.workloads.parts import (
    bicycle_parts_program,
    expected_containment,
    parts_explosion_program,
    random_hierarchy,
)


def containment_of(model, machine="bike"):
    """Extract {(whole, part): count} from the contains atoms of a model."""
    result = {}
    for atom in model.true:
        if isinstance(atom, App) and atom.name == Sym("contains"):
            mach, whole, part, count = atom.args
            if mach == Sym(machine):
                result[(whole.name, part.name)] = count.value
    return result


class TestBicycle:
    def test_is_modularly_stratified_through_aggregation(self):
        result = modularly_stratified_for_hilog(bicycle_parts_program())
        assert result.is_modularly_stratified

    def test_bicycle_has_94_spokes(self):
        # The paper: two wheels with 47 spokes each -> 94 spokes per bicycle.
        model = perfect_model_for_hilog(bicycle_parts_program())
        assert model.is_true(parse_term("contains(bike, bicycle, spoke, 94)"))

    def test_direct_and_transitive_counts(self):
        model = perfect_model_for_hilog(bicycle_parts_program())
        counts = containment_of(model)
        assert counts[("bicycle", "wheel")] == 2
        assert counts[("bicycle", "rim")] == 2
        assert counts[("bicycle", "tube")] == 3
        assert counts[("wheel", "spoke")] == 47

    def test_matches_reference_implementation(self):
        triples = [
            ("bicycle", "wheel", 2),
            ("bicycle", "frame", 1),
            ("wheel", "spoke", 47),
            ("wheel", "rim", 1),
            ("frame", "tube", 3),
        ]
        model = perfect_model_for_hilog(bicycle_parts_program())
        assert containment_of(model) == expected_containment(triples)


class TestGeneratedHierarchies:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_hierarchy_matches_reference(self, seed):
        triples = random_hierarchy(levels=3, parts_per_level=3, fanout=2, seed=seed)
        program = parts_explosion_program({"mach": {"rel": triples}})
        model = perfect_model_for_hilog(program)
        assert containment_of(model, machine="mach") == expected_containment(triples)

    def test_two_machines_share_a_hierarchy(self):
        # The paper motivates the assoc relation with machines sharing part
        # hierarchies without duplicating them.
        triples = [("car", "wheel", 4), ("wheel", "bolt", 5)]
        program = parts_explosion_program({
            "sedan": {"common_parts": triples},
            "wagon": {"common_parts": triples},
        })
        model = perfect_model_for_hilog(program)
        assert model.is_true(parse_term("contains(sedan, car, bolt, 20)"))
        assert model.is_true(parse_term("contains(wagon, car, bolt, 20)"))

    def test_multiple_paths_are_summed(self):
        # a has 2 b and 1 c; b has 3 d; c has 4 d -> a contains 2*3 + 1*4 = 10 d.
        triples = [("a", "b", 2), ("a", "c", 1), ("b", "d", 3), ("c", "d", 4)]
        program = parts_explosion_program({"m": {"r": triples}})
        model = perfect_model_for_hilog(program)
        assert model.is_true(parse_term("contains(m, a, d, 10)"))
        assert containment_of(model, "m") == expected_containment(triples)

    def test_reference_rejects_cycles(self):
        with pytest.raises(ValueError):
            expected_containment([("a", "b", 1), ("b", "a", 1)])
