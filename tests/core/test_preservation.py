"""Tests for preservation under extensions and domain independence (Section 5).

Covers Example 5.1 (a domain-independent HiLog program that is not preserved
under extensions — preservation is strictly stronger for HiLog), Lemma 5.1
(for normal programs the notions coincide), Theorem 5.3 (range-restricted
HiLog programs: WFS preserved), Theorem 5.4 (strongly range-restricted:
stable semantics preserved) and the paper's counterexample showing that
Theorem 5.4 needs *strong* range restriction.
"""

import pytest

from repro.core.domain_independence import check_domain_independence
from repro.core.preservation import (
    check_preservation_under_extensions,
    random_disjoint_extension,
    stable_over_universe,
    well_founded_over_universe,
)
from repro.hilog.parser import parse_program, parse_term


EXAMPLE_51 = parse_program("p :- X(Y), Y(X).")
PAPER_EXTENSION = parse_program("q(r). r(q).")


class TestExample51:
    def test_p_false_without_extension(self):
        model = well_founded_over_universe(EXAMPLE_51)
        assert model.is_false(parse_term("p"))

    def test_p_true_with_the_paper_extension(self):
        combined = EXAMPLE_51 + PAPER_EXTENSION
        model = well_founded_over_universe(combined)
        assert model.is_true(parse_term("p"))

    def test_not_preserved_under_extensions_wfs(self):
        report = check_preservation_under_extensions(
            EXAMPLE_51, semantics="well_founded", extensions=[PAPER_EXTENSION]
        )
        assert not report.preserved
        assert report.counterexample is PAPER_EXTENSION

    def test_not_preserved_under_extensions_stable(self):
        report = check_preservation_under_extensions(
            EXAMPLE_51, semantics="stable", extensions=[PAPER_EXTENSION]
        )
        assert not report.preserved

    def test_but_domain_independent(self):
        # Adding fresh *symbols* (not rules) does not change the semantics:
        # the program is domain independent, illustrating that preservation
        # under extensions is strictly stronger for HiLog programs.
        report = check_domain_independence(EXAMPLE_51, trials=3)
        assert report.domain_independent

    def test_random_extensions_also_break_it(self):
        report = check_preservation_under_extensions(
            EXAMPLE_51, semantics="well_founded", trials=12, seed=1,
            extension_kwargs={"n_facts": 2, "n_rules": 0, "max_arity": 1},
        )
        # Unary extension facts f(g) + g(f) style pairs are unlikely in two
        # facts, so this may or may not find a counterexample; the call must
        # at least run and produce a report.
        assert report.trials == 12


class TestTheorem53:
    @pytest.mark.parametrize("text", [
        "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).",
        "p(X) :- q(X), not r(X). q(a). r(a).",
        "tc(G)(X, Y) :- G(X, Y). e(a, b).",
    ])
    def test_range_restricted_wfs_preserved(self, text):
        program = parse_program(text)
        report = check_preservation_under_extensions(
            program, semantics="well_founded", trials=6, seed=0,
            extension_kwargs={"n_facts": 2, "n_rules": 1, "max_arity": 2},
        )
        assert report.preserved, report.detail


class TestTheorem54:
    def test_strongly_range_restricted_stable_preserved(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). r(b).")
        report = check_preservation_under_extensions(
            program, semantics="stable", trials=4, seed=0,
            extension_kwargs={"n_facts": 2, "n_rules": 1, "max_arity": 1},
        )
        assert report.preserved, report.detail

    def test_paper_counterexample_for_plain_range_restriction(self):
        # P = { X(a) :- X(X), not X(a) } is range restricted but not strongly;
        # with Q = { r(r) } the union has no stable model although both P and
        # Q do (Section 5, after Theorem 5.4).
        program = parse_program("X(a) :- X(X), not X(a).")
        extension = parse_program("r(r).")
        assert stable_over_universe(program)  # P alone has a stable model
        assert stable_over_universe(extension)  # Q alone has a stable model
        assert stable_over_universe(program + extension) == []
        report = check_preservation_under_extensions(
            program, semantics="stable", extensions=[extension]
        )
        assert not report.preserved


class TestCheckerMechanics:
    def test_rejects_overlapping_extension(self):
        program = parse_program("p(a).")
        overlapping = parse_program("p(b).")
        with pytest.raises(ValueError):
            check_preservation_under_extensions(program, extensions=[overlapping])

    def test_random_extension_has_disjoint_symbols(self):
        import random

        program = parse_program("p(a). q(b).")
        extension = random_disjoint_extension(program.symbols(), random.Random(0))
        assert not program.shares_symbols_with(extension)
        assert extension.is_ground()

    def test_bad_semantics_name(self):
        with pytest.raises(ValueError):
            check_preservation_under_extensions(parse_program("p."), semantics="bogus")


class TestLemma51ForNormalPrograms:
    """For normal programs domain independence and preservation coincide; we
    check both properties hold/fail together on representative programs."""

    def test_range_restricted_normal_program_has_both(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a).")
        for language in ("normal", "hilog"):
            assert check_domain_independence(
                program, trials=2, language=language
            ).domain_independent
            assert check_preservation_under_extensions(
                program, trials=4, seed=2, language=language,
                extension_kwargs={"n_facts": 2, "n_rules": 0, "max_arity": 1},
            ).preserved

    def test_example_4_1_fails_both(self):
        # Under the classical (first-order) reading Example 4.1's program is
        # neither domain independent nor preserved under extensions: adding a
        # constant — whether via the language or via a disjoint fact — flips p.
        program = parse_program("p :- not q(X). q(a).")
        assert not check_domain_independence(
            program, trials=2, language="normal"
        ).domain_independent
        report = check_preservation_under_extensions(
            program, extensions=[parse_program("s(t).")], language="normal"
        )
        assert not report.preserved
