"""Tests for modular stratification for HiLog (Section 6, Figure 1)."""

import pytest

from repro.core.modular import (
    hilog_reduction,
    is_modularly_stratified_for_hilog,
    modularly_stratified_for_hilog,
    perfect_model_for_hilog,
)
from repro.core.semantics import hilog_well_founded_model
from repro.engine.stable import stable_models
from repro.engine.grounding import relevant_ground_program
from repro.hilog.errors import StratificationError
from repro.hilog.parser import parse_program, parse_rule, parse_term
from repro.hilog.terms import Sym
from repro.normal.modular import modular_stratification
from repro.workloads.games import hilog_game_program, normal_game_program
from repro.workloads.graphs import chain_edges, cycle_edges


EXAMPLE_63 = parse_program("""
    winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
    game(move1). game(move2).
    move1(a, b). move1(b, c).
    move2(x, y).
""")


class TestExample63:
    def test_is_modularly_stratified(self):
        result = modularly_stratified_for_hilog(EXAMPLE_63)
        assert result.is_modularly_stratified
        assert result.model.is_total()

    def test_two_rounds(self):
        result = modularly_stratified_for_hilog(EXAMPLE_63)
        # Round 1 settles the facts (game, move1, move2); round 2 settles the
        # two instantiated winning(move_i) components.
        assert len(result.rounds) == 2
        assert Sym("game") in result.rounds[0]

    def test_winning_positions(self):
        model = perfect_model_for_hilog(EXAMPLE_63)
        assert model.is_true(parse_term("winning(move1)(b)"))
        assert model.is_false(parse_term("winning(move1)(a)"))
        assert model.is_false(parse_term("winning(move1)(c)"))
        assert model.is_true(parse_term("winning(move2)(x)"))
        assert model.is_false(parse_term("winning(move2)(y)"))

    def test_theorem_6_1_unique_stable_model(self):
        # The total well-founded model is the unique stable model.
        model = perfect_model_for_hilog(EXAMPLE_63)
        ground = relevant_ground_program(EXAMPLE_63)
        stables = stable_models(ground)
        assert len(stables) == 1
        assert stables[0].true == model.true

    def test_matches_well_founded_semantics(self):
        model = perfect_model_for_hilog(EXAMPLE_63)
        wfs = hilog_well_founded_model(EXAMPLE_63)
        assert model.true == wfs.true

    def test_cyclic_game_rejected(self):
        program = hilog_game_program({"m": cycle_edges(3)})
        result = modularly_stratified_for_hilog(program)
        assert not result.is_modularly_stratified


class TestExample64:
    PROGRAM = parse_program("""
        p(X) :- t(X, Y, Z, p), not p(Y), not p(Z).
        t(a, b, a, p).
        t(e, a, b, p).
        p(b) :- t(X, Y, b, p).
    """)

    def test_not_modularly_stratified(self):
        result = modularly_stratified_for_hilog(self.PROGRAM)
        assert not result.is_modularly_stratified
        assert "locally stratified" in result.reason

    def test_but_well_founded_model_is_total(self):
        # The paper notes the program nevertheless has a two-valued
        # well-founded model with p(b) true and p(a) false.
        model = hilog_well_founded_model(self.PROGRAM)
        assert model.is_true(parse_term("p(b)"))
        assert model.is_false(parse_term("p(a)"))
        assert model.is_total()

    def test_perfect_model_raises(self):
        with pytest.raises(StratificationError):
            perfect_model_for_hilog(self.PROGRAM)


class TestExample65Style:
    def test_settled_head_conflict_is_rejected(self):
        # A rule whose head becomes a predicate that was already settled (as
        # universally false) in an earlier round — the conservative rejection
        # discussed in Example 6.5.
        program = parse_program("""
            winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
            game(move1).
            provide(move1(a, b)) :- not winning(move1)(b).
            X :- provide(X).
        """)
        result = modularly_stratified_for_hilog(program)
        assert not result.is_modularly_stratified
        assert "already settled" in result.reason

    def test_variable_head_resolved_early_is_accepted(self):
        # When the variable-headed rule can be reduced before its head name is
        # needed, the program is accepted and the facts flow through.
        program = parse_program("""
            winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
            game(move1).
            X :- supplies(X).
            supplies(move1(a, b)). supplies(move1(b, c)).
        """)
        result = modularly_stratified_for_hilog(program)
        assert result.is_modularly_stratified
        assert result.model.is_true(parse_term("winning(move1)(b)"))
        assert result.model.is_false(parse_term("winning(move1)(a)"))

    def test_no_rules_for_lowest_name_means_universally_false(self):
        # The paper's post-6.5 example: the only rules mention p in a body,
        # there are no rules with head p, so p is settled as universally false
        # and the remaining rule reduces away.
        program = parse_program("Q(a) :- p(Q), not Q(b).")
        result = modularly_stratified_for_hilog(program)
        assert result.is_modularly_stratified
        assert not result.model.true


class TestLemma62:
    """Modular stratification for HiLog specializes to Ross'90 modular
    stratification on normal programs."""

    @pytest.mark.parametrize("edges,expected", [
        (chain_edges(4), True),
        (chain_edges(7), True),
        (cycle_edges(3), False),
        (cycle_edges(4), False),
    ])
    def test_same_verdict_on_games(self, edges, expected):
        program = normal_game_program(edges)
        assert modular_stratification(program).is_modularly_stratified is expected
        assert is_modularly_stratified_for_hilog(program) is expected

    def test_same_model_on_acyclic_game(self):
        program = normal_game_program(chain_edges(5))
        normal_result = modular_stratification(program)
        hilog_result = modularly_stratified_for_hilog(program)
        assert hilog_result.is_modularly_stratified
        assert normal_result.model.true == hilog_result.model.true

    def test_stratified_program(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). q(b). r(b).")
        assert is_modularly_stratified_for_hilog(program)
        model = perfect_model_for_hilog(program)
        assert model.is_true(parse_term("p(a)"))
        assert model.is_false(parse_term("p(b)"))


class TestHiLogReduction:
    def test_reduction_instantiates_and_deletes_settled_subgoals(self):
        rule = parse_rule("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).")
        settled_names = {Sym("game"), Sym("move1")}
        settled_true = {parse_term("game(move1)"), parse_term("move1(a, b)")}
        reduced = hilog_reduction([rule], settled_names, settled_true)
        assert len(reduced) == 1
        (reduced_rule,) = reduced
        assert reduced_rule.head == parse_term("winning(move1)(a)")
        assert [repr(lit) for lit in reduced_rule.body] == ["not winning(move1)(b)"]

    def test_reduction_drops_rules_with_false_settled_subgoals(self):
        rule = parse_rule("p(X) :- q(X), r(X).")
        reduced = hilog_reduction([rule], {Sym("q"), Sym("r")}, {parse_term("q(a)")})
        assert reduced == ()

    def test_reduction_handles_ground_negative_settled_literals(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        reduced = hilog_reduction(
            [rule], {Sym("q"), Sym("r")}, {parse_term("q(a)"), parse_term("q(b)"), parse_term("r(a)")}
        )
        heads = {r.head for r in reduced}
        assert heads == {parse_term("p(b)")}
        assert all(not r.body for r in reduced)

    def test_left_to_right_option_runs(self):
        result = modularly_stratified_for_hilog(EXAMPLE_63, left_to_right=True)
        assert result.is_modularly_stratified
