"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests generate random HiLog terms, substitutions and ground programs
and check the algebraic properties the rest of the library relies on:

* parse/format round trips,
* unification soundness (the mgu really unifies) and symmetry,
* substitution composition semantics,
* well-founded semantics invariants: consistency, engine agreement,
  monotonicity of ``W_P`` along its iteration, stable models extending the
  well-founded model, and the Gelfond–Lifschitz characterization agreeing
  with the two-valued-``W_P``-fixpoint characterization used by the paper.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.engine.fixpoint import gelfond_lifschitz
from repro.engine.grounding import GroundProgram, GroundRule
from repro.engine.interpretation import Interpretation, conservatively_extends
from repro.engine.stable import is_stable_model, is_two_valued_wp_fixpoint, stable_models
from repro.engine.wellfounded import well_founded_model, wp_operator
from repro.hilog.parser import parse_term
from repro.hilog.pretty import format_rule, format_term
from repro.hilog.program import Literal, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Num, Sym, Var
from repro.hilog.unify import unify

# ---------------------------------------------------------------------------
# Term / substitution strategies
# ---------------------------------------------------------------------------

_symbol_names = st.sampled_from(["p", "q", "r", "f", "g", "a", "b", "c", "move", "tc"])
_variable_names = st.sampled_from(["X", "Y", "Z", "G", "M", "Rest"])


def _terms(max_depth=3):
    base = st.one_of(
        _symbol_names.map(Sym),
        _variable_names.map(Var),
        st.integers(min_value=0, max_value=9).map(Num),
    )

    def extend(children):
        return st.builds(
            lambda name, args: App(name, tuple(args)),
            children,
            st.lists(children, min_size=0, max_size=3),
        )

    return st.recursive(base, extend, max_leaves=8)


def _ground_terms():
    return _terms().filter(lambda t: t.is_ground())


def _substitutions():
    return st.dictionaries(
        _variable_names.map(Var), _ground_terms(), min_size=0, max_size=3
    ).map(Substitution)


class TestTermProperties:
    @given(_terms())
    @settings(max_examples=150, deadline=None)
    def test_format_parse_round_trip(self, term):
        assert parse_term(format_term(term)) == term

    @given(_terms())
    @settings(max_examples=100, deadline=None)
    def test_ground_iff_no_variables(self, term):
        assert term.is_ground() == (not term.variables())

    @given(_terms())
    @settings(max_examples=100, deadline=None)
    def test_depth_bounded_by_size(self, term):
        assert term.depth() < term.size() + 1

    @given(_terms(), _substitutions())
    @settings(max_examples=100, deadline=None)
    def test_substitution_removes_bound_variables(self, term, subst):
        applied = subst.apply(term)
        assert applied.variables().isdisjoint(set(subst.keys()))

    @given(_terms(), _substitutions(), _substitutions())
    @settings(max_examples=100, deadline=None)
    def test_composition_semantics(self, term, first, second):
        composed = first.compose(second)
        assert composed.apply(term) == second.apply(first.apply(term))


class TestUnificationProperties:
    @given(_terms(), _terms())
    @settings(max_examples=200, deadline=None)
    def test_mgu_unifies(self, left, right):
        unifier = unify(left, right)
        if unifier is not None:
            assert unifier.apply(left) == unifier.apply(right)

    @given(_terms(), _terms())
    @settings(max_examples=150, deadline=None)
    def test_unification_symmetric(self, left, right):
        assert (unify(left, right) is None) == (unify(right, left) is None)

    @given(_ground_terms(), _ground_terms())
    @settings(max_examples=100, deadline=None)
    def test_ground_unification_is_equality(self, left, right):
        assert (unify(left, right) is not None) == (left == right)

    @given(_terms())
    @settings(max_examples=50, deadline=None)
    def test_self_unification(self, term):
        assert unify(term, term) is not None


# ---------------------------------------------------------------------------
# Ground program strategies and semantics invariants
# ---------------------------------------------------------------------------

_ground_atoms = st.sampled_from([parse_term(text) for text in
                                 ["a", "b", "c", "d", "p(a)", "p(b)", "q(a)", "q(b)"]])


def _ground_rules():
    return st.builds(
        lambda head, positive, negative: GroundRule(head, tuple(positive), tuple(negative)),
        _ground_atoms,
        st.lists(_ground_atoms, max_size=2),
        st.lists(_ground_atoms, max_size=2),
    )


def _ground_programs():
    return st.lists(_ground_rules(), min_size=0, max_size=10).map(GroundProgram)


class TestSemanticsInvariants:
    @given(_ground_programs())
    @settings(max_examples=120, deadline=None)
    def test_well_founded_model_is_consistent(self, program):
        model = well_founded_model(program)
        assert not (model.true & model.false)
        assert model.true <= program.base
        assert model.false <= program.base

    @given(_ground_programs())
    @settings(max_examples=120, deadline=None)
    def test_engines_agree(self, program):
        wp = well_founded_model(program, engine="wp")
        alternating = well_founded_model(program, engine="alternating")
        assert wp.true == alternating.true
        assert wp.false == alternating.false

    @given(_ground_programs())
    @settings(max_examples=80, deadline=None)
    def test_wp_iteration_is_increasing(self, program):
        current = Interpretation((), (), base=program.base)
        for _ in range(4):
            following = wp_operator(program, current)
            assert current.true <= following.true
            assert current.false <= following.false
            current = following

    @given(_ground_programs())
    @settings(max_examples=80, deadline=None)
    def test_stable_models_extend_well_founded_model(self, program):
        wfs = well_founded_model(program)
        for model in stable_models(program, max_branch_atoms=12):
            assert wfs.true <= model.true
            assert wfs.false <= model.false
            assert model.is_total()

    @given(_ground_programs())
    @settings(max_examples=80, deadline=None)
    def test_stable_characterizations_agree(self, program):
        # Gelfond–Lifschitz stability == being a two-valued fixpoint of W_P
        # (the equivalence the paper takes from Van Gelder/Ross/Schlipf).
        for model in stable_models(program, max_branch_atoms=12):
            assert is_stable_model(program, model.true)
            assert is_two_valued_wp_fixpoint(program, model)

    @given(_ground_programs())
    @settings(max_examples=80, deadline=None)
    def test_definite_part_least_model_within_true_or_undef(self, program):
        # Dropping negative bodies entirely (Γ over the empty context) gives
        # an overapproximation of the atoms that are not false.
        model = well_founded_model(program)
        not_false = gelfond_lifschitz(program.rules, set())
        assert model.true <= not_false

    @given(_ground_programs())
    @settings(max_examples=60, deadline=None)
    def test_conservative_extension_is_reflexive(self, program):
        model = well_founded_model(program)
        assert conservatively_extends(model, model)


class TestRuleFormattingProperties:
    @given(st.lists(_ground_atoms, min_size=1, max_size=3),
           st.lists(_ground_atoms, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_rule_round_trip(self, positive, negative):
        from repro.hilog.parser import parse_rule

        rule = Rule(positive[0],
                    tuple(Literal(a) for a in positive[1:]) +
                    tuple(Literal(a, positive=False) for a in negative))
        assert parse_rule(format_rule(rule)) == rule
