"""Shared pytest configuration.

Ensures the package can be imported straight from the source tree even when
the editable install is not present (the CI environment has no network, so
``pip install -e .`` may be unavailable; ``python setup.py develop`` or this
path fallback both work).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
