"""Shared pytest configuration.

Ensures the package can be imported straight from the source tree even when
the editable install is not present (the CI environment has no network, so
``pip install -e .`` may be unavailable; ``python setup.py develop`` or this
path fallback both work).

Also extends the benchmark suite's isolation pattern
(``benchmarks/conftest.py``) to the tests: the register executor's global
``EXECUTION_STATS`` counters are zeroed before every test, and the
``isolate_example`` fixture gives hypothesis property tests a per-example
context manager that resets the counters *and* scopes the example's
transient terms in an intern generation swept afterwards — so hundreds of
random-program examples neither skew each other's fetch/alternation
counters nor accrete intern-table entries across the run.
"""

import contextlib
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.engine.seminaive import EXECUTION_STATS


@pytest.fixture(autouse=True)
def _reset_execution_stats():
    """Zero the global fetch/candidate/alternation counters before every
    test (the benchmarks' conftest does the same for benchmark files)."""
    EXECUTION_STATS.reset()
    yield


@pytest.fixture
def isolate_example():
    """Per-hypothesis-example isolation: ``with isolate_example(): ...``.

    Resets ``EXECUTION_STATS`` at example entry (a fixture only runs once
    per test *function*, while hypothesis runs many examples inside it) and
    opens an intern generation around the example so the random programs'
    terms are born mortal; after the example the closed generation is swept,
    keeping ``intern_table_sizes`` bounded by the live suite instead of
    growing with every random program ever generated.  The sweep honours
    the registered pin providers, so terms other tests or sessions still
    reach are never evicted.
    """
    from repro.hilog.terms import collect_generation, intern_generation

    @contextlib.contextmanager
    def _isolated():
        EXECUTION_STATS.reset()
        with intern_generation():
            yield
        collect_generation()

    return _isolated
