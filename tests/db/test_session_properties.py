"""Property tests: a random insert/retract sequence through
:class:`~repro.db.DatabaseSession` agrees atom-for-atom with a from-scratch
``perfect_model_for_hilog`` of the accumulated program after every step."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.modular import perfect_model_for_hilog
from repro.db import DatabaseSession
from repro.hilog.parser import parse_program
from repro.hilog.program import Program, Rule
from repro.hilog.terms import App, Sym

#: Recursive definite stratum (DRed) on top of an extensional edge relation.
TC_RULES = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

#: Counting + DRed + stratified negation, three strata.
MIXED_RULES = """
    hop2(X, Y) :- e(X, Z), e(Z, Y).
    reach(X) :- source(X).
    reach(Y) :- reach(X), e(X, Y).
    unreached(X) :- node(X), not reach(X).
"""

NODES = ("a", "b", "c", "d")


def _atom(name, *args):
    return App(Sym(name), tuple(Sym(a) for a in args))


def _edge_ops():
    """A strategy of candidate facts to toggle (insert when absent, retract
    when present) — edges plus the extensional predicates of MIXED_RULES."""
    edges = [_atom("e", x, y) for x in NODES for y in NODES]
    sources = [_atom("source", x) for x in NODES]
    nodes = [_atom("node", x) for x in NODES]
    return st.lists(
        st.sampled_from(edges + sources + nodes), min_size=1, max_size=25
    )


def _scratch_true(rules_text, edb):
    program = parse_program(rules_text)
    full = Program(program.rules + tuple(Rule(atom) for atom in sorted(edb, key=repr)))
    return perfect_model_for_hilog(full).true


def _toggle_and_compare(rules_text, operations):
    session = DatabaseSession(rules_text)
    assert session.mode == "incremental"
    for atom in operations:
        if atom in session.edb():
            session.retract(atom)
        else:
            session.insert(atom)
        assert session.true == _scratch_true(rules_text, session.edb())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_edge_ops())
def test_tc_session_agrees_with_perfect_model(operations):
    _toggle_and_compare(TC_RULES, operations)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_edge_ops())
def test_mixed_strata_session_agrees_with_perfect_model(operations):
    _toggle_and_compare(MIXED_RULES, operations)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_edge_ops(), st.integers(min_value=1, max_value=4))
def test_batched_transactions_agree_with_perfect_model(operations, batch):
    """The same property under batched (transactional) application."""
    session = DatabaseSession(MIXED_RULES)
    for start in range(0, len(operations), batch):
        chunk = operations[start:start + batch]
        with session.transaction() as txn:
            staged = set(session.edb())
            for atom in chunk:
                if atom in staged:
                    txn.retract(atom)
                    staged.discard(atom)
                else:
                    txn.insert(atom)
                    staged.add(atom)
        assert session.true == _scratch_true(MIXED_RULES, session.edb())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_edge_ops())
def test_session_internal_check_agrees(operations):
    """The session's own integrity check (against its engine-level
    reference) holds along every random trajectory."""
    session = DatabaseSession(MIXED_RULES)
    for atom in operations:
        if atom in session.edb():
            session.retract(atom)
        else:
            session.insert(atom)
    assert session.check()
