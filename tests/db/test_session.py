"""Unit tests for :mod:`repro.db`: sessions, transactions, maintenance
strategies, session-backed queries, and the disaster fallbacks."""

import pytest

from repro.core.magic.evaluate import magic_evaluate
from repro.db import (
    COUNTING,
    DRED,
    RECOMPUTE,
    DatabaseSession,
    SessionError,
    SessionIntegrityError,
    open_session,
)
from repro.engine.seminaive import SeminaiveUnsupported
from repro.hilog.errors import GroundingError
from repro.hilog.parser import parse_program, parse_query, parse_term
from repro.workloads.closure import hilog_closure_program, transitive_closure_program
from repro.workloads.games import datahilog_game_program, normal_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges

TC = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    e(a, b). e(b, c).
"""

STRATIFIED = """
    reach(X) :- source(X).
    reach(Y) :- reach(X), e(X, Y).
    unreached(X) :- node(X), not reach(X).
    source(a).
    node(a). node(b). node(c). node(d).
    e(a, b). e(b, c).
"""


class TestSessionBasics:
    def test_materializes_perfect_model(self):
        session = DatabaseSession(TC)
        assert session.mode == "incremental"
        assert session.ask("tc(a, c)")
        assert not session.ask("tc(c, a)")
        assert session.check()

    def test_insert_maintains_model(self):
        session = DatabaseSession(TC)
        summary = session.insert("e(c, d).")
        assert summary.inserted == 1
        assert parse_term("tc(a, d)") in set(summary.added)
        assert session.ask("tc(a, d)")
        assert session.check()

    def test_retract_maintains_model(self):
        session = DatabaseSession(TC)
        summary = session.retract("e(b, c).")
        assert summary.retracted == 1
        assert parse_term("tc(a, c)") in set(summary.removed)
        assert not session.ask("tc(a, c)")
        assert session.ask("tc(a, b)")
        assert session.check()

    def test_duplicate_insert_and_missing_retract_are_noops(self):
        session = DatabaseSession(TC)
        assert session.insert("e(a, b).").inserted == 0
        assert session.retract("e(z, z).").retracted == 0
        assert session.check()

    def test_insert_of_already_derived_fact_survives_retraction(self):
        session = DatabaseSession(TC)
        session.insert("tc(a, c).")  # already derived; adds one EDB support
        session.retract("tc(a, c).")
        assert session.ask("tc(a, c)")  # still rule-derived
        session.retract("e(b, c).")
        assert not session.ask("tc(a, c)")
        assert session.check()

    def test_asserted_idb_fact_persists_without_rule_support(self):
        session = DatabaseSession(TC)
        session.insert("tc(c, z).")
        assert session.ask("tc(c, z)")
        assert session.check()
        session.retract("tc(c, z).")
        assert not session.ask("tc(c, z)")
        assert session.check()

    def test_non_ground_updates_rejected(self):
        session = DatabaseSession(TC)
        with pytest.raises(GroundingError):
            session.insert(parse_term("e(a, X)"))

    def test_rules_in_updates_rejected(self):
        session = DatabaseSession(TC)
        with pytest.raises(ValueError):
            session.insert("p(X) :- q(X).")

    def test_conflicting_batch_rejected(self):
        session = DatabaseSession(TC)
        with pytest.raises(ValueError):
            session.update(inserts="e(x, y).", retracts="e(x, y).")

    def test_open_session_helper(self):
        session = open_session(TC)
        assert session.ask("tc(a, c)")


class TestStrategies:
    def test_tc_is_dred(self):
        assert DatabaseSession(TC).strategies() == (DRED,)

    def test_nonrecursive_join_is_counting(self):
        session = DatabaseSession("""
            hop2(X, Y) :- e(X, Z), e(Z, Y).
            e(a, b). e(b, c). e(a, c).
        """)
        assert session.strategies() == (COUNTING,)
        session.insert("e(c, d).")
        session.retract("e(b, c).")
        assert session.check()
        assert session.stats()["counting_updates"] == 2

    def test_counting_tracks_multiple_derivations(self):
        # hop2(a, c) has two derivations; retracting one leaves the other.
        session = DatabaseSession("""
            hop2(X, Y) :- e(X, Z), e(Z, Y).
            e(a, b1). e(b1, c). e(a, b2). e(b2, c).
        """)
        assert session.store.support(parse_term("hop2(a, c)")) == 2
        session.retract("e(a, b1).")
        assert session.ask("hop2(a, c)")
        session.retract("e(a, b2).")
        assert not session.ask("hop2(a, c)")
        assert session.check()

    def test_stratified_negation_uses_dred(self):
        session = DatabaseSession(STRATIFIED)
        assert session.strategies() == (DRED, DRED)
        session.retract("e(a, b).")
        assert session.ask("unreached(b)")
        session.insert("e(a, c).")
        assert session.ask("reach(c)")
        assert not session.ask("unreached(c)")
        assert session.check()

    def test_aggregates_use_stratum_recompute(self):
        session = DatabaseSession("""
            total(X, N) :- node(X), N = sum(P : weight(X, Y, P)).
            node(a). node(b).
            weight(a, u, 3). weight(a, v, 4). weight(b, u, 5).
        """)
        assert RECOMPUTE in session.strategies()
        session.insert("weight(a, w, 10).")
        assert session.ask("total(a, 17)")
        session.retract("weight(b, u, 5).")
        assert not session.query("total(b, N)")
        assert session.check()

    def test_untouched_strata_are_skipped(self):
        session = DatabaseSession("""
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            other(X) :- base(X).
            e(a, b). base(u).
        """)
        summary = session.insert("base(v).")
        assert summary.strata_touched == 1
        summary = session.insert("e(b, c).")
        assert summary.strata_touched == 1
        assert session.check()

    def test_higher_order_definite_session_is_incremental(self):
        session = DatabaseSession(
            hilog_closure_program({"g1": chain_edges(4), "g2": chain_edges(3, "m")})
        )
        assert session.mode == "incremental"
        session.insert("graph(g3). g3(x, y). g3(y, z).")
        assert session.query("tc(g3)(x, Z)") == (
            parse_term("tc(g3)(x, y)"), parse_term("tc(g3)(x, z)"),
        )
        session.retract("g1(n1, n2).")
        assert session.check()


class TestRecomputeMode:
    def test_win_move_routes_through_wellfounded_fallback(self):
        # Win/move recurses through negation inside its component, so the
        # incremental machinery declines — but the session now lands on the
        # semi-naive well-founded fallback, not the grounding path.
        session = DatabaseSession(normal_game_program([("a", "b"), ("b", "c")]))
        assert session.mode == "wellfounded"
        assert session.is_total()
        assert session.ask("winning(b)")
        session.insert("move(c, d).")
        assert session.ask("winning(c)")
        assert not session.ask("winning(b)")  # b's move now leads to a winner
        assert session.check()

    def test_incremental_strategy_raises_outside_class(self):
        with pytest.raises(SeminaiveUnsupported):
            DatabaseSession(
                normal_game_program([("a", "b")]), strategy="incremental"
            )

    def test_recompute_strategy_forces_mode(self):
        session = DatabaseSession(TC, strategy="recompute")
        assert session.mode == "recompute"
        session.insert("e(c, d).")
        assert session.ask("tc(a, d)")
        assert session.check()

    def test_unevaluable_update_rolls_back(self):
        session = DatabaseSession(
            datahilog_game_program({"m": [("a", "b")]})
        )
        assert session.mode == "recompute"
        before = session.true
        with pytest.raises(Exception):
            session.insert("m(b, a).")  # cycle: not modularly stratified
        assert session.true == before
        assert parse_term("m(b, a)") not in session.edb()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSession(TC, strategy="bogus")


class TestTransactions:
    def test_batched_commit(self):
        session = DatabaseSession(TC)
        with session.transaction() as txn:
            txn.insert("e(c, d). e(d, f).")
            txn.retract("e(a, b).")
        assert session.ask("tc(b, f)")
        assert not session.ask("tc(a, b)")
        assert session.check()

    def test_last_operation_wins_within_batch(self):
        session = DatabaseSession(TC)
        with session.transaction() as txn:
            txn.insert("e(c, d).")
            txn.retract("e(c, d).")
        assert not session.ask("e(c, d)")
        with session.transaction() as txn:
            txn.retract("e(a, b).")
            txn.insert("e(a, b).")
        assert session.ask("e(a, b)")
        assert session.check()

    def test_exception_rolls_back(self):
        session = DatabaseSession(TC)
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.insert("e(x, y).")
                raise RuntimeError("abort")
        assert not session.ask("e(x, y)")

    def test_explicit_commit_returns_summary(self):
        session = DatabaseSession(TC)
        txn = session.transaction().insert("e(c, d).")
        summary = txn.commit()
        assert summary.inserted == 1
        assert txn.result is summary

    def test_nested_transaction_rejected(self):
        session = DatabaseSession(TC)
        with session.transaction() as txn:
            txn.insert("e(c, d).")
            with pytest.raises(SessionError, match="already open"):
                session.transaction()
        # the rejected open left the committed batch intact...
        assert session.ask("tc(a, d)")
        # ...and a closed transaction releases the slot
        with session.transaction() as txn:
            txn.insert("e(d, e).")
        assert session.ask("tc(a, e)")

    def test_reentrant_open_after_rollback_allowed(self):
        session = DatabaseSession(TC)
        txn = session.transaction().insert("e(x, y).")
        with pytest.raises(SessionError):
            session.transaction()
        txn.rollback()
        session.transaction().insert("e(c, d).").commit()
        assert session.ask("tc(a, d)") and not session.ask("e(x, y)")

    def test_closed_transaction_rejects_staging_and_recommit(self):
        session = DatabaseSession(TC)
        txn = session.transaction().insert("e(c, d).")
        txn.commit()
        with pytest.raises(SessionError, match="already committed"):
            txn.insert("e(d, e).")
        with pytest.raises(SessionError, match="already committed"):
            txn.commit()
        rolled = session.transaction()
        rolled.rollback()
        rolled.rollback()  # idempotent
        with pytest.raises(SessionError, match="rolled back"):
            rolled.retract("e(a, b).")

    def test_dropped_transaction_releases_slot(self):
        session = DatabaseSession(TC)
        txn = session.transaction()
        txn.insert("e(x, y).")
        del txn  # never committed — dropping it must not wedge the session
        session.transaction().insert("e(c, d).").commit()
        assert session.ask("tc(a, d)")


class TestQueries:
    def test_bound_query_from_store(self):
        session = DatabaseSession(transitive_closure_program(chain_edges(10)))
        answers = session.query("tc(n3, Y)")
        assert len(answers) == 7
        assert all(repr(a).startswith("tc(n3,") for a in answers)

    def test_query_reflects_maintenance(self):
        session = DatabaseSession(TC)
        assert len(session.query("tc(X, Y)")) == 3
        session.insert("e(c, d).")
        assert len(session.query("tc(X, Y)")) == 6

    def test_magic_evaluate_store_path(self):
        program = transitive_closure_program(chain_edges(8))
        session = DatabaseSession(program)
        query = parse_query("tc(n2, Y)")
        stored = magic_evaluate(program, query, store=session.store)
        plain = magic_evaluate(program, query)
        assert stored.answers == plain.answers
        assert stored.ground_rules == 0

    def test_conjunctive_query_answers_first_atom(self):
        # magic_evaluate's contract: answers are the true instances of the
        # *first* query atom; the store path preserves it for any shape.
        session = DatabaseSession(TC)
        answers = session.query("tc(a, X), tc(X, c)")
        assert parse_term("tc(a, b)") in answers

    def test_conjunctive_query_on_aggregate_program(self):
        # Aggregate programs reject the evaluating query paths, but the
        # session's maintained total model answers any shape from the store.
        session = DatabaseSession("""
            total(S) :- node(X), S = sum(V : val(X, V)).
            node(a). val(a, 4). val(a, 6).
        """)
        assert session.query("total(S), S > 1") == (parse_term("total(10)"),)
        assert session.query("not missing") == ()

    def test_ask_requires_ground(self):
        session = DatabaseSession(TC)
        with pytest.raises(GroundingError):
            session.ask("tc(a, X)")


class TestIntrospection:
    def test_stats_and_model(self):
        session = DatabaseSession(TC)
        session.insert("e(c, d).")
        stats = session.stats()
        assert stats["updates"] == 1
        assert stats["mode"] == "incremental"
        assert stats["facts"] == len(session)
        model = session.model()
        assert model.is_total()
        assert model.is_true(parse_term("tc(a, d)"))

    def test_facts_accessor(self):
        session = DatabaseSession(TC)
        assert len(session.facts("e", 2)) == 2
        assert len(session.facts("tc", 2)) == 3

    def test_integrity_error_reports_divergence(self):
        session = DatabaseSession(TC)
        session.store.add(parse_term("tc(z, z)"))  # corrupt behind the API
        with pytest.raises(SessionIntegrityError):
            session.check()


class TestFallbacks:
    def test_stratum_recompute_preserves_support_counts(self):
        from repro.db.maintenance import Delta, recompute_stratum

        session = DatabaseSession("""
            p(X) :- e(X).
            p(X) :- f(X).
            e(one). f(one).
        """)
        assert session.strategies() == (COUNTING,)
        assert session.store.support(parse_term("p(one)")) == 2
        # Simulate the fallback path: recompute the counting stratum locally.
        recompute_stratum(
            session._plans[0], session.store, Delta(), session.edb(),
            session._limits,
        )
        assert session.store.support(parse_term("p(one)")) == 2
        # A retraction of one support must keep the other derivation alive.
        session.retract("e(one).")
        assert session.ask("p(one)")
        assert session.check()

    def test_failed_update_rolls_back_incremental_session(self):
        program = """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            e(a, b).
        """
        session = DatabaseSession(program, max_facts=6)
        before_true = session.true
        before_edb = session.edb()
        with pytest.raises(GroundingError):
            session.insert("e(b, c). e(c, d). e(d, f).")  # blows the cap
        assert session.edb() == before_edb
        assert session.true == before_true
        assert session.check()
        # The session stays usable for updates that fit the cap.
        session.insert("e(b, c).")
        assert session.ask("tc(a, c)")

    def test_rebuild_path_reports_accurate_diff(self, monkeypatch):
        import repro.db.session as session_module

        session = DatabaseSession(TC)

        def explode(*_args, **_kwargs):
            raise GroundingError("synthetic maintenance failure")

        # Both the incremental step and the stratum-local fallback must
        # fail before the whole-model rebuild path runs.
        monkeypatch.setattr(session_module, "dred_update", explode)
        monkeypatch.setattr(session_module, "recompute_stratum", explode)
        summary = session.insert("e(c, d).")
        monkeypatch.undo()
        assert summary.mode == "rebuild"
        assert parse_term("tc(a, d)") in set(summary.added)
        assert summary.removed == ()
        assert session.ask("tc(a, d)")
        assert session.check()


class TestStreams:
    def test_dag_closure_churn_agrees_with_scratch(self):
        from repro.workloads.streams import edge_churn_stream, replay

        edges = random_dag_edges(20, 40, seed=2)
        session = DatabaseSession(transitive_closure_program(edges))
        stream = edge_churn_stream(edges, operations=15, seed=2)
        replay(session, stream, verify=True)

    def test_win_move_stream_stays_correct(self):
        from repro.workloads.streams import replay, win_move_stream

        edges = random_dag_edges(12, 24, seed=4)
        session = DatabaseSession(datahilog_game_program({"m": edges}))
        stream = win_move_stream(12, edges, operations=8, seed=4)
        replay(session, stream, verify=True)
