"""Property tests for sessions over *non-stratified* programs.

These programs used to be bounced to the Figure-1 grounding fallback —
which outright rejects them once a ground negation loop appears — so a
session over a cyclic win/move game either crawled or failed.  They now
route through the semi-naive well-founded fallback: the session maintains
the three-valued well-founded model under insert/retract/transaction
churn, and every step is compared against a from-scratch ground oracle
(and the session's own ``check()``).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.semantics import hilog_well_founded_model
from repro.db import DatabaseSession
from repro.hilog.parser import parse_program
from repro.hilog.program import Program, Rule
from repro.hilog.terms import App, Sym

WIN_MOVE_RULES = """
    winning(X) :- move(X, Y), not winning(Y).
"""

#: Win/move plus a stratified stratum reading the (possibly undefined)
#: game atoms — the strata-mixing shape the alternating evaluator handles.
MIXED_RULES = """
    winning(X) :- move(X, Y), not winning(Y).
    drawn(X) :- node(X), not winning(X), not losing(X).
    losing(X) :- node(X), not winning(X).
"""

NODES = ("a", "b", "c", "d")


def _atom(name, *args):
    return App(Sym(name), tuple(Sym(a) for a in args))


def _ops():
    """Candidate facts to toggle: every possible move edge plus node tags
    (cycles form and break constantly along a random trajectory)."""
    moves = [_atom("move", x, y) for x in NODES for y in NODES if x != y]
    nodes = [_atom("node", x) for x in NODES]
    return st.lists(st.sampled_from(moves + nodes), min_size=1, max_size=20)


def _oracle(rules_text, edb):
    """Ground-oracle partition of the accumulated program."""
    program = parse_program(rules_text)
    full = Program(program.rules + tuple(Rule(atom) for atom in sorted(edb, key=repr)))
    model = hilog_well_founded_model(full)
    return model.true, model.undefined


def _toggle_and_compare(rules_text, operations):
    session = DatabaseSession(rules_text)
    assert session.mode == "wellfounded"
    for atom in operations:
        if atom in session.edb():
            summary = session.retract(atom)
        else:
            summary = session.insert(atom)
        assert summary.mode == "wellfounded"
        true, undefined = _oracle(rules_text, session.edb())
        assert session.true == true
        assert session.undefined == undefined
        assert session.is_total() == (not undefined)
    assert session.check()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops())
def test_win_move_session_agrees_with_ground_oracle(operations):
    _toggle_and_compare(WIN_MOVE_RULES, operations)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops())
def test_mixed_strata_session_agrees_with_ground_oracle(operations):
    _toggle_and_compare(MIXED_RULES, operations)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops(), st.integers(min_value=1, max_value=4))
def test_batched_transactions_agree(operations, batch):
    session = DatabaseSession(WIN_MOVE_RULES)
    for start in range(0, len(operations), batch):
        chunk = operations[start:start + batch]
        with session.transaction() as txn:
            staged = set(session.edb())
            for atom in chunk:
                if atom in staged:
                    txn.retract(atom)
                    staged.discard(atom)
                else:
                    txn.insert(atom)
                    staged.add(atom)
        true, undefined = _oracle(WIN_MOVE_RULES, session.edb())
        assert session.true == true
        assert session.undefined == undefined
    assert session.check()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops())
def test_summaries_track_the_undefined_partition(operations):
    """Replaying the summaries' four diffs reconstructs the maintained
    true/undefined partitions exactly."""
    session = DatabaseSession(WIN_MOVE_RULES)
    true = set(session.true)
    undefined = set(session.undefined)
    for atom in operations:
        if atom in session.edb():
            summary = session.retract(atom)
        else:
            summary = session.insert(atom)
        true |= set(summary.added)
        true -= set(summary.removed)
        undefined |= set(summary.undefined_added)
        undefined -= set(summary.undefined_removed)
        assert true == session.true
        assert undefined == session.undefined


def test_value_and_query_on_partial_model():
    session = DatabaseSession(WIN_MOVE_RULES)
    session.insert("move(a, b). move(b, a). move(c, a). move(d, e).")
    assert session.value("winning(a)") == "undefined"
    assert session.value("winning(d)") == "true"
    assert session.value("winning(e)") == "false"
    assert not session.ask("winning(a)")  # undefined is not certainly true
    # Queries answer from the certainly-true store.
    assert {repr(a) for a in session.query("winning(X)")} == {"winning(d)"}
    stats = session.stats()
    assert stats["mode"] == "wellfounded"
    assert stats["undefined_facts"] == 3
    assert stats["wellfounded_updates"] == 1
