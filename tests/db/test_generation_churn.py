"""Property tests: intern-table eviction under random session churn.

A random interleaving of :class:`~repro.db.DatabaseSession` inserts,
retracts and intern collections over fresh and recurring constants must
keep three invariants simultaneously:

1. **correctness** — ``session.check()`` stays green (the maintained model
   equals the from-scratch recomputation) after the whole interleaving;
2. **boundedness** — after every collection, the number of *mortal* (born
   in a generation) interned terms exceeds the pre-session baseline by at
   most the total subterm volume of the session's live data (store + EDB),
   because every surviving mortal term this session caused must be pinned
   through it;
3. **identity** — every term reachable from the store (and the EDB) is
   still the canonical interned object: structurally rebuilding it from
   scratch returns the very same Python object (``is``).
"""

import gc

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import DatabaseSession
from repro.hilog.terms import (
    App,
    Num,
    Sym,
    Var,
    intern_generation_sizes,
    term_size,
)

#: Recursive (DRed) closure over edges plus a counting stratum, so churn
#: exercises both maintenance algorithms and their transient machinery.
RULES = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    hop2(X, Y) :- e(X, Z), e(Z, Y).
"""

#: A small pool of recurring endpoints plus a stream of fresh ones: fresh
#: constants are what leak without eviction, recurring ones are what must
#: keep a single canonical identity through it.
RECURRING = ("a", "b", "c")


def _ops():
    edge = st.tuples(
        st.one_of(st.sampled_from(RECURRING), st.integers(0, 30).map("f%d".__mod__)),
        st.one_of(st.sampled_from(RECURRING), st.integers(0, 30).map("f%d".__mod__)),
    )
    return st.lists(
        st.one_of(
            st.tuples(st.just("toggle"), edge),
            st.tuples(st.just("collect"), st.none()),
        ),
        min_size=1,
        max_size=30,
    )


def _rebuild(term):
    """Structurally rebuild a term through the public constructors."""
    if type(term) is App:
        return App(_rebuild(term.name), tuple(_rebuild(arg) for arg in term.args))
    if type(term) is Num:
        return Num(term.value)
    if type(term) is Var:
        return Var(term.name)
    return Sym(term.name)


def _mortal_count():
    sizes = intern_generation_sizes()
    return sum(count for gen, count in sizes.items() if gen != 0)


def _live_volume(session):
    return sum(term_size(atom) for atom in session.store) + sum(
        term_size(atom) for atom in session.edb()
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=_ops())
def test_random_churn_keeps_model_bounds_and_identity(operations):
    gc.collect()  # release zombie sessions so their pins stop counting
    session = DatabaseSession(RULES)
    assert session.mode == "incremental"
    session.collect()
    # Mortal terms pinned by *others* (earlier tests' leftovers); this
    # session's own contribution is bounded by its live data volume.
    baseline = _mortal_count()
    for action, payload in operations:
        if action == "toggle":
            fact = "e(%s, %s)." % payload
            atoms = session._coerce_in_generation(fact)
            if atoms[0] in session.edb():
                session.retract(fact)
            else:
                session.insert(fact)
        else:
            session.collect()
            # Boundedness: every surviving mortal term this session keeps
            # alive is pinned through its store/EDB, so the population
            # cannot exceed the baseline plus the live subterm volume.
            assert _mortal_count() <= baseline + _live_volume(session)
            # Identity: everything reachable from the store/EDB is still
            # the canonical interned object.
            for atom in session.store:
                assert _rebuild(atom) is atom
            for atom in session.edb():
                assert _rebuild(atom) is atom
    session.check()
    session.collect()
    assert _mortal_count() <= baseline + _live_volume(session)
    for atom in session.store:
        assert _rebuild(atom) is atom


def test_failed_session_construction_does_not_poison_collection():
    """Regression: a session whose materialization raises (resource cap)
    must not leave a half-built pin provider behind — a later collection
    would crash on its ``None`` store while the exception traceback keeps
    the object alive."""
    from repro.hilog.errors import HiLogError
    from repro.hilog.terms import collect_generation

    lines = ["tc(X, Y) :- e(X, Y).", "tc(X, Y) :- e(X, Z), tc(Z, Y)."]
    lines.extend("e(m%d, m%d)." % (i, i + 1) for i in range(10))
    try:
        DatabaseSession("\n".join(lines), max_facts=5)
    except HiLogError:
        collect_generation()  # must not raise AttributeError
    else:
        raise AssertionError("expected the fact cap to trip")


def test_auto_collect_pins_the_pending_update_summary():
    """Regression: with ``intern_gc=1`` the automatic sweep runs before the
    update's summary reaches the caller — the summary's removed atoms (no
    longer in the store) must be pinned through that sweep, or the caller
    receives stale twins that compare unequal to freshly parsed atoms."""
    session = DatabaseSession("p(X) :- e(X).", intern_gc=1)
    session.insert("e(k1).")
    summary = session.retract("e(k1).")
    assert summary.retracted == 1
    for atom in summary.removed + summary.added:
        assert _rebuild(atom) is atom


def test_session_pin_retains_held_atoms_across_auto_collect():
    """Atoms held from an *earlier* summary survive later automatic sweeps
    when pinned through :meth:`DatabaseSession.pin`, and become
    reclaimable again after :meth:`unpin`."""
    session = DatabaseSession("p(X) :- e(X).", intern_gc=1)
    session.insert("e(c1).")
    held = session.retract("e(c1).").removed
    session.pin(held)
    session.insert("e(zzz).")  # auto-sweep; held atoms stay canonical
    session.insert("e(c1).")
    assert all(_rebuild(atom) is atom for atom in held)
    assert any(session.ask(atom) for atom in held)  # e(c1) true again
    session.unpin()
    session.retract("e(c1).")
    session.retract("e(zzz).")
    session.collect()
    session.check()


@settings(max_examples=15, deadline=None)
@given(cycles=st.integers(min_value=1, max_value=40))
def test_full_churn_returns_to_baseline(cycles):
    """Insert-then-retract of entirely fresh constants, collected at the
    end, leaves no trace beyond the relation indicators: intern sizes do
    not grow with the cycle count."""
    gc.collect()
    session = DatabaseSession(RULES)
    session.collect()
    baseline = _mortal_count()
    for index in range(cycles):
        session.insert("e(g%d, g%d)." % (index, index + 1))
    for index in range(cycles):
        session.retract("e(g%d, g%d)." % (index, index + 1))
    session.collect()
    # Everything churned was retracted: the mortal population is back to
    # (at most) the baseline — no dependence on ``cycles``.
    assert _mortal_count() <= baseline + len(RECURRING)
    session.check()
