"""Tests for the pretty printer, including parse/format round trips."""

from repro.hilog.parser import parse_program, parse_rule, parse_term
from repro.hilog.pretty import format_program, format_rule, format_term
from repro.hilog.terms import App, Num, Sym, Var, make_list


class TestFormatTerm:
    def test_symbol(self):
        assert format_term(Sym("abc")) == "abc"

    def test_quoted_symbol(self):
        assert format_term(Sym("hello world")) == "'hello world'"
        assert parse_term(format_term(Sym("hello world"))) == Sym("hello world")

    def test_number(self):
        assert format_term(Num(42)) == "42"

    def test_variable(self):
        assert format_term(Var("Xs")) == "Xs"

    def test_application(self):
        assert format_term(parse_term("tc(G)(X, Y)")) == "tc(G)(X, Y)"

    def test_list(self):
        assert format_term(make_list([Sym("a"), Num(1)])) == "[a, 1]"
        assert format_term(parse_term("[X | R]")) == "[X | R]"
        assert format_term(parse_term("[]")) == "[]"

    def test_infix_builtin(self):
        assert format_term(parse_term("P * M")) == "P * M"
        assert format_term(parse_term("(1 + 2) * 3")) == "(1 + 2) * 3"


class TestRoundTrips:
    CASES = [
        "p(a, X)",
        "tc(G)(X, Y)",
        "p(a, X)(Y)(b, f(c)(d))",
        "winning(M)(X)",
        "p()",
        "[a, b, c]",
        "[X | Rest]",
        "not(X)()",
        "f(g(h(a)))",
    ]

    def test_term_round_trips(self):
        for text in self.CASES:
            term = parse_term(text)
            assert parse_term(format_term(term)) == term, text

    RULES = [
        "p(a).",
        "tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).",
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).",
        "total(X, N) :- cost(X, M), N is M * 2.",
        "contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, Z, P)).",
        "maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).",
    ]

    def test_rule_round_trips(self):
        for text in self.RULES:
            rule = parse_rule(text)
            assert parse_rule(format_rule(rule)) == rule, text

    def test_program_round_trip(self):
        program = parse_program("\n".join(self.RULES))
        assert parse_program(format_program(program)) == program
