"""Property tests for hash-consing (term interning) invariants.

Terms are globally interned (:mod:`repro.hilog.terms`): structural equality
must coincide with object identity, hashing must respect it, and the
evaluation engines must be unaffected.  Three families of properties:

* *parse -> reparse identity*: printing any term and parsing it back — in a
  fresh parser run — yields the very same object (``is``), so every code
  path that builds a structurally known term gets the canonical one;
* *structural agreement*: ``==`` / ``hash`` agree with an independent
  structural-equality oracle over random term pairs (including pairs built
  from shared and unshared subterms);
* *engine agreement post-interning*: the semi-naive register executor and
  the grounding oracle still compute identical perfect models on random
  stratified programs, and every model atom round-trips to itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modular import perfect_model_for_hilog
from repro.hilog.errors import StratificationError
from repro.hilog.parser import parse_term
from repro.hilog.pretty import format_term
from repro.hilog.terms import App, Num, Sym, Term, Var
from repro.workloads.random_programs import random_range_restricted_program

_plain_name = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda name: name not in ("not", "is", "mod", "min", "max")
)
_var_name = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,5}", fullmatch=True)

symbols = st.builds(Sym, _plain_name)
numbers = st.builds(Num, st.integers(min_value=0, max_value=10 ** 6))
variables = st.builds(Var, _var_name)

terms = st.recursive(
    st.one_of(symbols, numbers, variables),
    lambda children: st.builds(
        App,
        st.one_of(symbols, variables, children),
        st.lists(children, min_size=0, max_size=3).map(tuple),
    ),
    max_leaves=12,
)


def structural_eq(left, right):
    """Independent structural-equality oracle (no identity shortcuts)."""
    if type(left) is not type(right):
        return False
    if isinstance(left, Num):
        return left.value == right.value
    if isinstance(left, (Sym, Var)):
        return left.name == right.name
    if isinstance(left, App):
        if len(left.args) != len(right.args):
            return False
        if not structural_eq(left.name, right.name):
            return False
        return all(structural_eq(a, b) for a, b in zip(left.args, right.args))
    raise AssertionError("unknown term type %r" % (left,))


@given(terms)
@settings(max_examples=300, deadline=None)
def test_parse_reparse_yields_identical_objects(term):
    printed = format_term(term)
    assert parse_term(printed) is term
    # A second, independent parse of the printed form is also identical.
    assert parse_term(printed) is parse_term(printed)


@given(terms, terms)
@settings(max_examples=300, deadline=None)
def test_equality_and_hash_agree_with_structural_semantics(left, right):
    expected = structural_eq(left, right)
    assert (left == right) == expected
    assert (left is right) == expected  # interning: equality IS identity
    if expected:
        assert hash(left) == hash(right)


@given(terms)
@settings(max_examples=300, deadline=None)
def test_rebuilding_a_term_returns_the_canonical_object(term):
    if isinstance(term, App):
        assert App(term.name, term.args) is term
    elif isinstance(term, Num):
        assert Num(term.value) is term
    elif isinstance(term, Var):
        assert Var(term.name) is term
    else:
        assert Sym(term.name) is term


@given(
    st.integers(min_value=0, max_value=31),
    st.sampled_from(["none", "stratified"]),
)
@settings(max_examples=40, deadline=None)
def test_strategy_agreement_survives_interning(seed, negation):
    program = random_range_restricted_program(
        n_predicates=3, n_constants=3, n_facts=6, n_rules=4, max_body=3,
        negation=negation, seed=seed,
    )
    try:
        ground = perfect_model_for_hilog(program)
    except StratificationError:
        # Random negation placement may leave the supported class; the
        # property quantifies over evaluable samples only (as the engine
        # agreement suite does).
        return
    fast = perfect_model_for_hilog(program, strategy="seminaive")
    assert ground.true == fast.true
    for atom in fast.true:
        # Model atoms are canonical: printing and reparsing is the identity.
        assert parse_term(format_term(atom)) is atom
