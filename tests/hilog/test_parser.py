"""Tests for the HiLog lexer and parser."""

import pytest

from repro.hilog.errors import ParseError
from repro.hilog.parser import parse_program, parse_query, parse_rule, parse_term
from repro.hilog.program import AggregateSpec, Literal
from repro.hilog.terms import App, CONS, NIL, Num, Sym, Var


class TestTerms:
    def test_symbol(self):
        assert parse_term("abc") == Sym("abc")

    def test_variable(self):
        assert parse_term("X") == Var("X")
        assert parse_term("Rest") == Var("Rest")

    def test_number(self):
        assert parse_term("42") == Num(42)

    def test_quoted_atom(self):
        assert parse_term("'hello world'") == Sym("hello world")

    def test_simple_application(self):
        assert parse_term("p(a, X)") == App(Sym("p"), (Sym("a"), Var("X")))

    def test_zero_arity_application(self):
        assert parse_term("p()") == App(Sym("p"), ())
        assert parse_term("p()") != Sym("p")

    def test_nested_application(self):
        term = parse_term("tc(G)(X, Y)")
        assert term == App(App(Sym("tc"), (Var("G"),)), (Var("X"), Var("Y")))

    def test_variable_as_predicate_name(self):
        assert parse_term("G(X, Y)") == App(Var("G"), (Var("X"), Var("Y")))

    def test_triple_application(self):
        term = parse_term("p(a, X)(Y)(b)")
        inner = App(Sym("p"), (Sym("a"), Var("X")))
        middle = App(inner, (Var("Y"),))
        assert term == App(middle, (Sym("b"),))

    def test_complex_paper_atom(self):
        # p(a, X)(Y)(b, f(c)(d)) from Section 2 of the paper.
        term = parse_term("p(a, X)(Y)(b, f(c)(d))")
        assert term.args[1] == App(App(Sym("f"), (Sym("c"),)), (Sym("d"),))

    def test_list_syntax(self):
        assert parse_term("[]") == NIL
        assert parse_term("[a]") == App(CONS, (Sym("a"), NIL))
        assert parse_term("[a, b]") == App(CONS, (Sym("a"), App(CONS, (Sym("b"), NIL))))

    def test_list_with_tail(self):
        assert parse_term("[X | R]") == App(CONS, (Var("X"), Var("R")))

    def test_arithmetic_expression(self):
        assert parse_term("P * M") == App(Sym("*"), (Var("P"), Var("M")))
        assert parse_term("1 + 2 * 3") == App(Sym("+"), (Num(1), App(Sym("*"), (Num(2), Num(3)))))

    def test_parenthesized_expression(self):
        assert parse_term("(1 + 2) * 3") == App(Sym("*"), (App(Sym("+"), (Num(1), Num(2))), Num(3)))

    def test_anonymous_variables_are_distinct(self):
        term = parse_term("p(_, _)")
        assert term.args[0] != term.args[1]

    def test_anonymous_variables_distinct_across_parses(self):
        # Regression: with hash-consed terms, a per-parser ``_Anon%d``
        # counter made the first ``_`` of every independent parse the very
        # same ``Var`` object, silently aliasing anonymous variables in
        # fragments combined from separate parse calls.
        first = parse_term("p(_)")
        second = parse_term("q(_)")
        assert first.args[0] is not second.args[0]
        assert first.args[0] != second.args[0]

    def test_combined_rules_from_two_parses_keep_anons_apart(self):
        from repro.hilog.program import Program

        # Two independently parsed rules, each using ``_``: combining them
        # into one program must not link their anonymous variables.
        rule_a = parse_rule("p(X) :- e(X, _).")
        rule_b = parse_rule("q(Y) :- f(_, Y).")
        anon_a = next(iter(rule_a.body[0].atom.args[1].variables()))
        anon_b = next(iter(rule_b.body[0].atom.args[0].variables()))
        assert anon_a is not anon_b
        program = Program((rule_a, rule_b))
        assert len(program.rules[0].variables() & program.rules[1].variables()) == 0

    def test_cross_parse_anon_aliasing_would_change_safety(self):
        # A head built in one parse and a body atom in another: an aliased
        # anonymous variable would make this unsafe rule look range
        # restricted (head var "bound" by the unrelated body's anon).
        head = parse_term("h(_)")
        body_atom = parse_term("b(_)")
        head_var = next(iter(head.variables()))
        body_var = next(iter(body_atom.variables()))
        assert head_var is not body_var

    def test_anonymous_variables_never_grow_the_intern_table(self):
        # Anonymous variables are fresh *uninterned* objects, and the
        # applications containing them stay uninterned too: repeated
        # parsing of ``_`` must not accrete entries in ANY table —
        # globally unique interned names would leak one Var (plus one
        # App per enclosing application) per parse.
        from repro.hilog.terms import intern_table_sizes

        parse_term("p(_, _)")
        before = intern_table_sizes()
        for _ in range(50):
            term = parse_term("p(_, _)")
        assert intern_table_sizes() == before
        # ... while remaining genuinely distinct variables.
        assert term.args[0] is not term.args[1]
        assert len(term.variables()) == 2
        # A nested application over an anon is uninterned as well (each
        # parse yields a fresh object), but a ground sibling subterm is
        # shared and canonical as usual.
        nested = parse_term("q(f(_), f(a))")
        assert parse_term("q(f(_), f(a))") is not nested
        assert parse_term("f(a)") is nested.args[1]

    def test_comments_are_skipped(self):
        program = parse_program("% a comment\np(a). /* block\ncomment */ q(b).")
        assert len(program) == 2

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_term("p(")
        with pytest.raises(ParseError):
            parse_term("p(a) q")
        with pytest.raises(ParseError):
            parse_program("p(a)")  # missing final full stop

    def test_error_reports_location(self):
        try:
            parse_program("p(a).\nq :- .")
        except ParseError as error:
            assert error.line == 2
        else:
            raise AssertionError("expected a ParseError")


class TestRules:
    def test_fact(self):
        rule = parse_rule("p(a).")
        assert rule.is_fact()
        assert rule.head == App(Sym("p"), (Sym("a"),))

    def test_rule_with_body(self):
        rule = parse_rule("tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).")
        assert len(rule.body) == 2
        assert all(literal.positive for literal in rule.body)

    def test_negation_keyword(self):
        rule = parse_rule("winning(X) :- move(X, Y), not winning(Y).")
        assert rule.body[1].negative
        assert rule.body[1].atom == App(Sym("winning"), (Var("Y"),))

    def test_negation_backslash_plus(self):
        rule = parse_rule("p :- \\+ q(X).")
        assert rule.body[0].negative

    def test_negation_tilde(self):
        rule = parse_rule("p :- ~q(X).")
        assert rule.body[0].negative

    def test_not_as_symbol_application(self):
        # Example 5.3 uses not(X)() as an ordinary atom.
        rule = parse_rule("not(X)() :- not X.")
        assert rule.head == App(App(Sym("not"), (Var("X"),)), ())
        assert rule.body[0].negative
        assert rule.body[0].atom == Var("X")

    def test_builtin_comparison(self):
        rule = parse_rule("big(X) :- cost(X, M), M > 3.")
        assert rule.body[1].is_builtin()

    def test_builtin_is(self):
        rule = parse_rule("total(X, N) :- cost(X, M), N is M * 2.")
        builtin = rule.body[1]
        assert builtin.is_builtin()
        assert builtin.atom.name == Sym("is")

    def test_builtin_equality_with_expression(self):
        rule = parse_rule("r(N) :- q(P, M), N = P * M.")
        assert rule.body[1].is_builtin()

    def test_aggregate(self):
        rule = parse_rule("contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, Z, P)).")
        assert len(rule.aggregates) == 1
        aggregate = rule.aggregates[0]
        assert isinstance(aggregate, AggregateSpec)
        assert aggregate.op == "sum"
        assert aggregate.result == Var("N")
        assert aggregate.value == Var("P")

    def test_equality_that_is_not_an_aggregate(self):
        rule = parse_rule("p(X) :- q(Y), X = Y.")
        assert not rule.aggregates
        assert rule.body[1].is_builtin()

    def test_game_rule(self):
        rule = parse_rule("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).")
        assert rule.head == App(App(Sym("winning"), (Var("M"),)), (Var("X"),))
        assert rule.body[2].negative


class TestProgramsAndQueries:
    def test_program(self):
        program = parse_program(
            """
            tc(G)(X, Y) :- G(X, Y).
            tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).
            e(1, 2).
            """
        )
        assert len(program) == 3
        assert len(program.facts()) == 1

    def test_maplist_program(self):
        program = parse_program(
            """
            maplist(F)([], []).
            maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).
            """
        )
        assert len(program) == 2

    def test_query_with_prefix(self):
        literals = parse_query("?- w(m)(a).")
        assert len(literals) == 1
        assert literals[0].positive

    def test_query_without_prefix(self):
        literals = parse_query("w(m)(X), not w(m)(Y)")
        assert len(literals) == 2
        assert literals[1].negative

    def test_query_rejects_aggregates(self):
        with pytest.raises(ParseError):
            parse_query("N = sum(P : in(a, b, c, Z, P))")

    def test_empty_program(self):
        assert len(parse_program("")) == 0
