"""Property tests: the pretty printer round-trips through the parser for
random HiLog terms, literals, rules and whole programs.

The generators cover the language's corners — nested applications of
applications (``p(a)(X)(b)``), zero-ary applications, quoted symbols,
lists (proper and partial), numbers, negation, builtin comparisons and
aggregate subgoals — while avoiding the reserved builtin names in
predicate-name positions (the printer would legitimately render those
infix)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilog.parser import parse_program, parse_rule, parse_term
from repro.hilog.pretty import format_program, format_rule, format_term
from repro.hilog.program import AggregateSpec, Literal, Program, Rule
from repro.hilog.program import BUILTIN_PREDICATES
from repro.hilog.terms import App, Num, Sym, Var, make_list

#: Names the lexer treats specially in term positions.
_RESERVED = set(BUILTIN_PREDICATES) | {"not", "is"}

_plain_name = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda name: name not in _RESERVED
)
_quoted_name = st.text(
    alphabet=string.ascii_letters + string.digits + " +-*/.#@",
    min_size=1, max_size=8,
).filter(lambda name: not (name[:1].islower() and all(
    ch.isalnum() or ch == "_" for ch in name) and name not in _RESERVED))
_var_name = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,5}", fullmatch=True)

symbols = st.one_of(
    st.builds(Sym, _plain_name),
    st.builds(Sym, _quoted_name),
)
numbers = st.builds(Num, st.integers(min_value=0, max_value=10 ** 6))
variables = st.builds(Var, _var_name)


def _apps(children):
    """Applications — possibly of applications — over generated children."""
    return st.builds(
        App,
        st.one_of(symbols, variables, children),
        st.lists(children, min_size=0, max_size=3).map(tuple),
    )


def _lists(children):
    return st.builds(
        make_list,
        st.lists(children, min_size=0, max_size=3),
        st.one_of(st.just(None), variables).map(
            lambda tail: tail if tail is not None else __import__(
                "repro.hilog.terms", fromlist=["NIL"]).NIL
        ),
    )


terms = st.recursive(
    st.one_of(symbols, numbers, variables),
    lambda children: st.one_of(_apps(children), _lists(children)),
    max_leaves=12,
)

#: Atoms acceptable as rule heads / body literals (no bare numbers).
atoms = st.one_of(
    symbols,
    st.builds(
        App,
        st.one_of(symbols, st.builds(App, symbols, st.lists(
            st.one_of(symbols, variables), min_size=0, max_size=2).map(tuple))),
        st.lists(terms, min_size=0, max_size=3).map(tuple),
    ),
)

literals = st.builds(Literal, atoms, st.booleans())

comparisons = st.builds(
    lambda op, left, right: Literal(App(Sym(op), (left, right))),
    st.sampled_from(sorted(BUILTIN_PREDICATES)),
    st.one_of(variables, numbers),
    st.one_of(variables, numbers),
)

aggregates = st.builds(
    AggregateSpec,
    st.sampled_from(AggregateSpec.SUPPORTED_OPS),
    variables,
    st.builds(App, symbols, st.lists(
        st.one_of(symbols, variables), min_size=1, max_size=3).map(tuple)),
    variables,
)

rules = st.builds(
    Rule,
    atoms,
    st.lists(st.one_of(literals, comparisons), min_size=0, max_size=4).map(tuple),
    st.lists(aggregates, min_size=0, max_size=1).map(tuple),
)

programs = st.builds(Program, st.lists(rules, min_size=0, max_size=6).map(tuple))


@settings(max_examples=300, deadline=None)
@given(terms)
def test_term_round_trip(term):
    assert parse_term(format_term(term)) == term


@settings(max_examples=300, deadline=None)
@given(rules)
def test_rule_round_trip(rule):
    assert parse_rule(format_rule(rule)) == rule


@settings(max_examples=100, deadline=None)
@given(programs)
def test_program_round_trip(program):
    assert parse_program(format_program(program)) == program


@settings(max_examples=100, deadline=None)
@given(programs)
def test_formatting_is_deterministic_fixpoint(program):
    """Formatting a reparsed program reproduces the text exactly."""
    text = format_program(program)
    assert format_program(parse_program(text)) == text
