"""Tests for the universal-relation (call/apply) encoding of Section 2."""

import pytest

from repro.engine.grounding import relevant_ground_program
from repro.engine.wellfounded import well_founded_model
from repro.hilog.parser import parse_program, parse_term
from repro.hilog.terms import App, Sym, Var
from repro.hilog.universal import (
    CALL,
    apply_symbol,
    bridge_rule,
    decode_atom,
    decode_term,
    encode_atom,
    encode_program,
    encode_term,
    is_call_atom,
)


class TestEncoding:
    def test_symbol_and_variable_unchanged(self):
        assert encode_term(Sym("a")) == Sym("a")
        assert encode_term(Var("X")) == Var("X")

    def test_simple_atom(self):
        # p(X, a) -> apply_3(p, X, a); as an atom: call(apply_3(p, X, a)).
        encoded = encode_atom(parse_term("p(X, a)"))
        assert encoded == App(CALL, (App(apply_symbol(3), (Sym("p"), Var("X"), Sym("a"))),))

    def test_paper_example_nested_atom(self):
        # p(X, a)(Z) -> call(apply_2(apply_3(p, X, a), Z))  (Section 1 of the paper,
        # where apply_i is written u_i).
        encoded = encode_atom(parse_term("p(X, a)(Z)"))
        inner = App(apply_symbol(3), (Sym("p"), Var("X"), Sym("a")))
        assert encoded == App(CALL, (App(apply_symbol(2), (inner, Var("Z"))),))

    def test_decode_inverts_encode(self):
        for text in ["p(X, a)", "tc(G)(X, Y)", "p(a, X)(Y)(b, f(c)(d))", "q", "p()"]:
            term = parse_term(text)
            assert decode_term(encode_term(term)) == term
            assert decode_atom(encode_atom(term)) == term

    def test_is_call_atom(self):
        assert is_call_atom(encode_atom(parse_term("p(a)")))
        assert not is_call_atom(parse_term("p(a)"))

    def test_decode_rejects_malformed(self):
        with pytest.raises(ValueError):
            decode_atom(parse_term("p(a)"))
        with pytest.raises(ValueError):
            decode_term(App(apply_symbol(3), (Sym("p"), Sym("a"))))  # wrong arity

    def test_encoded_program_is_normal(self):
        program = parse_program(
            """
            maplist(F)([], []).
            maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).
            """
        )
        encoded = encode_program(program)
        assert encoded.is_normal()
        assert len(encoded) == len(program)

    def test_encoding_rejects_aggregates(self):
        program = parse_program("c(N) :- N = sum(P : in(P)).")
        with pytest.raises(ValueError):
            encode_program(program)

    def test_bridge_rule_shape(self):
        rule = bridge_rule("f", 2)
        assert rule.head.name == CALL
        assert rule.body[0].atom == App(Sym("f"), (Var("X1"), Var("X2")))


class TestSemanticEquivalence:
    """The least model of the encoded program encodes the least model of the
    original (negation-free) HiLog program."""

    def test_transitive_closure_equivalence(self):
        program = parse_program(
            """
            tc(G)(X, Y) :- graph(G), G(X, Y).
            tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).
            graph(e).
            e(1, 2). e(2, 3). e(3, 4).
            """
        )
        direct = well_founded_model(relevant_ground_program(program))
        encoded = well_founded_model(relevant_ground_program(encode_program(program)))
        decoded_true = {decode_atom(atom) for atom in encoded.true}
        assert decoded_true == set(direct.true)

    def test_definite_program_equivalence(self):
        program = parse_program(
            """
            p(a). p(b).
            q(X) :- p(X).
            r(X, Y) :- q(X), q(Y).
            """
        )
        direct = well_founded_model(relevant_ground_program(program))
        encoded = well_founded_model(relevant_ground_program(encode_program(program)))
        decoded_true = {decode_atom(atom) for atom in encoded.true}
        assert decoded_true == set(direct.true)
