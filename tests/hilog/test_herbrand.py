"""Tests for Herbrand universe enumeration."""

import pytest

from repro.hilog.herbrand import HerbrandUniverse, herbrand_symbols, normal_herbrand_universe
from repro.hilog.parser import parse_program
from repro.hilog.terms import App, Sym


class TestHerbrandSymbols:
    def test_symbols_of_program(self):
        program = parse_program("p(a) :- q(b).")
        assert herbrand_symbols(program) == frozenset({"p", "q", "a", "b"})

    def test_extra_symbols(self):
        program = parse_program("p(a).")
        assert "zzz" in herbrand_symbols(program, extra_symbols=["zzz"])

    def test_empty_program_gets_a_constant(self):
        assert len(herbrand_symbols(parse_program(""))) == 1


class TestHerbrandUniverse:
    def test_depth_zero_is_just_symbols(self):
        universe = HerbrandUniverse(["a", "b"], max_depth=0)
        assert set(universe.terms()) == {Sym("a"), Sym("b")}

    def test_depth_one_unary(self):
        universe = HerbrandUniverse(["a", "b"], max_depth=1, max_arity=1)
        terms = set(universe.terms())
        # 2 symbols + 2*2 unary applications.
        assert len(terms) == 6
        assert App(Sym("a"), (Sym("b"),)) in terms
        assert App(Sym("b"), (Sym("b"),)) in terms

    def test_depth_one_binary_count(self):
        universe = HerbrandUniverse(["a", "b"], max_depth=1, max_arity=2)
        # 2 symbols + 2*2 unary + 2*4 binary = 14.
        assert len(universe) == 14

    def test_membership(self):
        universe = HerbrandUniverse(["a", "p"], max_depth=1, max_arity=1)
        assert Sym("a") in universe
        assert App(Sym("p"), (Sym("a"),)) in universe
        assert App(Sym("p"), (App(Sym("p"), (Sym("a"),)),)) not in universe  # depth 2
        assert Sym("zzz") not in universe

    def test_depth_two_contains_nested(self):
        universe = HerbrandUniverse(["a"], max_depth=2, max_arity=1)
        assert App(Sym("a"), (App(Sym("a"), (Sym("a"),)),)) in universe
        assert App(App(Sym("a"), (Sym("a"),)), (Sym("a"),)) in universe

    def test_of_program_defaults(self):
        program = parse_program("p(a, b).")
        universe = HerbrandUniverse.of_program(program)
        assert universe.max_arity == 2
        assert Sym("p") in universe

    def test_validation(self):
        with pytest.raises(ValueError):
            HerbrandUniverse(["a"], max_depth=-1)
        with pytest.raises(ValueError):
            HerbrandUniverse(["a"], max_arity=0)

    def test_universe_of_empty_symbols_nonempty(self):
        universe = HerbrandUniverse([])
        assert len(universe.constants()) == 1


class TestNormalHerbrandUniverse:
    def test_constants_only(self):
        program = parse_program("p(a, b) :- q(c).")
        constants = normal_herbrand_universe(program)
        assert set(constants) == {Sym("a"), Sym("b"), Sym("c")}

    def test_predicate_symbols_are_not_constants(self):
        program = parse_program("p(a) :- q(a).")
        constants = normal_herbrand_universe(program)
        assert Sym("p") not in constants
        assert Sym("q") not in constants

    def test_example_4_1_universe_is_singleton(self):
        # The normal Herbrand universe of {p :- not q(X).  q(a).} is {a}.
        program = parse_program("p :- not q(X). q(a).")
        assert normal_herbrand_universe(program) == [Sym("a")]

    def test_fresh_constant_when_none(self):
        program = parse_program("p :- q.")
        assert len(normal_herbrand_universe(program)) == 1
