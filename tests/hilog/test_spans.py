"""Source spans: parser-attached positions on rules, literals and
aggregates, their preservation through the program algebra, and
line/column information on parse errors."""

import pytest

from repro.hilog.errors import ParseError
from repro.hilog.parser import parse_program, parse_rule
from repro.hilog.program import Rule, Span
from repro.hilog.terms import Sym, Var


class TestParserSpans:
    def test_rule_spans_point_at_rule_starts(self):
        program = parse_program("e(a, b).\n  tc(X, Y) :- e(X, Y).\n")
        spans = [rule.span for rule in program.rules]
        assert spans == [Span(1, 1), Span(2, 3)]

    def test_literal_spans_point_at_body_literals(self):
        [rule] = parse_program(
            "tc(X, Z) :- e(X, Y), tc(Y, Z), not cut(X, Z)."
        ).rules
        assert [literal.span for literal in rule.body] == [
            Span(1, 13), Span(1, 22), Span(1, 32),
        ]

    def test_negated_literal_span_starts_at_not(self):
        [rule] = parse_program("p(X) :- q(X), not r(X).").rules
        negated = rule.body[1]
        assert not negated.positive
        assert negated.span == Span(1, 15)

    def test_aggregate_span(self):
        [rule] = parse_program(
            "total(X, N) :- base(X), N = sum(V : in(X, V))."
        ).rules
        [spec] = rule.aggregates
        assert spec.span == Span(1, 25)

    def test_span_renders_as_line_colon_column(self):
        assert str(Span(3, 14)) == "3:14"

    def test_multiline_programs_track_lines(self):
        program = parse_program("a(1).\n\n\nb(X) :- a(X).\n")
        assert [rule.span for rule in program.rules] == [Span(1, 1), Span(4, 1)]


class TestSpanPreservation:
    def _rule(self):
        [rule] = parse_program("p(X) :- q(X), not r(X).").rules
        return rule

    def test_substitute_preserves_spans(self):
        from repro.hilog.subst import Substitution

        rule = self._rule()
        ground = rule.substitute(Substitution({Var("X"): Sym("a")}))
        assert ground.span == rule.span
        assert [l.span for l in ground.body] == [l.span for l in rule.body]

    def test_rename_apart_preserves_spans(self):
        rule = self._rule()
        renamed = rule.rename_apart([0])
        assert renamed.span == rule.span
        assert [l.span for l in renamed.body] == [l.span for l in rule.body]

    def test_rename_apart_preserves_aggregate_spans(self):
        [rule] = parse_program(
            "total(X, N) :- base(X), N = sum(V : in(X, V))."
        ).rules
        renamed = rule.rename_apart([0])
        assert [a.span for a in renamed.aggregates] == \
            [a.span for a in rule.aggregates]

    def test_negate_preserves_literal_span(self):
        rule = self._rule()
        literal = rule.body[0]
        assert literal.negate().span == literal.span

    def test_spans_do_not_affect_equality_or_hashing(self):
        with_span = parse_rule("p(X) :- q(X).")
        without = Rule(with_span.head, with_span.body)
        assert without.span is None and with_span.span is not None
        assert with_span == without
        assert hash(with_span) == hash(without)

    def test_programmatic_rules_default_to_no_span(self):
        rule = parse_rule("p(X) :- q(X).")
        rebuilt = Rule(rule.head, rule.body)
        assert rebuilt.span is None
        assert all(l.span is not None for l in rule.body)


class TestParseErrorPositions:
    @pytest.mark.parametrize("text, line", [
        ("p(a", 1),
        ("e(a, b).\nq(X) :- ,", 2),
        ("a(1).\nb(2).\nc :- .", 3),
    ])
    def test_parse_errors_carry_line(self, text, line):
        with pytest.raises(ParseError) as info:
            parse_program(text)
        assert info.value.line == line
        assert info.value.column is not None and info.value.column >= 1

    def test_query_aggregate_rejection_carries_position(self):
        from repro.hilog.parser import parse_query

        with pytest.raises(ParseError) as info:
            parse_query("N = sum(V : p(V))")
        assert info.value.line == 1
        assert info.value.column is not None
