"""Tests for HiLog terms (repro.hilog.terms)."""

import pytest

from repro.hilog.terms import (
    App,
    CONS,
    NIL,
    Num,
    Sym,
    Var,
    app,
    atom_arguments,
    functor,
    list_items,
    make_list,
    outermost_symbol,
    predicate_name,
    rename_variables,
    subterms,
    sym,
    var,
)


class TestConstruction:
    def test_sym_equality(self):
        assert Sym("p") == Sym("p")
        assert Sym("p") != Sym("q")

    def test_var_equality(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_var_not_equal_sym(self):
        assert Var("X") != Sym("X")

    def test_num_equality(self):
        assert Num(3) == Num(3)
        assert Num(3) != Num(4)

    def test_num_is_a_symbol(self):
        assert isinstance(Num(3), Sym)

    def test_num_not_equal_plain_sym(self):
        assert Num(3) != Sym("3")

    def test_app_equality(self):
        assert App(Sym("p"), (Sym("a"),)) == App(Sym("p"), (Sym("a"),))
        assert App(Sym("p"), (Sym("a"),)) != App(Sym("p"), (Sym("b"),))

    def test_app_arity(self):
        assert App(Sym("p"), (Sym("a"), Sym("b"))).arity == 2
        assert App(Sym("p"), ()).arity == 0

    def test_zero_arity_app_distinct_from_symbol(self):
        # Footnote 1 of the paper: p() and p are distinct terms.
        assert App(Sym("p"), ()) != Sym("p")

    def test_nested_application(self):
        term = App(App(Sym("tc"), (Var("G"),)), (Var("X"), Var("Y")))
        assert term.arity == 2
        assert term.name == App(Sym("tc"), (Var("G"),))

    def test_app_rejects_non_terms(self):
        with pytest.raises(TypeError):
            App("p", (Sym("a"),))
        with pytest.raises(TypeError):
            App(Sym("p"), ("a",))

    def test_immutability(self):
        term = Sym("p")
        with pytest.raises(AttributeError):
            term.name = "q"
        variable = Var("X")
        with pytest.raises(AttributeError):
            variable.name = "Y"
        application = App(Sym("p"), ())
        with pytest.raises(AttributeError):
            application.args = ()

    def test_hashable(self):
        terms = {Sym("p"), Var("X"), App(Sym("p"), (Var("X"),)), Num(1)}
        assert len(terms) == 4


class TestHelpers:
    def test_sym_helper_converts_ints(self):
        assert sym(3) == Num(3)
        assert sym("a") == Sym("a")

    def test_sym_helper_rejects_bool(self):
        with pytest.raises(TypeError):
            sym(True)

    def test_app_helper(self):
        assert app("p", "a", 3) == App(Sym("p"), (Sym("a"), Num(3)))

    def test_var_helper(self):
        assert var("X") == Var("X")

    def test_is_ground(self):
        assert Sym("a").is_ground()
        assert not Var("X").is_ground()
        assert App(Sym("p"), (Sym("a"),)).is_ground()
        assert not App(Sym("p"), (Var("X"),)).is_ground()
        assert not App(Var("G"), (Sym("a"),)).is_ground()

    def test_variables(self):
        term = App(App(Sym("tc"), (Var("G"),)), (Var("X"), Sym("a")))
        assert term.variables() == {Var("G"), Var("X")}

    def test_symbols(self):
        term = App(App(Sym("tc"), (Var("G"),)), (Var("X"), Sym("a")))
        assert term.symbols() == {"tc", "a"}

    def test_depth(self):
        assert Sym("a").depth() == 0
        assert Var("X").depth() == 0
        assert App(Sym("p"), (Sym("a"),)).depth() == 1
        assert App(App(Sym("p"), (Sym("a"),)), (Sym("b"),)).depth() == 2
        assert App(Sym("p"), (App(Sym("q"), (Sym("a"),)),)).depth() == 2

    def test_depth_deep_term_no_recursion_error(self):
        term = Sym("a")
        for _ in range(5000):
            term = App(Sym("f"), (term,))
        assert term.depth() == 5000
        assert term.is_ground()
        assert term.size() == 10001

    def test_size(self):
        assert Sym("a").size() == 1
        # An application node counts itself, its name and its arguments.
        assert App(Sym("p"), (Sym("a"), Sym("b"))).size() == 4

    def test_subterms(self):
        term = App(Sym("p"), (App(Sym("q"), (Sym("a"),)),))
        collected = set(subterms(term))
        assert Sym("a") in collected
        assert Sym("q") in collected
        assert term in collected

    def test_functor_and_predicate_name(self):
        nested = App(App(Sym("tc"), (Sym("e"),)), (Sym("a"), Sym("b")))
        assert functor(nested) == App(Sym("tc"), (Sym("e"),))
        assert predicate_name(nested) == App(Sym("tc"), (Sym("e"),))
        assert predicate_name(Sym("p")) == Sym("p")

    def test_outermost_symbol(self):
        nested = App(App(Sym("winning"), (Var("M"),)), (Var("X"),))
        assert outermost_symbol(nested) == Sym("winning")
        assert outermost_symbol(App(Var("G"), (Sym("a"),))) is None

    def test_atom_arguments(self):
        assert atom_arguments(App(Sym("p"), (Sym("a"), Sym("b")))) == (Sym("a"), Sym("b"))
        assert atom_arguments(Sym("p")) == ()


class TestLists:
    def test_make_list_and_items(self):
        items = [Sym("a"), Sym("b"), Num(3)]
        term = make_list(items)
        assert list_items(term) == items

    def test_empty_list(self):
        assert make_list([]) == NIL
        assert list_items(NIL) == []

    def test_partial_list_items_is_none(self):
        partial = App(CONS, (Sym("a"), Var("T")))
        assert list_items(partial) is None


class TestRenameVariables:
    def test_rename_produces_fresh_names(self):
        term = App(Sym("p"), (Var("X"), Var("Y"), Var("X")))
        mapping = {}
        renamed = rename_variables(term, mapping, [0])
        assert renamed.variables() != term.variables()
        # The two occurrences of X are renamed consistently.
        assert renamed.args[0] == renamed.args[2]
        assert renamed.args[0] != renamed.args[1]

    def test_rename_keeps_symbols(self):
        term = App(Sym("p"), (Sym("a"),))
        assert rename_variables(term, {}, [0]) == term
