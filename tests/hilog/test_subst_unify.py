"""Tests for substitutions, unification and matching."""

import pytest

from repro.hilog.errors import UnificationError
from repro.hilog.subst import Substitution, compose, empty_substitution
from repro.hilog.terms import App, Sym, Var
from repro.hilog.unify import match, mgu, unifiable, unify, variant


def p(*args):
    return App(Sym("p"), args)


class TestSubstitution:
    def test_empty(self):
        assert empty_substitution().is_empty()

    def test_apply_to_variable(self):
        subst = Substitution({Var("X"): Sym("a")})
        assert subst.apply(Var("X")) == Sym("a")
        assert subst.apply(Var("Y")) == Var("Y")

    def test_apply_inside_application(self):
        subst = Substitution({Var("X"): Sym("a")})
        assert subst.apply(p(Var("X"), Var("Y"))) == p(Sym("a"), Var("Y"))

    def test_apply_to_predicate_name_position(self):
        subst = Substitution({Var("G"): Sym("e")})
        term = App(Var("G"), (Sym("a"), Sym("b")))
        assert subst.apply(term) == App(Sym("e"), (Sym("a"), Sym("b")))

    def test_transitive_bindings(self):
        subst = Substitution({Var("X"): Var("Y"), Var("Y"): Sym("a")})
        assert subst.apply(Var("X")) == Sym("a")

    def test_identity_bindings_removed(self):
        subst = Substitution({Var("X"): Var("X")})
        assert subst.is_empty()

    def test_bind_returns_new_substitution(self):
        first = Substitution({Var("X"): Sym("a")})
        second = first.bind(Var("Y"), Sym("b"))
        assert Var("Y") not in first
        assert second.apply(Var("Y")) == Sym("b")

    def test_compose_order(self):
        first = Substitution({Var("X"): Var("Y")})
        second = Substitution({Var("Y"): Sym("a")})
        composed = compose(first, second)
        assert composed.apply(Var("X")) == Sym("a")
        # Composition applies `first` first:
        assert composed.apply(p(Var("X"), Var("Y"))) == second.apply(first.apply(p(Var("X"), Var("Y"))))

    def test_restrict(self):
        subst = Substitution({Var("X"): Sym("a"), Var("Y"): Sym("b")})
        restricted = subst.restrict([Var("X")])
        assert Var("X") in restricted
        assert Var("Y") not in restricted

    def test_rejects_bad_keys(self):
        with pytest.raises(TypeError):
            Substitution({Sym("a"): Sym("b")})
        with pytest.raises(TypeError):
            Substitution({Var("X"): "b"})

    def test_equality_and_hash(self):
        assert Substitution({Var("X"): Sym("a")}) == Substitution({Var("X"): Sym("a")})
        assert hash(Substitution({Var("X"): Sym("a")})) == hash(Substitution({Var("X"): Sym("a")}))


class TestUnification:
    def test_identical_symbols(self):
        assert unify(Sym("a"), Sym("a")).is_empty()

    def test_distinct_symbols_fail(self):
        assert unify(Sym("a"), Sym("b")) is None

    def test_variable_binding(self):
        result = unify(Var("X"), Sym("a"))
        assert result.apply(Var("X")) == Sym("a")

    def test_applications(self):
        result = unify(p(Var("X"), Sym("b")), p(Sym("a"), Var("Y")))
        assert result.apply(Var("X")) == Sym("a")
        assert result.apply(Var("Y")) == Sym("b")

    def test_arity_mismatch_fails(self):
        assert unify(p(Var("X")), p(Sym("a"), Sym("b"))) is None

    def test_predicate_name_unifies(self):
        # HiLog unification: a variable can be the predicate name.
        left = App(Var("G"), (Sym("a"), Var("Y")))
        right = App(Sym("e"), (Var("X"), Sym("b")))
        result = unify(left, right)
        assert result.apply(Var("G")) == Sym("e")
        assert result.apply(Var("Y")) == Sym("b")
        assert result.apply(Var("X")) == Sym("a")

    def test_nested_name_unification(self):
        left = App(App(Sym("tc"), (Var("G"),)), (Var("X"), Var("Y")))
        right = App(App(Sym("tc"), (Sym("e"),)), (Sym("a"), Sym("b")))
        result = unify(left, right)
        assert result.apply(Var("G")) == Sym("e")

    def test_name_vs_symbol_fails(self):
        assert unify(App(Sym("p"), (Sym("a"),)), Sym("p")) is None

    def test_occurs_check(self):
        assert unify(Var("X"), p(Var("X"))) is None

    def test_occurs_check_disabled(self):
        assert unify(Var("X"), p(Var("X")), occurs_check=False) is not None

    def test_shared_variable(self):
        result = unify(p(Var("X"), Var("X")), p(Sym("a"), Var("Y")))
        assert result.apply(Var("Y")) == Sym("a")

    def test_unify_symmetry(self):
        left = p(Var("X"), Sym("b"))
        right = p(Sym("a"), Var("Y"))
        forward = unify(left, right)
        backward = unify(right, left)
        assert forward.apply(left) == backward.apply(left)

    def test_mgu_raises_on_failure(self):
        with pytest.raises(UnificationError):
            mgu(Sym("a"), Sym("b"))

    def test_unifiable(self):
        assert unifiable(Var("X"), Sym("a"))
        assert not unifiable(Sym("a"), Sym("b"))

    def test_unifier_is_most_general(self):
        result = unify(p(Var("X")), p(Var("Y")))
        # A variable-variable binding, not a grounding.
        value = result.apply(Var("X"))
        assert isinstance(value, Var)


class TestMatch:
    def test_match_binds_pattern_only(self):
        result = match(p(Var("X"), Sym("b")), p(Sym("a"), Sym("b")))
        assert result.apply(Var("X")) == Sym("a")

    def test_match_fails_on_mismatch(self):
        assert match(p(Sym("a")), p(Sym("b"))) is None

    def test_match_name_variable(self):
        result = match(App(Var("G"), (Var("X"), Var("Y"))), App(Sym("e"), (Sym("a"), Sym("b"))))
        assert result.apply(Var("G")) == Sym("e")

    def test_match_respects_existing_bindings(self):
        base = Substitution({Var("X"): Sym("a")})
        assert match(p(Var("X")), p(Sym("b")), base) is None
        assert match(p(Var("X")), p(Sym("a")), base) is not None


class TestVariant:
    def test_variants(self):
        assert variant(p(Var("X"), Var("Y")), p(Var("A"), Var("B")))

    def test_not_variant_when_identified(self):
        assert not variant(p(Var("X"), Var("X")), p(Var("A"), Var("B")))
        assert not variant(p(Var("X"), Var("Y")), p(Var("A"), Var("A")))

    def test_ground_variant_is_equality(self):
        assert variant(p(Sym("a")), p(Sym("a")))
        assert not variant(p(Sym("a")), p(Sym("b")))
