"""Tests for literals, rules and programs."""

import pytest

from repro.hilog.parser import parse_program, parse_rule
from repro.hilog.program import AggregateSpec, Literal, Program, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Sym, Var


class TestLiteral:
    def test_negate(self):
        literal = Literal(Sym("p"))
        assert literal.negate().negative
        assert literal.negate().negate() == literal

    def test_substitute(self):
        literal = Literal(App(Sym("p"), (Var("X"),)))
        substituted = literal.substitute(Substitution({Var("X"): Sym("a")}))
        assert substituted.atom == App(Sym("p"), (Sym("a"),))

    def test_is_builtin(self):
        assert Literal(App(Sym("<"), (Var("X"), Var("Y")))).is_builtin()
        assert not Literal(App(Sym("p"), (Var("X"),))).is_builtin()

    def test_predicate(self):
        literal = Literal(App(App(Sym("tc"), (Sym("e"),)), (Var("X"),)))
        assert literal.predicate() == App(Sym("tc"), (Sym("e"),))


class TestRule:
    def test_fact_detection(self):
        assert parse_rule("p(a).").is_fact()
        assert not parse_rule("p(a) :- q(a).").is_fact()

    def test_positive_negative_builtin_partition(self):
        rule = parse_rule("h(X) :- a(X), not b(X), X > 3, c(X).")
        assert [repr(l.atom) for l in rule.positive_literals()] == ["a(X)", "c(X)"]
        assert [repr(l.atom) for l in rule.negative_literals()] == ["b(X)"]
        assert len(rule.builtin_literals()) == 1

    def test_variables_and_symbols(self):
        rule = parse_rule("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).")
        assert rule.variables() == {Var("M"), Var("X"), Var("Y")}
        assert rule.symbols() == {"winning", "game"}

    def test_head_predicate(self):
        rule = parse_rule("winning(M)(X) :- game(M).")
        assert rule.head_predicate() == App(Sym("winning"), (Var("M"),))

    def test_substitute(self):
        rule = parse_rule("p(X) :- q(X).")
        ground = rule.substitute(Substitution({Var("X"): Sym("a")}))
        assert ground.is_ground()

    def test_rename_apart(self):
        rule = parse_rule("p(X) :- q(X, Y).")
        counter = [0]
        first = rule.rename_apart(counter)
        second = rule.rename_apart(counter)
        assert first.variables().isdisjoint(second.variables())
        assert first.variables().isdisjoint(rule.variables())

    def test_rename_apart_preserves_aggregates(self):
        rule = parse_rule("c(X, N) :- N = sum(P : in(X, Z, P)).")
        renamed = rule.rename_apart([0])
        assert len(renamed.aggregates) == 1
        assert renamed.aggregates[0].op == "sum"

    def test_is_ground(self):
        assert parse_rule("p(a) :- q(b).").is_ground()
        assert not parse_rule("p(X) :- q(X).").is_ground()


class TestProgram:
    def test_union_removes_duplicates(self):
        first = parse_program("p(a). q(b).")
        second = parse_program("q(b). r(c).")
        union = first + second
        assert len(union) == 3

    def test_symbols_exclude_builtins(self):
        program = parse_program("p(X) :- q(X, M), X > M.")
        assert program.symbols() == {"p", "q"}

    def test_is_normal(self):
        assert parse_program("p(X) :- q(X), not r(X).").is_normal()
        assert not parse_program("p(X) :- G(X).").is_normal()
        assert not parse_program("tc(G)(X, Y) :- G(X, Y).").is_normal()

    def test_has_negation(self):
        assert parse_program("p :- not q.").has_negation()
        assert not parse_program("p :- q.").has_negation()

    def test_has_aggregates(self):
        assert parse_program("c(N) :- N = sum(P : in(P)).").has_aggregates()
        assert not parse_program("c(N) :- in(N).").has_aggregates()

    def test_head_predicates(self):
        program = parse_program("winning(M)(X) :- game(M). game(m1).")
        heads = program.head_predicates()
        assert App(Sym("winning"), (Var("M"),)) in heads
        assert Sym("game") in heads

    def test_ground_predicate_names(self):
        program = parse_program("winning(M)(X) :- game(M), M(X, Y). game(m1).")
        names = program.ground_predicate_names()
        assert Sym("game") in names
        # winning(M) and M are not ground predicate names.
        assert all(name.is_ground() for name in names)

    def test_rules_for(self):
        program = parse_program("p(a). p(b) :- q(b). q(b).")
        assert len(program.rules_for(Sym("p"))) == 2

    def test_shares_symbols_with(self):
        first = parse_program("p(a).")
        second = parse_program("q(a).")
        third = parse_program("q(b).")
        assert first.shares_symbols_with(second)
        assert not first.shares_symbols_with(third)

    def test_type_errors(self):
        with pytest.raises(TypeError):
            Program(("not a rule",))
        with pytest.raises(TypeError):
            Rule("not a term")
        with pytest.raises(TypeError):
            Rule(Sym("p"), ("not a literal",))
