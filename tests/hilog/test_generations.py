"""Tests for generation-scoped intern-table eviction
(:mod:`repro.hilog.terms`).

The invariants under test:

* terms born while no generation is open are *immortal* — no collection
  ever touches them;
* terms born inside a generation are evicted by :func:`collect_generation`
  exactly when the pin set (explicit pins + registered providers) cannot
  reach them, and rebuilding an evicted structure yields a fresh canonical
  object (the identity invariant ``a == b`` iff ``a is b`` holds for every
  term still reachable);
* pinned survivors stay in their birth pool and become evictable as soon
  as they stop being pinned;
* an application built *after* its mortal children's generation closed is
  swept together with them (generation propagation), never left dangling;
* collection refuses to run while any generation is open.
"""

import gc

import pytest

from repro.hilog import terms
from repro.hilog.errors import GenerationError
from repro.hilog.parser import parse_term
from repro.hilog.terms import (
    App,
    Num,
    Sym,
    Var,
    begin_generation,
    collect_generation,
    current_generation,
    end_generation,
    intern_generation,
    intern_generation_sizes,
    intern_table_sizes,
    register_flush_hook,
    register_pin_provider,
    unregister_flush_hook,
    unregister_pin_provider,
)


def _total():
    return sum(intern_table_sizes().values())


def _interned(term):
    """Whether ``term`` is still the canonical interned object."""
    if type(term) is App:
        return terms._APP_INTERN.get((term.name,) + term.args) is term
    if type(term) is Num:
        return terms._NUM_INTERN.get(term.value) is term
    if type(term) is Var:
        return terms._VAR_INTERN.get(term.name) is term
    return terms._SYM_INTERN.get(term.name) is term


class TestGenerationLifecycle:
    def test_begin_end_nesting(self):
        assert current_generation() == 0
        outer = begin_generation()
        assert current_generation() == outer
        inner = begin_generation()
        assert current_generation() == inner
        end_generation(inner)
        assert current_generation() == outer
        end_generation(outer)
        assert current_generation() == 0

    def test_end_closes_younger_generations_too(self):
        outer = begin_generation()
        begin_generation()
        end_generation(outer)
        assert current_generation() == 0

    def test_end_unopened_generation_raises(self):
        with pytest.raises(GenerationError):
            end_generation(10 ** 9)

    def test_collect_while_open_raises(self):
        gen = begin_generation()
        try:
            with pytest.raises(GenerationError):
                collect_generation()
        finally:
            end_generation(gen)
        collect_generation()  # fine once closed

    def test_context_manager(self):
        with intern_generation() as gen:
            assert current_generation() == gen
            fresh = Sym("ctx_fresh_sym_1")
        assert current_generation() == 0
        collect_generation()
        assert not _interned(fresh)


class TestEviction:
    def test_immortal_terms_survive_collection(self):
        immortal = parse_term("immortal_fact(c1, 42)")
        collect_generation()
        assert _interned(immortal)
        assert _interned(immortal.name)

    def test_unpinned_generation_terms_are_evicted(self):
        with intern_generation():
            transient = parse_term("gen_fact(fresh_c17, 99991)")
        before = _total()
        stats = collect_generation()
        # The application, the fresh symbols and the fresh number all go
        # (shared pre-existing structure, if any, stays).
        assert stats["evicted_total"] >= 3
        assert _total() < before
        assert not _interned(transient)

    def test_rebuilt_after_eviction_is_fresh_canonical_object(self):
        with intern_generation():
            old = parse_term("rebuildable(x_c1)")
        collect_generation()
        new = parse_term("rebuildable(x_c1)")
        assert new is not old
        assert hash(new) == hash(old)  # deterministic structural formula
        assert _interned(new)
        # ... and the new object is now the canonical one for everybody.
        assert parse_term("rebuildable(x_c1)") is new

    def test_pins_keep_whole_subterm_closure(self):
        with intern_generation():
            kept = parse_term("pin_root(pin_child(pin_leaf), 424243)")
        collect_generation(pins=[kept])
        assert _interned(kept)
        assert _interned(kept.args[0])
        assert _interned(kept.args[0].args[0])
        assert _interned(kept.args[1])
        # reparse finds the very same objects
        assert parse_term("pin_root(pin_child(pin_leaf), 424243)") is kept

    def test_survivors_are_evicted_once_unpinned(self):
        with intern_generation():
            kept = parse_term("survivor(s_c9)")
        collect_generation(pins=[kept])
        assert _interned(kept)
        collect_generation()  # no pins this time
        assert not _interned(kept)

    def test_shared_immortal_children_are_untouched(self):
        leaf = Sym("shared_leaf")  # immortal
        with intern_generation():
            parent = App(Sym("mortal_parent_sym"), (leaf,))
        collect_generation()
        assert not _interned(parent)
        assert _interned(leaf)

    def test_app_in_younger_generation_keeps_mortal_child_sweepable(self):
        # Inside a younger open generation, an application over an older
        # mortal child records a generation at least as young as every
        # child, so one unrestricted sweep handles both atomically and
        # never leaves a dangling reference.
        with intern_generation():
            child = Sym("late_child_sym")
        with intern_generation():
            parent = App(Sym("late_parent_sym"), (child,))
        assert parent._gen >= child._gen
        collect_generation()
        assert not _interned(parent)
        assert not _interned(child)

    def test_top_level_reacquisition_promotes_to_immortal(self):
        # The documented contract: terms *obtained* while no generation is
        # open are immortal.  A cache hit on a generational twin must
        # therefore promote it (and its subterms), or a later collection
        # would evict the object behind the top-level holder's back.
        with intern_generation():
            born = parse_term("promoted(p_c1, 88321)")
        held = parse_term("promoted(p_c1, 88321)")  # top-level hit
        assert held is born
        collect_generation()  # no pins — yet the held term must survive
        assert _interned(held)
        assert _interned(held.args[0])
        assert _interned(held.args[1])
        assert parse_term("promoted(p_c1, 88321)") is held

    def test_hits_inside_generations_do_not_promote(self):
        # Promotion is a top-level-only courtesy: re-obtaining a mortal
        # term inside a generation keeps it sweepable, or session churn
        # (whose parses all run inside generations) could never reclaim
        # recurring constants after retraction.
        with intern_generation():
            born = parse_term("unpromoted(u_c1)")
        with intern_generation():
            again = parse_term("unpromoted(u_c1)")
        assert again is born
        collect_generation()
        assert not _interned(born)

    def test_fresh_variables_and_their_apps_stay_out_of_the_tables(self):
        from repro.hilog.terms import fresh_var

        anon = fresh_var("_AnonT_1")
        wrapped = App(Sym("fresh_wrap"), (anon,))
        assert not _interned(wrapped)
        # Identity-distinct even from a same-named interned variable.
        named = Var("_AnonT_1")
        assert named is not anon and named != anon
        # Building over the same fresh var twice gives two objects.
        assert App(Sym("fresh_wrap"), (anon,)) is not wrapped

    def test_collect_specific_generations_only(self):
        with intern_generation() as first:
            a = Sym("gen_specific_a")
        with intern_generation():
            b = Sym("gen_specific_b")
        collect_generation(generations=[first])
        assert not _interned(a)
        assert _interned(b)
        collect_generation()
        assert not _interned(b)

    def test_restricted_sweep_keeps_other_generations_references(self):
        # A non-swept generation's App may reference a swept generation's
        # child; the restricted sweep must treat surviving pools as roots
        # or the App would be left dangling (and the child's identity
        # split on rebuild).
        with intern_generation() as first:
            child = Sym("cross_gen_child")
        with intern_generation() as second:
            parent = App(Sym("cross_gen_parent"), (child,))
        collect_generation(generations=[first])
        assert _interned(child)
        assert _interned(parent)
        # Probe identity from inside a generation (a top-level probe would
        # promote the pair to immortal — the documented top-level promise).
        with intern_generation():
            assert App(Sym("cross_gen_parent"), (Sym("cross_gen_child"),)) is parent
        collect_generation()  # unrestricted: both evictable together now
        assert not _interned(child)
        assert not _interned(parent)

    def test_top_level_app_over_mortal_children_is_immortal(self):
        # Building at top level over a generational child promotes the
        # child and interns the application immortally — the same promise
        # the intern-hit path honors.
        with intern_generation():
            atom = parse_term("handed_out(h_c1)")
        wrapper = App(Sym("audit_wrap"), (atom,))
        assert wrapper._gen == 0
        collect_generation()
        assert _interned(wrapper)
        assert _interned(atom)
        assert App(Sym("audit_wrap"), (atom,)) is wrapper


class TestAccounting:
    def test_generation_sizes_track_births_and_eviction(self):
        with intern_generation() as gen:
            kept = Sym("acct_kept")
            Sym("acct_dropped")
        sizes = intern_generation_sizes()
        assert sizes[gen] == 2
        collect_generation(pins=[kept])
        sizes = intern_generation_sizes()
        assert sizes.get(gen, 0) == 1
        collect_generation()
        assert gen not in intern_generation_sizes()

    def test_generation_sizes_sum_to_table_sizes(self):
        with intern_generation():
            parse_term("sumcheck(a1, b2, 77321)")
        assert sum(intern_generation_sizes().values()) == _total()
        collect_generation()
        assert sum(intern_generation_sizes().values()) == _total()


class TestRegistries:
    def test_pin_provider_guards_and_unregisters(self):
        held = []

        def provider():
            return list(held)

        handle = register_pin_provider(provider)
        try:
            with intern_generation():
                held.append(parse_term("provider_kept(p_c3)"))
            collect_generation()
            assert _interned(held[0])
            kept = held.pop()
            collect_generation()
            assert not _interned(kept)
        finally:
            unregister_pin_provider(handle)

    def test_dead_provider_is_dropped(self):
        with intern_generation():
            doomed = Sym("weak_provider_sym")

        def provider():
            return [doomed]

        register_pin_provider(provider)
        del provider
        gc.collect()
        collect_generation()
        assert not _interned(doomed)

    def test_flush_hooks_run_before_sweep(self):
        cache = {}

        def flush():
            cache.clear()

        handle = register_flush_hook(flush)
        try:
            with intern_generation():
                cache["k"] = parse_term("flush_hook_atom(f_c5)")
            collect_generation()
            assert cache == {}
        finally:
            unregister_flush_hook(handle)
