"""Metrics registry: counters/gauges/histograms, families, exposition."""

import threading
import weakref

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    NULL_METRIC,
    MetricsRegistry,
    get_registry,
    parse_prometheus_text,
    set_default_registry,
    use_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("reqs", "requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("reqs").inc(-1)

    def test_get_or_create_is_stable(self, registry):
        assert registry.counter("reqs") is registry.counter("reqs")

    def test_labels_are_distinct_series(self, registry):
        a = registry.counter("reqs", labels={"endpoint": "/a"})
        b = registry.counter("reqs", labels={"endpoint": "/b"})
        assert a is not b
        a.inc()
        assert a.value == 1 and b.value == 0

    def test_kind_mismatch_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 11

    def test_callback_wins_over_set(self, registry):
        gauge = registry.gauge("depth", callback=lambda: 42)
        gauge.set(5)
        assert gauge.value == 42

    def test_failing_callback_degrades_to_last_set(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.set_callback(lambda: 1 / 0)
        assert gauge.value == 7

    def test_reregistration_repoints_callback(self, registry):
        registry.gauge("depth", callback=lambda: 1)
        gauge = registry.gauge("depth", callback=lambda: 2)
        assert gauge.value == 2

    def test_weakref_callback_pattern_releases_owner(self, registry):
        class Owner:
            def depth(self):
                return 3

        owner = Owner()
        ref = weakref.ref(owner)

        def callback(ref=ref):
            target = ref()
            return 0 if target is None else target.depth()

        gauge = registry.gauge("depth", callback=callback)
        assert gauge.value == 3
        del owner
        assert ref() is None  # the registry holds no strong reference
        assert gauge.value == 0


class TestHistogram:
    def test_observe_and_summary(self, registry):
        histogram = registry.histogram("lat")
        for value in (0.001, 0.002, 0.004, 0.1):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(0.107)
        assert 0.001 <= summary["p50"] <= 0.01
        assert summary["p99"] >= summary["p50"]

    def test_empty_quantile_is_none(self, registry):
        assert registry.histogram("lat").quantile(0.5) is None

    def test_overflow_clamps_to_top_bucket(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == 2.0

    def test_count_buckets_cover_batch_sizes(self, registry):
        histogram = registry.histogram("batch", buckets=COUNT_BUCKETS)
        for size in (1, 3, 1000, 100000):
            histogram.observe(size)
        assert histogram.count == 4

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(2.0, 1.0))

    def test_default_buckets_span_micro_to_minutes(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 100

    def test_memory_is_bounded(self, registry):
        histogram = registry.histogram("lat")
        for i in range(10000):
            histogram.observe(i * 1e-5)
        assert len(histogram._counts) == len(DEFAULT_BUCKETS) + 1


class TestFamilies:
    def test_disabled_family_returns_null_metric(self, registry):
        registry.disable("http")
        assert registry.counter("reqs", family="http") is NULL_METRIC
        assert registry.histogram("lat", family="http") is NULL_METRIC
        assert registry.gauge("depth", family="http") is NULL_METRIC
        # and the null metric absorbs the whole mutation surface
        NULL_METRIC.inc()
        NULL_METRIC.observe(1.0)
        NULL_METRIC.set(2)
        NULL_METRIC.dec()

    def test_reenable_restores_real_metrics(self, registry):
        registry.disable("http")
        registry.enable("http")
        assert registry.counter("reqs", family="http") is not NULL_METRIC
        assert registry.enabled("http")

    def test_disabled_family_hidden_from_snapshot(self, registry):
        registry.counter("reqs", family="http").inc()
        registry.counter("ups", family="session").inc()
        registry.disable("http")
        snapshot = registry.snapshot()
        assert "ups" in snapshot and "reqs" not in snapshot


class TestSnapshot:
    def test_labels_rendered_into_key(self, registry):
        registry.counter("reqs", labels={"endpoint": "/q"}).inc(2)
        assert registry.snapshot() == {'reqs{endpoint="/q"}': 2}

    def test_histogram_snapshots_as_summary(self, registry):
        registry.histogram("lat").observe(0.5)
        summary = registry.snapshot()["lat"]
        assert summary["count"] == 1


class TestExposition:
    def test_render_parse_roundtrip(self, registry):
        registry.counter("repro_reqs", "requests",
                         labels={"endpoint": "/q", "status": "200"}).inc(3)
        registry.gauge("repro_depth", "queue depth").set(2)
        histogram = registry.histogram("repro_lat", "latency")
        for value in (0.001, 0.01, 5.0, 1000.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        parsed = parse_prometheus_text(text)
        assert parsed["repro_reqs_total"] == [
            ({"endpoint": "/q", "status": "200"}, 3.0)
        ]
        assert parsed["repro_depth"] == [({}, 2.0)]
        count = parsed["repro_lat_count"]
        assert count == [({}, 4.0)]
        inf_buckets = [v for labels, v in parsed["repro_lat_bucket"]
                       if labels["le"] == "+Inf"]
        assert inf_buckets == [4.0]

    def test_counter_total_suffix_not_doubled(self, registry):
        registry.counter("repro_hits_total").inc()
        text = registry.render_prometheus()
        assert "repro_hits_total 1" in text
        assert "repro_hits_total_total" not in text

    def test_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        parsed = parse_prometheus_text(registry.render_prometheus())
        by_le = {labels["le"]: v for labels, v in parsed["lat_bucket"]}
        assert by_le == {"1": 1.0, "2": 2.0, "4": 3.0, "+Inf": 3.0}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all!")

    def test_parser_rejects_decreasing_buckets(self):
        bad = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 5\n'
            'lat_bucket{le="2"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 1\nlat_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_parser_requires_inf_bucket(self):
        bad = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 5\n'
            "lat_sum 1\nlat_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_label_escaping_survives_roundtrip(self, registry):
        registry.counter("c", labels={"path": 'a"b\\c'}).inc()
        parsed = parse_prometheus_text(registry.render_prometheus())
        # The parser keeps escapes verbatim; the raw text must stay one
        # well-formed sample either way.
        assert len(parsed["c_total"]) == 1


class TestRegistryResolution:
    def test_contextvar_override(self):
        scoped = MetricsRegistry()
        default = get_registry()
        with use_registry(scoped):
            assert get_registry() is scoped
        assert get_registry() is default

    def test_set_default_registry_roundtrip(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_default_registry(previous)
        assert get_registry() is previous

    def test_background_thread_sees_process_default(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        seen = []
        try:
            thread = threading.Thread(
                target=lambda: seen.append(get_registry()))
            thread.start()
            thread.join()
        finally:
            set_default_registry(previous)
        assert seen == [fresh]


def test_concurrent_increments_do_not_lose_counts(registry):
    counter = registry.counter("c")
    histogram = registry.histogram("h")

    def work():
        for _ in range(1000):
            counter.inc()
            histogram.observe(0.01)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 4000
    assert histogram.count == 4000
