"""Derivation-provenance explain: trees re-verify, witnesses close loops."""

import pytest

from repro.db import DatabaseSession
from repro.hilog.parser import parse_program, parse_term
from repro.hilog.pretty import format_term
from repro.obs.explain import (
    Derivation,
    ExplainError,
    explain_atom,
    verify_derivation,
)

TC = """
    e(n0, n1). e(n1, n2). e(n2, n3).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

GAME = """
    winning(X) :- move(X, Y), not winning(Y).
    move(a, b). move(b, a).    % 2-cycle: undefined
    move(c, a).                % enters the cycle: undefined
    move(n0, n1). move(n1, n2).% line: n1 wins, n0 and n2 lose
"""


def _session_explain(session, text):
    tree = session.explain(text)
    assert verify_derivation(tree, session.store, edb=session.edb(),
                             undefined=session.undefined)
    return tree


class TestTrueAtoms:
    def test_edb_fact_is_a_leaf(self):
        session = DatabaseSession(TC)
        tree = _session_explain(session, "e(n0, n1)")
        assert tree.kind == "edb" and not tree.children
        assert tree.meta["support"] == 1

    def test_derived_atom_recurses_to_edb(self):
        session = DatabaseSession(TC)
        tree = _session_explain(session, "tc(n0, n3)")
        assert tree.kind == "rule"
        # n0->n3 takes three hops: depth tracks the chain.
        assert tree.depth() == 4
        leaves = []

        def collect(node):
            if not node.children:
                leaves.append(node)
            for child in node.children:
                collect(child)

        collect(tree)
        assert all(leaf.kind == "edb" for leaf in leaves)
        assert [format_term(leaf.atom) for leaf in leaves] == [
            "e(n0, n1)", "e(n1, n2)", "e(n2, n3)",
        ]

    def test_trees_stay_valid_after_updates(self):
        session = DatabaseSession(TC)
        session.insert("e(n3, n4).")
        _session_explain(session, "tc(n0, n4)")
        session.retract("e(n1, n2).")
        tree = session.explain("tc(n0, n4)")
        assert tree.kind == "false"

    def test_chain_200_explains_and_verifies(self):
        edges = " ".join("e(n%d, n%d)." % (i, i + 1) for i in range(200))
        session = DatabaseSession(edges + """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        """)
        tree = _session_explain(session, "tc(n0, n200)")
        # 200 hops: one rule node per hop plus one EDB leaf per hop.
        assert tree.depth() == 201
        assert tree.size() == 400

    def test_negation_leaf_in_stratified_program(self):
        session = DatabaseSession("""
            node(a). node(b). edge(a, b).
            isolated(X) :- node(X), not connected(X).
            connected(X) :- edge(X, Y).
            connected(Y) :- edge(X, Y).
        """)
        tree = _session_explain(session, "isolated(a)")
        # 'a' has an outgoing edge, so it is connected, not isolated.
        assert tree.kind == "false"

    def test_builtin_leaf(self):
        session = DatabaseSession("""
            n(1). n(2). n(3).
            big(X) :- n(X), X > 1.
        """)
        tree = _session_explain(session, "big(2)")
        kinds = [child.kind for child in tree.children]
        assert kinds == ["edb", "builtin"]


class TestFalseAndErrors:
    def test_false_atom(self):
        session = DatabaseSession(TC)
        tree = _session_explain(session, "tc(n3, n0)")
        assert tree.kind == "false" and not tree.children

    def test_nonground_atom_rejected(self):
        program = parse_program(TC)
        from repro.engine.seminaive import seminaive_evaluate

        result = seminaive_evaluate(program)
        with pytest.raises(ExplainError):
            explain_atom(parse_term("tc(n0, X)"), program, result.store)

    def test_session_rejects_non_atom_text(self):
        from repro.hilog.errors import ParseError

        session = DatabaseSession(TC)
        with pytest.raises((ExplainError, ParseError)):
            session.explain("tc(n0, n1) :- e(n0, n1)")


class TestUndefinedAtoms:
    def test_loop_witness_closes_the_cycle(self):
        session = DatabaseSession(GAME)
        assert session.value("winning(a)") == "undefined"
        tree = _session_explain(session, "winning(a)")
        assert tree.kind == "undefined" and tree.rule is not None

        def find_loop(node):
            if node.kind == "loop":
                return node
            for child in node.children:
                found = find_loop(child)
                if found is not None:
                    return found
            return None

        loop = find_loop(tree)
        assert loop is not None
        cycle = loop.meta["cycle"]
        assert cycle[0] == cycle[-1]
        assert set(cycle) <= {"winning(a)", "winning(b)"}

    def test_chain_into_cycle(self):
        session = DatabaseSession(GAME)
        assert session.value("winning(c)") == "undefined"
        tree = _session_explain(session, "winning(c)")
        assert tree.kind == "undefined"

    def test_true_atoms_in_three_valued_model_still_explain(self):
        session = DatabaseSession(GAME)
        tree = _session_explain(session, "winning(n1)")
        assert tree.kind == "rule"
        assert [child.kind for child in tree.children] == [
            "edb", "negation",
        ]


class TestVerifier:
    def test_rejects_fabricated_edb(self):
        session = DatabaseSession(TC)
        fake = Derivation(parse_term("e(n9, n9)"), "edb")
        with pytest.raises(ExplainError):
            verify_derivation(fake, session.store, edb=session.edb())

    def test_rejects_wrong_rule_instance(self):
        session = DatabaseSession(TC)
        tree = session.explain("tc(n0, n2)")
        # Re-point the root at an atom its instance does not derive.
        forged = Derivation(parse_term("tc(n0, n3)"), "rule",
                            rule=tree.rule, children=tree.children)
        with pytest.raises(ExplainError):
            verify_derivation(forged, session.store, edb=session.edb())

    def test_rejects_loop_that_does_not_close(self):
        session = DatabaseSession(GAME)
        loop = Derivation(parse_term("winning(a)"), "loop")
        with pytest.raises(ExplainError):
            # no 'undefined' ancestor carrying winning(a) on the chain
            verify_derivation(loop, session.store, edb=session.edb(),
                              undefined=session.undefined)

    def test_rejects_false_claim_on_true_atom(self):
        session = DatabaseSession(TC)
        fake = Derivation(parse_term("tc(n0, n1)"), "false")
        with pytest.raises(ExplainError):
            verify_derivation(fake, session.store, edb=session.edb())


class TestPlumbing:
    def test_to_dict_is_json_ready(self):
        import json

        session = DatabaseSession(TC)
        payload = session.explain("tc(n0, n2)").to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["kind"] == "rule"
        assert round_tripped["atom"] == "tc(n0, n2)"
        assert "rule" in round_tripped and "children" in round_tripped

    def test_explain_without_plans_matches_session(self):
        # The low-level entry point with no maintenance plans available.
        program = parse_program(TC)
        from repro.engine.seminaive import seminaive_evaluate

        result = seminaive_evaluate(program)
        tree = explain_atom(parse_term("tc(n0, n3)"), program, result.store,
                            edb=frozenset(a for a in result.store
                                          if format_term(a).startswith("e(")))
        assert tree.kind == "rule" and tree.depth() == 4

    def test_size_and_depth(self):
        leaf = Derivation(parse_term("a"), "edb")
        root = Derivation(parse_term("b"), "rule", children=(leaf,))
        assert (root.size(), root.depth()) == (2, 2)
