"""Evaluation tracer: ring buffer, sinks, scoping, engine span hooks."""

import json
import threading

from repro.core.modular import perfect_model_for_hilog
from repro.core.semantics import well_founded_for_hilog
from repro.db import DatabaseSession
from repro.hilog.parser import parse_program
from repro.obs.trace import (
    EvaluationTracer,
    current_tracer,
    set_global_tracer,
    tracing,
)

TC = """
    e(a, b). e(b, c). e(c, d).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

GAME = """
    winning(X) :- move(X, Y), not winning(Y).
    move(a, b). move(b, a).
"""


class TestTracerCore:
    def test_emit_stamps_kind_seq_ts(self):
        tracer = EvaluationTracer()
        first = tracer.emit("stratum", added=3)
        second = tracer.emit("stratum", added=4)
        assert first["kind"] == "stratum" and first["added"] == 3
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["ts"] <= second["ts"]

    def test_ring_buffer_bounds_memory(self):
        tracer = EvaluationTracer(capacity=8)
        for i in range(100):
            tracer.emit("iteration", i=i)
        events = tracer.events()
        assert len(events) == 8
        assert [e["i"] for e in events] == list(range(92, 100))

    def test_events_filter_by_kind(self):
        tracer = EvaluationTracer()
        tracer.emit("stratum")
        tracer.emit("iteration")
        tracer.emit("stratum")
        assert len(tracer.events("stratum")) == 2
        assert len(tracer.events()) == 3

    def test_span_measures_duration_and_mutates(self):
        tracer = EvaluationTracer()
        with tracer.span("maintenance", mode="incremental") as fields:
            fields["added"] = 7
        (event,) = tracer.events("maintenance")
        assert event["mode"] == "incremental" and event["added"] == 7
        assert event["duration_s"] >= 0

    def test_clear(self):
        tracer = EvaluationTracer()
        tracer.emit("stratum")
        tracer.clear()
        assert len(tracer) == 0


class TestSink:
    def test_jsonl_sink_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = EvaluationTracer(sink=path)
        tracer.emit("stratum", added=1)
        tracer.emit("iteration", delta=2)
        tracer.close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [line["kind"] for line in lines] == ["stratum", "iteration"]

    def test_dead_sink_degrades_to_ring(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        handle = open(path, "a", encoding="utf-8")
        tracer = EvaluationTracer(sink=handle)
        handle.close()  # sink dies under the tracer
        tracer.emit("stratum")
        tracer.emit("stratum")
        assert len(tracer) == 2  # ring keeps working, no exception

    def test_close_is_idempotent(self, tmp_path):
        tracer = EvaluationTracer(sink=str(tmp_path / "t.jsonl"))
        tracer.close()
        tracer.close()


class TestScoping:
    def test_default_is_none(self):
        assert current_tracer() is None

    def test_contextvar_scope(self):
        tracer = EvaluationTracer()
        with tracing(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_global_reaches_background_threads(self):
        tracer = EvaluationTracer()
        previous = set_global_tracer(tracer)
        seen = []
        try:
            thread = threading.Thread(
                target=lambda: seen.append(current_tracer()))
            thread.start()
            thread.join()
        finally:
            set_global_tracer(previous)
        assert seen == [tracer]

    def test_contextvar_shadows_global(self):
        inner, outer = EvaluationTracer(), EvaluationTracer()
        previous = set_global_tracer(outer)
        try:
            with tracing(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        finally:
            set_global_tracer(previous)


class TestEngineSpans:
    def test_seminaive_evaluation_emits_spans(self):
        program = parse_program(TC)
        tracer = EvaluationTracer()
        with tracing(tracer):
            perfect_model_for_hilog(program, strategy="seminaive")
        kinds = {event["kind"] for event in tracer.events()}
        assert {"iteration", "stratum", "evaluate"} <= kinds
        (evaluate,) = tracer.events("evaluate")
        assert evaluate["facts"] > 0 and evaluate["duration_s"] >= 0
        stratum = tracer.events("stratum")[-1]
        assert stratum["iterations"] >= 1
        assert stratum["candidates"] >= stratum["added"]

    def test_wellfounded_emits_alternation_spans(self):
        program = parse_program(GAME)
        tracer = EvaluationTracer()
        with tracing(tracer):
            well_founded_for_hilog(program, strategy="seminaive")
        kinds = {event["kind"] for event in tracer.events()}
        assert {"alternation", "wellfounded"} <= kinds
        (summary,) = tracer.events("wellfounded")
        assert summary["undefined"] == 2
        assert summary["alternations"] >= 1

    def test_untraced_evaluation_emits_nothing(self):
        tracer = EvaluationTracer()
        perfect_model_for_hilog(parse_program(TC), strategy="seminaive")
        assert len(tracer) == 0

    def test_session_updates_emit_maintenance_spans(self):
        session = DatabaseSession(TC)
        tracer = EvaluationTracer()
        with tracing(tracer):
            session.insert("e(d, f).")
            session.retract("e(d, f).")
        maintenance = tracer.events("maintenance")
        assert len(maintenance) == 2
        assert maintenance[0]["inserted"] == 1
        assert maintenance[0]["mode"] == session.mode
        assert maintenance[1]["retracted"] == 1
        assert all(event["duration_s"] >= 0 for event in maintenance)
