"""Tests for aggregate subgoal evaluation."""

import pytest

from repro.engine.aggregates import evaluate_aggregate, group_variables
from repro.hilog.errors import EvaluationError
from repro.hilog.parser import parse_rule, parse_term
from repro.hilog.subst import Substitution
from repro.hilog.terms import Num, Sym, Var


def make_rule():
    return parse_rule("contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, Z, P)).")


ATOMS = [
    parse_term("in(bike, bicycle, spoke, wheel, 94)"),
    parse_term("in(bike, bicycle, wheel, null, 2)"),
    parse_term("in(bike, wheel, spoke, null, 47)"),
    parse_term("in(bike, bicycle, spoke, other, 6)"),
]


class TestGroupVariables:
    def test_parts_explosion_grouping(self):
        rule = make_rule()
        spec = rule.aggregates[0]
        # Grouped by Mach, X, Y exactly as the paper states; P (the value) and
        # Z (appears nowhere else) are not grouping variables.
        assert group_variables(spec, rule) == {Var("Mach"), Var("X"), Var("Y")}


class TestEvaluateAggregate:
    def test_sum_groups(self):
        rule = make_rule()
        spec = rule.aggregates[0]
        results = evaluate_aggregate(spec, Substitution(), ATOMS,
                                     group_vars=group_variables(spec, rule))
        summary = {}
        for subst in results:
            key = (subst.apply(Var("X")), subst.apply(Var("Y")))
            summary[key] = subst.apply(Var("N"))
        assert summary[(Sym("bicycle"), Sym("spoke"))] == Num(100)
        assert summary[(Sym("bicycle"), Sym("wheel"))] == Num(2)
        assert summary[(Sym("wheel"), Sym("spoke"))] == Num(47)

    def test_sum_with_bound_group(self):
        rule = make_rule()
        spec = rule.aggregates[0]
        subst = Substitution({Var("X"): Sym("bicycle"), Var("Y"): Sym("spoke"),
                              Var("Mach"): Sym("bike")})
        results = evaluate_aggregate(spec, subst, ATOMS,
                                     group_vars=group_variables(spec, rule))
        assert len(results) == 1
        assert results[0].apply(Var("N")) == Num(100)

    def test_empty_group_yields_nothing(self):
        rule = make_rule()
        spec = rule.aggregates[0]
        subst = Substitution({Var("X"): Sym("nonexistent")})
        assert evaluate_aggregate(spec, subst, ATOMS,
                                  group_vars=group_variables(spec, rule)) == []

    def test_count_min_max(self):
        rule = parse_rule("s(X, N) :- N = count(P : q(X, P)).")
        spec = rule.aggregates[0]
        atoms = [parse_term("q(a, 5)"), parse_term("q(a, 7)"), parse_term("q(b, 1)")]
        results = evaluate_aggregate(spec, Substitution(), atoms,
                                     group_vars=group_variables(spec, rule))
        counts = {subst.apply(Var("X")): subst.apply(Var("N")) for subst in results}
        assert counts[Sym("a")] == Num(2)
        assert counts[Sym("b")] == Num(1)

        rule_min = parse_rule("s(X, N) :- N = min(P : q(X, P)).")
        results_min = evaluate_aggregate(rule_min.aggregates[0], Substitution(), atoms,
                                         group_vars=group_variables(rule_min.aggregates[0], rule_min))
        minima = {subst.apply(Var("X")): subst.apply(Var("N")) for subst in results_min}
        assert minima[Sym("a")] == Num(5)

        rule_max = parse_rule("s(X, N) :- N = max(P : q(X, P)).")
        results_max = evaluate_aggregate(rule_max.aggregates[0], Substitution(), atoms,
                                         group_vars=group_variables(rule_max.aggregates[0], rule_max))
        maxima = {subst.apply(Var("X")): subst.apply(Var("N")) for subst in results_max}
        assert maxima[Sym("a")] == Num(7)

    def test_bound_result_acts_as_filter(self):
        rule = parse_rule("s(X) :- 2 = count(P : q(X, P)).")
        spec = rule.aggregates[0]
        atoms = [parse_term("q(a, 5)"), parse_term("q(a, 7)"), parse_term("q(b, 1)")]
        results = evaluate_aggregate(spec, Substitution(), atoms,
                                     group_vars=group_variables(spec, rule))
        values = {subst.apply(Var("X")) for subst in results}
        assert values == {Sym("a")}

    def test_non_numeric_value_raises(self):
        rule = parse_rule("s(N) :- N = sum(P : q(P)).")
        spec = rule.aggregates[0]
        with pytest.raises(EvaluationError):
            evaluate_aggregate(spec, Substitution(), [parse_term("q(abc)")],
                               group_vars=set())
