"""Differential-testing harness for the well-founded semantics.

Three independent implementations of the well-founded model are compared
atom-for-atom on random *non-stratified* normal programs (controlled
negation cycles, :func:`repro.workloads.random_programs.random_nonstratified_program`):

* the semi-naive alternating fixpoint on the register machine
  (:func:`repro.engine.seminaive.seminaive_well_founded`) — the fast path
  this harness exists to keep honest;
* the ground alternating fixpoint (``engine="alternating"``) over the
  relevance-grounded program;
* the paper-faithful ``W_P`` iteration (``engine="wp"``, Definitions
  3.3–3.5) over the same ground program.

On every sample all three must agree on the full true/undefined/false
partition (the ground engines' larger atom bases only add false atoms, so
equal true and undefined sets mean agreement on every atom).  The sampler
is biased so a sizable fraction of samples have genuinely three-valued
models — totals alone would leave the undefined bookkeeping untested.

Each hypothesis example runs inside the ``isolate_example`` fixture
(``tests/conftest.py``): execution counters reset per example and the
example's terms are generation-scoped and swept, so hundreds of random
programs cannot cross-contaminate counters or intern tables.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.modular import perfect_model_for_hilog
from repro.core.semantics import well_founded_for_hilog
from repro.engine.grounding import relevant_ground_program
from repro.engine.seminaive import SeminaiveUnsupported, seminaive_well_founded
from repro.engine.wellfounded import well_founded_model
from repro.hilog.errors import GroundingError, StratificationError
from repro.workloads.random_programs import (
    random_nonstratified_program,
    random_range_restricted_program,
)

#: Sample shapes: (predicates, constants, facts, rules, max body, cycle len).
#: Mirrors (and exceeds) the shape x seed coverage of the existing
#: seminaive agreement suite, but over the non-stratified class.
SHAPES = [
    (3, 3, 6, 4, 3, 2),
    (4, 3, 8, 5, 3, 2),
    (4, 4, 10, 6, 3, 3),
    (5, 3, 8, 7, 2, 4),
    (3, 2, 4, 3, 2, 1),
]


def _sample(shape, seed):
    n_predicates, n_constants, n_facts, n_rules, max_body, cycle_length = shape
    return random_nonstratified_program(
        n_predicates=n_predicates,
        n_constants=n_constants,
        n_facts=n_facts,
        n_rules=n_rules,
        max_body=max_body,
        cycle_length=cycle_length,
        seed=seed,
    )


def _assert_three_way_agreement(program):
    """seminaive WFS ≡ ground alternating ≡ W_P on true/undefined/false."""
    try:
        seminaive = seminaive_well_founded(program)
    except (SeminaiveUnsupported, GroundingError):
        # Outside the semi-naive class (or over the caps): the entry-point
        # fallback must still answer through the grounding oracle.
        fallback = well_founded_for_hilog(program, strategy="seminaive")
        oracle = well_founded_for_hilog(program)
        assert fallback.true == oracle.true
        assert fallback.undefined == oracle.undefined
        return None
    ground = relevant_ground_program(program)
    alternating = well_founded_model(ground, engine="alternating")
    wp = well_founded_model(ground, engine="wp")
    # The two ground engines agree with each other...
    assert alternating.true == wp.true
    assert alternating.false == wp.false
    # ...and the register-machine alternation matches their partition.
    assert seminaive.true == alternating.true
    assert seminaive.undefined == alternating.undefined
    # Everything the seminaive run never materialized is false by closed
    # world — so it must not be true/undefined in the ground base either.
    assert alternating.undefined <= seminaive.true | seminaive.undefined
    return seminaive


@pytest.mark.parametrize("shape", SHAPES, ids=[str(s) for s in SHAPES])
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_wellfounded_engines_agree_on_nonstratified_programs(
        shape, seed, isolate_example):
    with isolate_example():
        _assert_three_way_agreement(_sample(shape, seed))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_wellfounded_engines_agree_on_free_negation_programs(
        seed, isolate_example):
    """The unconstrained free-negation sampler, for shapes the cycle-seeded
    generator cannot produce."""
    with isolate_example():
        program = random_range_restricted_program(
            n_predicates=4, n_constants=3, n_facts=8, n_rules=6,
            max_body=3, negation="free", seed=seed,
        )
        _assert_three_way_agreement(program)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_partial_models_refute_modular_stratification(seed, isolate_example):
    """Theorem 6.1 differentially: whenever the semi-naive well-founded
    model is partial, both strategies of ``perfect_model_for_hilog`` must
    reject the program (and the seminaive strategy must reject it without
    grounding — this is its fast negative verdict)."""
    with isolate_example():
        program = _sample(SHAPES[1], seed)
        try:
            result = seminaive_well_founded(program)
        except (SeminaiveUnsupported, GroundingError):
            return
        if result.is_total():
            return
        with pytest.raises(StratificationError):
            perfect_model_for_hilog(program, strategy="seminaive")
        with pytest.raises(StratificationError):
            perfect_model_for_hilog(program)


def test_sampler_produces_partial_models():
    """The differential harness is only as good as its sampler: a healthy
    fraction of samples must have genuinely three-valued models."""
    partial = 0
    for seed in range(40):
        try:
            result = seminaive_well_founded(_sample(SHAPES[0], seed))
        except (SeminaiveUnsupported, GroundingError):
            continue
        if not result.is_total():
            partial += 1
    assert partial >= 4
