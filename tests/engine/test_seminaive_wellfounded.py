"""Unit tests for the semi-naive alternating-fixpoint well-founded evaluator.

Exact true/undefined partitions on the known game shapes — even and odd
cycles (all undefined), lines (alternating, total), lines feeding into
cycles (undefinedness propagates up), cycles with escapes (total again) —
plus the Example 6.3 parameterized games, strata mixing, resource caps and
the ``strategy="seminaive"`` wiring of ``well_founded_for_hilog``.
"""

import pytest

from repro.core.semantics import hilog_well_founded_model, well_founded_for_hilog
from repro.engine.seminaive import (
    SeminaiveUnsupported,
    seminaive_evaluate,
    seminaive_well_founded,
    seminaive_well_founded_detailed,
    stratify_program,
)
from repro.hilog.errors import GroundingError
from repro.hilog.parser import parse_program, parse_term
from repro.workloads.games import (
    composed_move_game_program,
    cycle_game_program,
    cycle_with_escape_game_program,
    datahilog_game_program,
    hilog_game_program,
    line_into_cycle_game_program,
    normal_game_program,
    two_hop_moves,
    win_move_partition,
)
from repro.workloads.graphs import chain_edges, cycle_edges, random_graph_edges


def _winning_partition(result, winning_name="winning"):
    """(true, undefined) node-name sets of the ``winning`` atoms."""
    def nodes(atoms):
        return {
            repr(atom.args[0])
            for atom in atoms
            if repr(atom).startswith(winning_name + "(")
        }
    return nodes(result.true), nodes(result.undefined)


class TestKnownUndefinedSets:
    @pytest.mark.parametrize("length", [2, 3, 4, 5, 8])
    def test_pure_cycles_are_fully_undefined(self, length):
        # Even *and* odd cycles: no sink means nothing is certainly losing,
        # so the well-founded model leaves every position undefined (parity
        # distinguishes the stable models, not the well-founded one).
        program, nodes = cycle_game_program(length)
        result = seminaive_well_founded(program)
        true, undefined = _winning_partition(result)
        assert true == set()
        assert undefined == set(nodes)
        assert not result.is_total()
        assert result.alternations >= 1

    def test_line_alternates_and_is_total(self):
        program = normal_game_program(chain_edges(6))
        result = seminaive_well_founded(program)
        true, undefined = _winning_partition(result)
        assert undefined == set()
        assert result.is_total()
        # n6 is the sink (loses), so the odd positions win the parity game.
        assert true == {"n1", "n3", "n5"}

    def test_line_into_cycle_is_fully_undefined(self):
        # Each line position's only move leads toward the cycle, so the
        # cycle's undefinedness propagates back up the entire line.
        program, line_nodes, cycle_nodes = line_into_cycle_game_program(4, 4)
        result = seminaive_well_founded(program)
        true, undefined = _winning_partition(result)
        assert true == set()
        assert undefined == set(line_nodes) | set(cycle_nodes)

    def test_cycle_with_escape_is_total(self):
        program, nodes = cycle_with_escape_game_program(2, escape_from=1)
        result = seminaive_well_founded(program)
        true, undefined = _winning_partition(result)
        assert undefined == set()
        # c1 escapes to the sink and wins; c0's only move reaches a winner.
        assert true == {"'c1'"} or true == {"c1"}
        assert result.is_total()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cyclic_graphs_match_game_theoretic_reference(self, seed):
        edges = random_graph_edges(14, 26, seed=seed)
        program = normal_game_program(edges)
        result = seminaive_well_founded(program)
        winning, _losing, undefined = win_move_partition(edges)
        true_nodes, undefined_nodes = _winning_partition(result)
        assert true_nodes == set(winning)
        assert undefined_nodes == set(undefined)

    def test_composed_move_game_matches_reference(self):
        edges = cycle_edges(6) + [("c1", "x"), ("x", "y")]
        program = composed_move_game_program(edges)
        result = seminaive_well_founded(program)
        moves = two_hop_moves(edges)
        winning, _losing, undefined = win_move_partition(sorted(moves))
        true_nodes, undefined_nodes = _winning_partition(result)
        assert true_nodes == set(winning)
        assert undefined_nodes == set(undefined)
        # The derived move relation itself is certain (a stratified stratum).
        assert {a for a in result.undefined if repr(a).startswith("move(")} == set()


class TestParameterizedGames:
    """Example 6.3's games have variable predicate names inside negation —
    outside the semi-naive class — so ``strategy="seminaive"`` must fall
    back to the grounding oracle and agree with it exactly."""

    GAMES = {"m1": cycle_edges(3, "a"), "m2": chain_edges(3, "b")}

    def test_hilog_game_falls_back_and_agrees(self):
        program = hilog_game_program(self.GAMES)
        with pytest.raises(SeminaiveUnsupported):
            seminaive_well_founded(program)
        fast = well_founded_for_hilog(program, strategy="seminaive")
        oracle = well_founded_for_hilog(program)
        assert fast.true == oracle.true
        assert fast.undefined == oracle.undefined
        # The a-cycle game is undefined, the b-line game resolves.
        assert parse_term("winning(m1)(a0)") in fast.undefined
        assert parse_term("winning(m2)(b0)") in fast.true

    def test_datahilog_game_falls_back_and_agrees(self):
        program = datahilog_game_program(self.GAMES)
        fast = well_founded_for_hilog(program, strategy="seminaive")
        oracle = well_founded_for_hilog(program)
        assert fast.true == oracle.true
        assert fast.undefined == oracle.undefined
        assert parse_term("winning(m1, a1)") in fast.undefined
        assert parse_term("winning(m2, b0)") in fast.true


class TestStrataMixing:
    def test_stratified_stratum_above_undefined_atoms(self):
        program = parse_program("""
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, a).
            node(a). node(c).
            safe(X) :- node(X), not win(X).
            doubt(X) :- node(X), win(X).
        """)
        result = seminaive_well_founded(program)
        assert parse_term("safe(c)") in result.true        # win(c) is false
        assert parse_term("safe(a)") in result.undefined   # win(a) undefined
        assert parse_term("doubt(a)") in result.undefined  # positive reads too
        assert parse_term("doubt(c)") not in result.true | result.undefined

    def test_stratified_program_never_alternates(self):
        program = parse_program("""
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            top(X) :- e(X, Y), not tc(Y, X).
            e(a, b). e(b, c).
        """)
        result = seminaive_well_founded(program)
        assert result.alternations == 0
        assert result.is_total()
        assert result.true == seminaive_evaluate(program).true

    def test_builtins_inside_the_alternating_stratum(self):
        program = parse_program("""
            win(X) :- move(X, Y), not win(Y), X < 10.
            move(1, 2). move(2, 1). move(11, 12). move(12, 11).
        """)
        result = seminaive_well_founded(program)
        assert parse_term("win(1)") in result.undefined
        assert parse_term("win(2)") in result.undefined
        # 11/12 fail the guard in every phase: false, not undefined.
        assert parse_term("win(11)") not in result.true | result.undefined

    def test_cascaded_negation_sccs_through_undefined_moves(self):
        # Two negation-SCCs at different levels; the upper game's move
        # relation is gated by negation over the *lower* game's undefined
        # atoms, so undefinedness threads through a stratified stratum into
        # a second alternation.
        program = parse_program("""
            win1(X) :- m1(X, Y), not win1(Y).
            m1(a, b). m1(b, a). m1(c, d).
            m2(X, Y) :- bridge(X, Y), not win1(X).
            bridge(u, v). bridge(v, u). bridge(a, u).
            win2(X) :- m2(X, Y), not win2(Y).
        """)
        result = seminaive_well_founded(program)
        oracle = hilog_well_founded_model(program)
        assert result.true == oracle.true
        assert result.undefined == oracle.undefined
        # The derived move m2(a, u) itself is undefined (win1(a) is), and
        # the u/v game is undefined on its own cycle.
        assert parse_term("m2(a, u)") in result.undefined
        assert parse_term("win2(u)") in result.undefined
        assert parse_term("win1(c)") in result.true

    def test_detailed_result_uses_shared_type(self):
        program, _nodes = cycle_game_program(4)
        detailed = seminaive_well_founded_detailed(program)
        assert detailed.engine == "seminaive"
        assert detailed.alternations >= 1
        assert detailed.iterations >= detailed.alternations
        oracle = hilog_well_founded_model(program)
        assert detailed.interpretation.true == oracle.true
        assert detailed.interpretation.undefined == oracle.undefined


class TestStratifyUnstratified:
    def test_negation_scc_is_reported_not_raised(self):
        program, _nodes = cycle_game_program(3)
        with pytest.raises(SeminaiveUnsupported):
            stratify_program(program)
        stratification = stratify_program(program, allow_unstratified=True)
        assert len(stratification.unstratified) == 1
        index = next(iter(stratification.unstratified))
        heads = {repr(rule.head_predicate()) for rule in stratification.strata[index]}
        assert heads == {"winning"}

    def test_aggregation_cycle_still_raises(self):
        program = parse_program("""
            total(X, N) :- item(X), N = count(Y : total(Y, M)).
            item(a).
        """)
        with pytest.raises(SeminaiveUnsupported):
            stratify_program(program, allow_unstratified=True)

    def test_aggregation_over_undefined_atoms_raises(self):
        program = parse_program("""
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, a).
            tally(N) :- go, N = count(X : win(X)).
            go.
        """)
        with pytest.raises(SeminaiveUnsupported):
            seminaive_well_founded(program)


class TestResourceCaps:
    def test_max_facts_cap_trips(self):
        program, _nodes = cycle_game_program(30)
        with pytest.raises(GroundingError):
            seminaive_well_founded(program, max_facts=10)

    def test_non_ground_fact_rejected(self):
        program = parse_program("win(X) :- move(X, Y), not win(Y). move(a, b).")
        with pytest.raises(GroundingError):
            seminaive_well_founded(program, extra_facts=(parse_term("move(a, Z)"),))


class TestWellFoundedForHilog:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            well_founded_for_hilog(parse_program("p."), strategy="bogus")

    def test_ground_strategy_is_the_oracle(self):
        program, _nodes = cycle_game_program(4)
        oracle = well_founded_for_hilog(program)
        assert oracle.undefined == hilog_well_founded_model(program).undefined

    def test_explicit_universe_uses_the_grounding_path(self):
        # A universe override is a grounding-path concept; the seminaive
        # strategy must defer to it rather than silently ignore it.
        program = parse_program("p(X) :- q(X), not r(X). q(a).")
        constants = [parse_term("a"), parse_term("b")]
        fast = well_founded_for_hilog(
            program, strategy="seminaive", grounding="universe",
            universe=constants,
        )
        oracle = well_founded_for_hilog(
            program, grounding="universe", universe=constants,
        )
        assert fast.true == oracle.true
        assert fast.base == oracle.base
