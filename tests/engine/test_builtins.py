"""Tests for arithmetic/comparison builtins."""

import pytest

from repro.engine.builtins import (
    evaluate_arithmetic,
    evaluate_ground_builtin,
    is_arithmetic_term,
    is_builtin_atom,
    solve_builtin,
)
from repro.hilog.errors import EvaluationError
from repro.hilog.parser import parse_rule, parse_term
from repro.hilog.subst import Substitution
from repro.hilog.terms import Num, Sym, Var


def builtin(text):
    """Parse a builtin atom: the term grammar keeps comparisons at the body
    level, so we parse them through a dummy rule body."""
    return parse_rule("dummy :- %s." % text).body[0].atom


class TestArithmetic:
    def test_is_arithmetic_term(self):
        assert is_arithmetic_term(parse_term("1 + 2 * 3"))
        assert not is_arithmetic_term(parse_term("1 + X"))
        assert not is_arithmetic_term(parse_term("p(1)"))

    def test_evaluate(self):
        assert evaluate_arithmetic(parse_term("1 + 2 * 3")) == 7
        assert evaluate_arithmetic(parse_term("(1 + 2) * 3")) == 9
        assert evaluate_arithmetic(parse_term("7 / 2")) == 3
        assert evaluate_arithmetic(parse_term("7 - 10")) == -3

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            evaluate_arithmetic(parse_term("1 / 0"))

    def test_non_arithmetic_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_arithmetic(parse_term("p(1)"))


class TestGroundBuiltins:
    def test_comparisons(self):
        assert evaluate_ground_builtin(builtin("1 < 2"))
        assert not evaluate_ground_builtin(builtin("2 < 1"))
        assert evaluate_ground_builtin(builtin("2 >= 2"))
        assert evaluate_ground_builtin(builtin("2 =< 3"))
        assert evaluate_ground_builtin(builtin("3 > 1"))

    def test_equality_structural(self):
        assert evaluate_ground_builtin(builtin("a = a"))
        assert not evaluate_ground_builtin(builtin("a = b"))
        assert evaluate_ground_builtin(builtin("f(a) = f(a)"))

    def test_equality_arithmetic(self):
        assert evaluate_ground_builtin(builtin("4 = 2 + 2"))
        assert evaluate_ground_builtin(builtin("4 =:= 2 + 2"))
        assert evaluate_ground_builtin(builtin("5 =\\= 2 + 2"))

    def test_disequality(self):
        assert evaluate_ground_builtin(builtin("a \\= b"))
        assert not evaluate_ground_builtin(builtin("a \\= a"))

    def test_is(self):
        assert evaluate_ground_builtin(builtin("6 is 2 * 3"))
        assert not evaluate_ground_builtin(builtin("7 is 2 * 3"))

    def test_is_builtin_atom(self):
        assert is_builtin_atom(builtin("X < Y"))
        assert not is_builtin_atom(parse_term("p(X, Y)"))

    def test_comparison_on_symbols_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_ground_builtin(builtin("a < b"))


class TestSolveBuiltin:
    def test_is_binds_left(self):
        solutions = solve_builtin(builtin("N is 2 * 21"), Substitution())
        assert len(solutions) == 1
        assert solutions[0].apply(Var("N")) == Num(42)

    def test_equality_binds_left_to_term(self):
        solutions = solve_builtin(builtin("X = f(a)"), Substitution())
        assert solutions[0].apply(Var("X")) == parse_term("f(a)")

    def test_equality_binds_left_to_number(self):
        solutions = solve_builtin(builtin("X = 2 + 3"), Substitution())
        assert solutions[0].apply(Var("X")) == Num(5)

    def test_equality_binds_right(self):
        solutions = solve_builtin(builtin("f(a) = X"), Substitution())
        assert solutions[0].apply(Var("X")) == parse_term("f(a)")

    def test_ground_check(self):
        assert solve_builtin(builtin("1 < 2"), Substitution()) != []
        assert solve_builtin(builtin("2 < 1"), Substitution()) == []

    def test_uses_existing_bindings(self):
        subst = Substitution({Var("M"): Num(4)})
        solutions = solve_builtin(builtin("N is M * 2"), subst)
        assert solutions[0].apply(Var("N")) == Num(8)

    def test_unbound_comparison_raises(self):
        with pytest.raises(EvaluationError):
            solve_builtin(builtin("X < Y"), Substitution())

    def test_is_with_unbound_right_raises(self):
        with pytest.raises(EvaluationError):
            solve_builtin(builtin("N is M * 2"), Substitution())
