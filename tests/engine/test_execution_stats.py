"""Concurrency tests for ``EXECUTION_STATS``: the counters are
context-local, so parallel reader threads (the serving subsystem) never
corrupt or even observe each other's tallies."""

import threading

from repro.db import DatabaseSession
from repro.engine.seminaive.engine import EXECUTION_STATS

TC = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    e(a, b). e(b, c). e(c, d).
"""


class TestExecutionStats:
    def test_facade_preserves_single_threaded_api(self):
        EXECUTION_STATS.reset()
        assert EXECUTION_STATS.snapshot() == {
            "fetches": 0, "candidates": 0, "alternations": 0}
        EXECUTION_STATS.fetches += 2
        EXECUTION_STATS.candidates += 1
        EXECUTION_STATS.alternations += 1
        assert EXECUTION_STATS.fetches == 2
        assert EXECUTION_STATS.snapshot() == {
            "fetches": 2, "candidates": 1, "alternations": 1}
        EXECUTION_STATS.reset()
        assert EXECUTION_STATS.fetches == 0

    def test_counters_cell_is_shared_within_a_context(self):
        EXECUTION_STATS.reset()
        cell = EXECUTION_STATS.counters()
        EXECUTION_STATS.fetches += 3
        assert cell.fetches == 3  # the facade writes through to the cell

    def test_evaluation_records_fetches(self):
        EXECUTION_STATS.reset()
        DatabaseSession(TC)
        assert EXECUTION_STATS.fetches > 0

    def test_threads_get_isolated_counters(self):
        EXECUTION_STATS.reset()
        EXECUTION_STATS.fetches += 7  # main-thread tally
        seen = {}
        barrier = threading.Barrier(4, timeout=10)

        def worker(name, bump):
            # A fresh thread starts from a zeroed context-local cell.
            start = EXECUTION_STATS.fetches
            barrier.wait()
            for _ in range(bump):
                EXECUTION_STATS.fetches += 1
            barrier.wait()
            seen[name] = (start, EXECUTION_STATS.fetches)

        threads = [threading.Thread(target=worker, args=("t%d" % i, i + 1))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert seen == {"t0": (0, 1), "t1": (0, 2),
                        "t2": (0, 3), "t3": (0, 4)}
        # the main thread's tally was never touched by the workers
        assert EXECUTION_STATS.fetches == 7
        EXECUTION_STATS.reset()

    def test_parallel_sessions_do_not_interleave_counts(self):
        results = {}

        def evaluate(name):
            EXECUTION_STATS.reset()
            DatabaseSession(TC)
            results[name] = EXECUTION_STATS.snapshot()["fetches"]

        threads = [threading.Thread(target=evaluate, args=("s%d" % i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        # identical programs, isolated counters: identical deterministic tallies
        assert len(set(results.values())) == 1
        assert all(count > 0 for count in results.values())
