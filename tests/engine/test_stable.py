"""Tests for stable models (Definition 3.6 / Example 3.2)."""

import pytest

from repro.engine.grounding import ground_over_universe, relevant_ground_program
from repro.engine.stable import (
    false_in_all_stable_models,
    has_stable_model,
    is_stable_model,
    is_two_valued_wp_fixpoint,
    stable_models,
    true_in_all_stable_models,
)
from repro.engine.wellfounded import well_founded_model
from repro.hilog.errors import EvaluationError
from repro.hilog.herbrand import normal_herbrand_universe
from repro.hilog.parser import parse_program, parse_term


def ground_full(text):
    program = parse_program(text)
    return ground_over_universe(program, normal_herbrand_universe(program))


EXAMPLE_32 = "p :- not q. q :- not p. r :- p. r :- q. t :- p, not p."


class TestExample32:
    def test_two_stable_models(self):
        program = ground_full(EXAMPLE_32)
        models = stable_models(program)
        assert len(models) == 2
        true_sets = [frozenset(map(repr, model.true)) for model in models]
        assert frozenset({"p", "r"}) in true_sets
        assert frozenset({"q", "r"}) in true_sets

    def test_skeptical_entailment(self):
        # r is true in all stable models; t is false in all stable models.
        program = ground_full(EXAMPLE_32)
        assert true_in_all_stable_models(program, parse_term("r"))
        assert false_in_all_stable_models(program, parse_term("t"))
        assert not true_in_all_stable_models(program, parse_term("p"))
        assert not false_in_all_stable_models(program, parse_term("p"))

    def test_well_founded_model_all_undefined(self):
        # The paper notes the well-founded model of Example 3.2 makes
        # everything undefined.
        model = well_founded_model(ground_full(EXAMPLE_32))
        for atom in ["p", "q", "r", "t"]:
            assert model.is_undefined(parse_term(atom)), atom

    def test_stable_models_are_wp_fixpoints(self):
        # Definition 3.6: stable models are exactly the two-valued fixpoints of W_P.
        program = ground_full(EXAMPLE_32)
        for model in stable_models(program):
            assert is_two_valued_wp_fixpoint(program, model)


class TestExample31NoStableModel:
    def test_no_stable_model(self):
        # u :- not u destroys all stable models (Example 3.1 discussion).
        program = ground_full("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.")
        assert stable_models(program) == []
        assert not has_stable_model(program)


class TestGeneralProperties:
    def test_unique_stable_model_when_wfs_total(self):
        program = relevant_ground_program(parse_program("""
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, c).
        """))
        wfs = well_founded_model(program)
        assert wfs.is_total()
        models = stable_models(program)
        assert len(models) == 1
        assert models[0].true == wfs.true

    def test_stable_model_extends_wfs(self):
        program = ground_full(EXAMPLE_32 + " s :- not z.")
        wfs = well_founded_model(program)
        for model in stable_models(program):
            assert wfs.true <= model.true
            assert wfs.false <= model.false

    def test_is_stable_model_check(self):
        program = ground_full("p :- not q.")
        assert is_stable_model(program, {parse_term("p")})
        assert not is_stable_model(program, {parse_term("q")})
        assert not is_stable_model(program, {parse_term("p"), parse_term("q")})

    def test_definite_program_unique_stable_model(self):
        program = ground_full("a. b :- a. c :- b, a.")
        models = stable_models(program)
        assert len(models) == 1
        assert len(models[0].true) == 3

    def test_branch_limit(self):
        rules = "\n".join("p%d :- not q%d. q%d :- not p%d." % (i, i, i, i) for i in range(30))
        program = ground_full(rules)
        with pytest.raises(EvaluationError):
            stable_models(program, max_branch_atoms=10)

    def test_limit_parameter(self):
        program = ground_full(EXAMPLE_32)
        assert len(stable_models(program, limit=1)) == 1
