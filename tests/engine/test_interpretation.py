"""Tests for three-valued interpretations and the extension relations."""

import pytest

from repro.engine.interpretation import (
    Interpretation,
    conservatively_extends,
    extends,
    restrict_to_symbols,
)
from repro.hilog.parser import parse_term
from repro.hilog.program import Literal
from repro.hilog.terms import App, Sym


def atoms(*texts):
    return [parse_term(text) for text in texts]


class TestInterpretation:
    def test_truth_values(self):
        interp = Interpretation(atoms("p(a)"), atoms("p(b)"), base=atoms("p(a)", "p(b)", "p(c)"))
        assert interp.is_true(parse_term("p(a)"))
        assert interp.is_false(parse_term("p(b)"))
        assert interp.is_undefined(parse_term("p(c)"))
        assert interp.value(parse_term("p(a)")) == "true"
        assert interp.value(parse_term("p(b)")) == "false"
        assert interp.value(parse_term("p(c)")) == "undefined"

    def test_closed_world_outside_base(self):
        interp = Interpretation(atoms("p(a)"), [])
        assert interp.is_false(parse_term("q(zzz)"))
        assert not interp.is_undefined(parse_term("q(zzz)"))

    def test_inconsistency_rejected(self):
        with pytest.raises(ValueError):
            Interpretation(atoms("p(a)"), atoms("p(a)"))

    def test_is_total(self):
        total = Interpretation(atoms("p(a)"), atoms("p(b)"))
        assert total.is_total()
        partial = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        assert not partial.is_total()

    def test_complete(self):
        partial = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        assert partial.complete().is_total()
        assert partial.complete().is_false(parse_term("p(b)"))

    def test_satisfies_literal(self):
        interp = Interpretation(atoms("p(a)"), atoms("p(b)"))
        assert interp.satisfies_literal(Literal(parse_term("p(a)")))
        assert interp.satisfies_literal(Literal(parse_term("p(b)"), positive=False))
        assert not interp.satisfies_literal(Literal(parse_term("p(b)")))

    def test_union(self):
        first = Interpretation(atoms("p(a)"), [])
        second = Interpretation(atoms("q(b)"), atoms("q(c)"))
        union = first.union(second)
        assert union.is_true(parse_term("p(a)"))
        assert union.is_true(parse_term("q(b)"))
        assert union.is_false(parse_term("q(c)"))

    def test_restrict(self):
        interp = Interpretation(atoms("p(a)", "q(a)"), [])
        restricted = interp.restrict(lambda atom: "p" in atom.symbols())
        assert restricted.is_true(parse_term("p(a)"))
        assert not restricted.is_true(parse_term("q(a)"))

    def test_restrict_to_symbols(self):
        interp = Interpretation(atoms("p(a)", "p(zzz)"), [])
        restricted = restrict_to_symbols(interp, {"p", "a"})
        assert restricted.is_true(parse_term("p(a)"))
        assert not restricted.is_true(parse_term("p(zzz)"))

    def test_as_literal_set(self):
        interp = Interpretation(atoms("p(a)"), atoms("p(b)"))
        literals = interp.as_literal_set()
        assert Literal(parse_term("p(a)")) in literals
        assert Literal(parse_term("p(b)"), positive=False) in literals


class TestExtensionRelations:
    def test_extends_true_preserved(self):
        smaller = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        larger_good = Interpretation(atoms("p(a)", "p(b)"), [], base=atoms("p(a)", "p(b)"))
        larger_bad = Interpretation([], [], base=atoms("p(a)", "p(b)"))
        assert extends(larger_good, smaller)
        assert not extends(larger_bad, smaller)

    def test_extends_undefined_must_not_become_false(self):
        smaller = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        larger = Interpretation(atoms("p(a)"), atoms("p(b)"), base=atoms("p(a)", "p(b)"))
        assert not extends(larger, smaller)

    def test_conservative_extension_reflexive(self):
        interp = Interpretation(atoms("p(a)"), atoms("p(b)"), base=atoms("p(a)", "p(b)", "p(c)"))
        assert conservatively_extends(interp, interp)

    def test_conservative_extension_new_atoms_must_be_false(self):
        smaller = Interpretation(atoms("p(a)"), atoms("p(b)"))
        # p(zzz) uses a new symbol but an old predicate name: must be false.
        bad = Interpretation(atoms("p(a)", "p(zzz)"), atoms("p(b)"))
        good = Interpretation(atoms("p(a)"), atoms("p(b)", "p(zzz)"))
        assert not conservatively_extends(bad, smaller, smaller_symbols={"p", "a", "b"})
        assert conservatively_extends(good, smaller, smaller_symbols={"p", "a", "b"})

    def test_conservative_extension_new_predicates_unconstrained(self):
        smaller = Interpretation(atoms("p(a)"), [])
        larger = Interpretation(atoms("p(a)", "q(zzz)"), [])
        assert conservatively_extends(larger, smaller, smaller_symbols={"p", "a"})

    def test_conservative_extension_old_atom_must_keep_value(self):
        smaller = Interpretation(atoms("p(a)"), atoms("p(b)"))
        flipped = Interpretation(atoms("p(b)"), atoms("p(a)"))
        assert not conservatively_extends(flipped, smaller, smaller_symbols={"p", "a", "b"})

    def test_conservative_extension_undefined_preserved(self):
        smaller = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        same = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)", "q(c)"))
        made_total = Interpretation(atoms("p(a)"), atoms("p(b)"), base=atoms("p(a)", "p(b)"))
        assert conservatively_extends(same, smaller, smaller_symbols={"p", "a", "b"})
        assert not conservatively_extends(made_total, smaller, smaller_symbols={"p", "a", "b"})
