"""Unit tests for the semi-naive evaluation subsystem
(:mod:`repro.engine.seminaive`): relation stores, join plans, the
delta-driven fixpoint, and the ``strategy="seminaive"`` wiring of
``perfect_model_for_hilog`` / ``magic_evaluate``."""

import pytest

from repro.core.magic.evaluate import magic_evaluate
from repro.core.modular import modularly_stratified_for_hilog, perfect_model_for_hilog
from repro.core.semantics import hilog_well_founded_model
from repro.engine.seminaive import (
    RelationStore,
    SeminaiveUnsupported,
    compile_rule,
    predicate_indicator,
    seminaive_evaluate,
    seminaive_perfect_model,
)
from repro.engine.seminaive.plan import FETCH, NEGATION, PlanError
from repro.hilog.errors import GroundingError
from repro.hilog.parser import parse_program, parse_query, parse_rule, parse_term
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Sym, Var
from repro.workloads.closure import (
    datahilog_closure_program,
    expected_closure,
    hilog_closure_program,
    transitive_closure_program,
)
from repro.workloads.games import datahilog_game_program, hilog_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges
from repro.workloads.parts import bicycle_parts_program


# ---------------------------------------------------------------------------
# RelationStore
# ---------------------------------------------------------------------------

class TestRelationStore:
    def test_partitions_by_indicator_and_deduplicates(self):
        store = RelationStore()
        assert store.add(parse_term("e(a, b)"))
        assert not store.add(parse_term("e(a, b)"))
        store.add(parse_term("e(b, c)"))
        store.add(parse_term("f(a)"))
        assert len(store) == 3
        assert len(store.facts(Sym("e"), 2)) == 2
        assert len(store.facts(Sym("f"), 1)) == 1
        assert parse_term("e(a, b)") in store

    def test_symbol_and_zero_ary_application_stay_distinct(self):
        store = RelationStore()
        store.add(parse_term("p"))
        store.add(parse_term("p()"))
        assert len(store) == 2
        assert predicate_indicator(parse_term("p")) == (Sym("p"), -1)
        assert predicate_indicator(parse_term("p()")) == (Sym("p"), 0)

    def test_indexed_lookup_probes_only_matching_facts(self):
        store = RelationStore()
        for i in range(50):
            store.add(parse_term("e(n%d, n%d)" % (i, i + 1)))
        pattern = App(Sym("e"), (parse_term("n7"), Var("Y")))
        candidates = store.candidates(pattern, Substitution(), index_positions=(0,))
        assert [repr(c) for c in candidates] == ["e(n7, n8)"]
        # The index was materialized on demand.
        assert store.relation(Sym("e"), 2).index_count() == 1

    def test_spill_lookup_for_higher_order_pattern(self):
        store = RelationStore()
        store.add(parse_term("move1(a, b)"))
        store.add(parse_term("move2(x, y)"))
        store.add(parse_term("other(a, b, c)"))
        pattern = App(Var("M"), (Var("X"), Var("Y")))
        candidates = store.candidates(pattern, Substitution())
        assert sorted(map(repr, candidates)) == ["move1(a, b)", "move2(x, y)"]

    def test_spill_narrowed_by_outermost_symbol(self):
        store = RelationStore()
        store.add(parse_term("winning(m1)(a)"))
        store.add(parse_term("winning(m2)(b)"))
        store.add(parse_term("losing(m1)(c)"))
        pattern = App(App(Sym("winning"), (Var("M"),)), (Var("X"),))
        candidates = store.candidates(pattern, Substitution())
        assert sorted(map(repr, candidates)) == ["winning(m1)(a)", "winning(m2)(b)"]

    def test_rejects_non_ground_atoms(self):
        with pytest.raises(GroundingError):
            RelationStore().add(App(Sym("e"), (Var("X"),)))


# ---------------------------------------------------------------------------
# Join plans
# ---------------------------------------------------------------------------

class TestJoinPlans:
    def test_negation_ordered_after_its_binder(self):
        rule = parse_rule("p(X) :- not q(X), e(X).")
        plan = compile_rule(rule)
        kinds = [step.kind for step in plan.steps]
        assert kinds == [FETCH, NEGATION]

    def test_builtin_scheduled_once_evaluable(self):
        rule = parse_rule("p(X, N) :- N = X * 2, val(X).")
        plan = compile_rule(rule)
        assert [step.kind for step in plan.steps] == [FETCH, "builtin"]

    def test_index_positions_follow_bound_variables(self):
        rule = parse_rule("tc(X, Y) :- e(X, Z), tc(Z, Y).")
        plan = compile_rule(rule)
        # First fetch has nothing bound; second fetch can probe on Z.
        assert plan.steps[0].index_positions == ()
        assert plan.steps[1].index_positions == (0,)

    def test_delta_variant_moves_delta_literal_first(self):
        rule = parse_rule("tc(X, Y) :- e(X, Z), tc(Z, Y).")
        plan = compile_rule(rule, delta_index=1)
        assert plan.steps[0].from_delta
        assert repr(plan.steps[0].literal.atom) == "tc(Z, Y)"
        # The edge fetch now probes on its second position (Z is bound).
        assert plan.steps[1].index_positions == (1,)

    def test_floundering_negation_raises(self):
        rule = parse_rule("p(X) :- e(X), not q(X, Y).")
        with pytest.raises(PlanError):
            compile_rule(rule)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class TestSeminaiveEngine:
    def test_transitive_closure_matches_wfs(self):
        program = transitive_closure_program(chain_edges(12))
        result = seminaive_evaluate(program)
        assert result.true == hilog_well_founded_model(program).true

    def test_closure_matches_reference_on_random_dag(self):
        edges = random_dag_edges(25, 60, seed=7)
        program = transitive_closure_program(edges)
        result = seminaive_evaluate(program)
        derived_pairs = {
            (repr(atom.args[0]), repr(atom.args[1]))
            for atom in result.derived
        }
        assert derived_pairs == expected_closure(edges)

    def test_stratified_negation_matches_wfs(self):
        program = parse_program("""
            reachable(X) :- source(X).
            reachable(Y) :- reachable(X), e(X, Y).
            unreachable(X) :- node(X), not reachable(X).
            source(a).
            node(a). node(b). node(c). node(d).
            e(a, b). e(b, c).
        """)
        result = seminaive_evaluate(program)
        wfs = hilog_well_founded_model(program)
        assert result.true == wfs.true
        assert len(result.strata) == 2

    def test_higher_order_definite_program(self):
        program = hilog_closure_program({"e": chain_edges(6)})
        result = seminaive_evaluate(program)
        assert result.true == hilog_well_founded_model(program).true

    def test_aggregate_over_lower_stratum(self):
        program = parse_program("""
            total(X, N) :- node(X), N = sum(P : weight(X, Y, P)).
            node(a). node(b).
            weight(a, u, 3). weight(a, v, 4). weight(b, u, 5).
        """)
        result = seminaive_evaluate(program)
        assert parse_term("total(a, 7)") in result.true
        assert parse_term("total(b, 5)") in result.true

    def test_extra_facts_seed_the_store(self):
        program = parse_program("p(X) :- q(X).")
        result = seminaive_evaluate(program, extra_facts=[parse_term("q(a)")])
        assert result.derived == frozenset({parse_term("p(a)")})

    def test_recursion_through_negation_is_unsupported(self):
        program = parse_program("""
            winning(X) :- move(X, Y), not winning(Y).
            move(a, b). move(b, c).
        """)
        with pytest.raises(SeminaiveUnsupported):
            seminaive_evaluate(program)

    def test_recursion_through_aggregation_is_unsupported(self):
        program = bicycle_parts_program()
        with pytest.raises(SeminaiveUnsupported):
            seminaive_evaluate(program)

    def test_unsafe_rule_raises_grounding_error(self):
        program = parse_program("p(X, Y) :- e(X). e(a).")
        with pytest.raises(GroundingError):
            seminaive_evaluate(program)

    def test_fact_cap_raises_grounding_error(self):
        program = transitive_closure_program(chain_edges(10))
        with pytest.raises(GroundingError):
            seminaive_evaluate(program, max_facts=5)

    def test_perfect_model_is_total(self):
        model = seminaive_perfect_model(transitive_closure_program(chain_edges(5)))
        assert model.is_total()
        assert model.is_true(parse_term("tc(n0, n5)"))
        assert model.is_false(parse_term("tc(n5, n0)"))


# ---------------------------------------------------------------------------
# strategy="seminaive" wiring
# ---------------------------------------------------------------------------

class TestStrategyWiring:
    def test_perfect_model_strategies_agree_on_closure(self):
        program = transitive_closure_program(random_dag_edges(15, 30, seed=3))
        ground = perfect_model_for_hilog(program)
        fast = perfect_model_for_hilog(program, strategy="seminaive")
        assert ground.true == fast.true
        assert fast.is_total()

    def test_strategies_agree_on_datahilog_closure(self):
        program = datahilog_closure_program({"g1": chain_edges(6), "g2": chain_edges(4, "m")})
        ground = perfect_model_for_hilog(program)
        fast = perfect_model_for_hilog(program, strategy="seminaive")
        assert ground.true == fast.true

    def test_strategies_agree_on_hilog_game_fallback(self):
        # Negation inside the winning component: the fast path must fall
        # back to the grounding oracle per component and still agree.
        program = hilog_game_program({"m": random_dag_edges(12, 24, seed=5)})
        ground = modularly_stratified_for_hilog(program)
        fast = modularly_stratified_for_hilog(program, strategy="seminaive")
        assert ground.is_modularly_stratified and fast.is_modularly_stratified
        assert ground.model.true == fast.model.true

    def test_strategies_agree_on_parts_explosion(self):
        program = bicycle_parts_program()
        ground = perfect_model_for_hilog(program)
        fast = perfect_model_for_hilog(program, strategy="seminaive")
        assert ground.true == fast.true

    def test_strategies_agree_on_negative_verdict(self):
        program = datahilog_game_program({"m": [("a", "b"), ("b", "a")]})
        ground = modularly_stratified_for_hilog(program)
        fast = modularly_stratified_for_hilog(program, strategy="seminaive")
        assert not ground.is_modularly_stratified
        assert not fast.is_modularly_stratified

    def test_unknown_strategy_rejected(self):
        program = transitive_closure_program(chain_edges(3))
        with pytest.raises(ValueError):
            perfect_model_for_hilog(program, strategy="bogus")
        with pytest.raises(ValueError):
            magic_evaluate(program, parse_query("tc(n0, Y)"), strategy="bogus")

    def test_magic_strategies_agree_on_bound_query(self):
        program = transitive_closure_program(chain_edges(15))
        query = parse_query("tc(n3, Y)")
        ground = magic_evaluate(program, query)
        fast = magic_evaluate(program, query, strategy="seminaive")
        assert ground.answers == fast.answers
        assert fast.ground_rules == 0  # no ground rules materialized

    def test_magic_strategies_agree_on_free_query(self):
        program = transitive_closure_program(chain_edges(8))
        query = parse_query("tc(X, Y)")
        ground = magic_evaluate(program, query)
        fast = magic_evaluate(program, query, strategy="seminaive")
        assert ground.answers == fast.answers

    def test_magic_seminaive_falls_back_on_negation(self):
        program = datahilog_game_program({"m": chain_edges(6)})
        query = parse_query("winning(m, X)")
        ground = magic_evaluate(program, query)
        fast = magic_evaluate(program, query, strategy="seminaive")
        assert ground.answers == fast.answers

    def test_aggregate_over_settled_component_agrees(self):
        # The oracle's aggregate components fold only over their own atoms,
        # so the whole-program fast path must decline aggregate programs
        # rather than fold over the full store.
        program = parse_program("""
            e(v, 1). e(w, 2). q(c).
            total(N) :- q(X), N = sum(P : e(Y, P)).
        """)
        ground = perfect_model_for_hilog(program)
        fast = perfect_model_for_hilog(program, strategy="seminaive")
        assert ground.true == fast.true

    def test_magic_seminaive_declines_reserved_predicate_names(self):
        # A user predicate named `magic` (or `sup_*`) collides with the
        # rewriting's auxiliary namespace; the fast path must stay on the
        # oracle for such programs.
        program = parse_program("""
            magic(a). magic(b).
            p(X) :- magic(X).
            sup_0_0(c).
            r(X) :- sup_0_0(X).
        """)
        for query_text in ("magic(X)", "p(X)", "r(X)"):
            query = parse_query(query_text)
            ground = magic_evaluate(program, query)
            fast = magic_evaluate(program, query, strategy="seminaive")
            assert ground.answers == fast.answers, query_text
