"""Tests for the well-founded semantics engines (W_P and alternating fixpoint)."""

import pytest

from repro.engine.grounding import relevant_ground_program, ground_over_universe
from repro.engine.interpretation import Interpretation
from repro.engine.wellfounded import (
    greatest_unfounded_set,
    tp_operator,
    well_founded_model,
    well_founded_model_detailed,
    wp_operator,
)
from repro.hilog.herbrand import normal_herbrand_universe
from repro.hilog.parser import parse_program, parse_term


def ground(text):
    return relevant_ground_program(parse_program(text))


def ground_full(text):
    program = parse_program(text)
    return ground_over_universe(program, normal_herbrand_universe(program))


WIN_MOVE = """
win(X) :- move(X, Y), not win(Y).
move(a, b). move(b, c). move(c, d).
"""


class TestOperators:
    def test_tp_on_empty_interpretation(self):
        program = ground("p. q :- p. r :- not s.")
        empty = Interpretation((), (), base=program.base)
        derived = tp_operator(program, empty)
        assert parse_term("p") in derived
        # q needs p *in* the interpretation (not just derivable); r needs ¬s in it.
        assert parse_term("q") not in derived
        assert parse_term("r") not in derived

    def test_greatest_unfounded_set(self):
        # Example 3.1: U_P(∅) = {p, q}.
        program = ground_full("p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.")
        empty = Interpretation((), (), base=program.base)
        unfounded = greatest_unfounded_set(program, empty)
        assert parse_term("p") in unfounded
        assert parse_term("q") in unfounded
        assert parse_term("s") not in unfounded
        assert parse_term("u") not in unfounded

    def test_wp_is_monotone_on_chain(self):
        program = ground_full(WIN_MOVE)
        current = Interpretation((), (), base=program.base)
        previous_true, previous_false = set(), set()
        for _ in range(5):
            current = wp_operator(program, current)
            assert previous_true <= current.true
            assert previous_false <= current.false
            previous_true, previous_false = set(current.true), set(current.false)


class TestWellFoundedModel:
    def test_win_move_chain(self):
        model = well_founded_model(ground(WIN_MOVE))
        assert model.is_true(parse_term("win(a)"))
        assert model.is_false(parse_term("win(b)"))
        assert model.is_true(parse_term("win(c)"))
        assert model.is_false(parse_term("win(d)"))
        assert model.is_total()

    def test_win_move_cycle_is_partial(self):
        model = well_founded_model(ground("""
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, a). move(c, a).
        """))
        # The a/b two-cycle leaves win(a), win(b) undefined, and win(c)
        # (which depends on win(a)) is undefined too.
        assert model.is_undefined(parse_term("win(a)"))
        assert model.is_undefined(parse_term("win(b)"))
        assert model.is_undefined(parse_term("win(c)"))

    def test_win_move_cycle_with_escape_is_total(self):
        # b can escape the cycle to c (which has no moves), so b wins and a loses.
        model = well_founded_model(ground("""
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, a). move(b, c).
        """))
        assert model.is_true(parse_term("win(b)"))
        assert model.is_false(parse_term("win(a)"))
        assert model.is_total()

    def test_both_engines_agree(self):
        for text in [
            WIN_MOVE,
            "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.",
            "p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.",
            "a :- not b. b :- not a. c :- not c.",
        ]:
            program = ground_full(text)
            wp = well_founded_model(program, engine="wp")
            alternating = well_founded_model(program, engine="alternating")
            assert wp.true == alternating.true, text
            assert wp.false == alternating.false, text

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            well_founded_model(ground("p."), engine="bogus")

    def test_detailed_reports_iterations(self):
        result = well_founded_model_detailed(ground(WIN_MOVE))
        assert result.iterations >= 1
        assert result.engine == "alternating"

    def test_positive_program_is_least_model(self):
        model = well_founded_model(ground("""
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
        """))
        assert model.is_true(parse_term("path(a, c)"))
        assert model.is_total()

    def test_facts_only(self):
        model = well_founded_model(ground("p(a). q(b)."))
        assert model.is_true(parse_term("p(a)"))
        assert model.is_total()

    def test_empty_program(self):
        from repro.engine.grounding import GroundProgram

        model = well_founded_model(GroundProgram([]))
        assert model.is_total()
        assert not model.true


class TestPaperExample31:
    """Example 3.1 of the paper, including the intermediate iterations."""

    PROGRAM = "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u."

    def test_final_model(self):
        model = well_founded_model(ground_full(self.PROGRAM), engine="wp")
        assert model.is_true(parse_term("r"))
        assert model.is_true(parse_term("s"))
        assert model.is_false(parse_term("p"))
        assert model.is_false(parse_term("q"))
        assert model.is_false(parse_term("t"))
        assert model.is_undefined(parse_term("u"))

    def test_iteration_trace(self):
        # I1 = {s, ¬p, ¬q}; I2 adds r; I3 adds ¬t; I3 is the fixpoint.
        program = ground_full(self.PROGRAM)
        i0 = Interpretation((), (), base=program.base)
        i1 = wp_operator(program, i0)
        assert i1.true == {parse_term("s")}
        assert {parse_term("p"), parse_term("q")} <= i1.false
        i2 = wp_operator(program, i1)
        assert parse_term("r") in i2.true
        i3 = wp_operator(program, i2)
        assert parse_term("t") in i3.false
        i4 = wp_operator(program, i3)
        assert i4.true == i3.true and i4.false == i3.false
