"""Tests for the exhaustive and relevance-driven grounders."""

import pytest

from repro.engine.grounding import (
    GroundProgram,
    GroundRule,
    ground_over_universe,
    instantiate_rule,
    relevant_ground_program,
)
from repro.hilog.errors import GroundingError
from repro.hilog.herbrand import HerbrandUniverse
from repro.hilog.parser import parse_program, parse_rule, parse_term
from repro.hilog.terms import Sym


class TestGroundProgram:
    def test_base_collects_all_atoms(self):
        rule = GroundRule(parse_term("p(a)"), (parse_term("q(a)"),), (parse_term("r(a)"),))
        program = GroundProgram([rule])
        assert parse_term("p(a)") in program.base
        assert parse_term("q(a)") in program.base
        assert parse_term("r(a)") in program.base

    def test_union(self):
        first = GroundProgram([GroundRule(parse_term("p(a)"), (), ())])
        second = GroundProgram([GroundRule(parse_term("q(b)"), (), ())])
        union = first.union(second)
        assert len(union) == 2

    def test_rules_for(self):
        rule = GroundRule(parse_term("p(a)"), (), ())
        program = GroundProgram([rule, GroundRule(parse_term("q(b)"), (), ())])
        assert program.rules_for(parse_term("p(a)")) == (rule,)


class TestExhaustiveGrounding:
    def test_ground_fact_with_variable(self):
        program = parse_program("p(X, X, a).")
        universe = [Sym("a"), Sym("b")]
        ground = ground_over_universe(program, universe)
        heads = {rule.head for rule in ground.rules}
        assert parse_term("p(a, a, a)") in heads
        assert parse_term("p(b, b, a)") in heads
        assert len(heads) == 2

    def test_negation_instances(self):
        program = parse_program("p :- not q(X). q(a).")
        universe = [Sym("a"), Sym("p"), Sym("q")]
        ground = ground_over_universe(program, universe)
        negative_atoms = {atom for rule in ground.rules for atom in rule.negative}
        assert parse_term("q(a)") in negative_atoms
        assert parse_term("q(p)") in negative_atoms

    def test_builtins_evaluated_away(self):
        program = parse_program("p(X) :- q(X), X > 1. q(1). q(2).")
        ground = ground_over_universe(program, [parse_term("1"), parse_term("2")])
        heads = {rule.head for rule in ground.rules if rule.positive}
        assert parse_term("p(2)") in heads
        assert parse_term("p(1)") not in heads

    def test_empty_universe_rejected(self):
        with pytest.raises(GroundingError):
            ground_over_universe(parse_program("p(a)."), [])

    def test_aggregates_rejected(self):
        program = parse_program("c(N) :- N = sum(P : in(P)).")
        with pytest.raises(GroundingError):
            ground_over_universe(program, [Sym("a")])

    def test_base_from_universe(self):
        program = parse_program("p(a).")
        universe = HerbrandUniverse.of_program(program, max_depth=0)
        ground = ground_over_universe(program, universe, base_from_universe=True)
        # p(p), a(a), ... are in the base even though no rule mentions them.
        assert parse_term("a(a)") in ground.base


class TestRelevantGrounding:
    def test_only_derivable_instances(self):
        program = parse_program(
            """
            win(X) :- move(X, Y), not win(Y).
            move(a, b). move(b, c).
            """
        )
        ground = relevant_ground_program(program)
        heads = {rule.head for rule in ground.rules}
        assert parse_term("win(a)") in heads
        assert parse_term("win(b)") in heads
        # win(c) has no outgoing move, so no rule instance has it as a head.
        assert parse_term("win(c)") not in heads
        # ... but it occurs negatively, so it is in the base.
        assert parse_term("win(c)") in ground.base

    def test_hilog_predicate_variable(self):
        program = parse_program(
            """
            tc(G)(X, Y) :- graph(G), G(X, Y).
            tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).
            graph(e).
            e(1, 2). e(2, 3).
            """
        )
        ground = relevant_ground_program(program)
        heads = {rule.head for rule in ground.rules}
        assert parse_term("tc(e)(1, 3)") in heads

    def test_unsafe_rule_rejected(self):
        with pytest.raises(GroundingError):
            relevant_ground_program(parse_program("p(X) :- q(a). q(a)."))

    def test_floundering_negative_rejected(self):
        with pytest.raises(GroundingError):
            relevant_ground_program(parse_program("p :- not q(X). q(a)."))

    def test_nonground_fact_rejected(self):
        with pytest.raises(GroundingError):
            relevant_ground_program(parse_program("p(X, X, a)."))

    def test_term_depth_guard(self):
        # The unguarded generic transitive closure of Example 5.2 grows
        # tc(e), tc(tc(e)), ... without bound; the guard catches it.
        program = parse_program(
            """
            tc(G)(X, Y) :- G(X, Y).
            tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).
            e(1, 2). e(2, 3).
            """
        )
        with pytest.raises(GroundingError):
            relevant_ground_program(program, max_term_depth=8)

    def test_max_atoms_guard(self):
        program = parse_program(
            """
            p(s(X)) :- p(X).
            p(0).
            """
        )
        with pytest.raises(GroundingError):
            relevant_ground_program(program, max_atoms=50, max_term_depth=10000)

    def test_extra_facts(self):
        program = parse_program("p(X) :- q(X).")
        ground = relevant_ground_program(program, extra_facts=[parse_term("q(a)")])
        heads = {rule.head for rule in ground.rules}
        assert parse_term("p(a)") in heads

    def test_builtin_binding_during_grounding(self):
        program = parse_program("t(X, N) :- c(X, M), N is M + 1. c(a, 1).")
        ground = relevant_ground_program(program)
        heads = {rule.head for rule in ground.rules}
        assert parse_term("t(a, 2)") in heads


class TestInstantiateRule:
    def test_yields_all_matches(self):
        rule = parse_rule("p(X) :- q(X), r(X).")
        atoms = [parse_term("q(a)"), parse_term("q(b)"), parse_term("r(a)")]
        instances = list(instantiate_rule(rule, atoms))
        assert len(instances) == 1
        assert instances[0].head == parse_term("p(a)")

    def test_variable_predicate_name_matching(self):
        rule = parse_rule("w(M)(X) :- g(M), M(X, Y).")
        atoms = [parse_term("g(m)"), parse_term("m(a, b)")]
        instances = list(instantiate_rule(rule, atoms))
        assert len(instances) == 1
        assert instances[0].head == parse_term("w(m)(a)")
