"""Tests for the engine primitives added for incremental maintenance:
fact removal and support counts in the relation store, component-grained
stratification, and per-stratum re-evaluation with injected deltas."""

import pytest

from repro.engine.seminaive import (
    PlanSources,
    RelationStore,
    compile_stratum,
    evaluate_stratum,
    plan_satisfiable,
    run_plan,
    seminaive_evaluate,
    stratify_program,
)
from repro.engine.seminaive.plan import compile_rule
from repro.hilog.errors import GroundingError
from repro.hilog.parser import parse_program, parse_rule, parse_term
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Sym, Var


class TestRemoval:
    def test_remove_maintains_membership_and_counts(self):
        store = RelationStore()
        store.add(parse_term("e(a, b)"))
        store.add(parse_term("e(b, c)"))
        assert store.remove(parse_term("e(a, b)"))
        assert not store.remove(parse_term("e(a, b)"))
        assert parse_term("e(a, b)") not in store
        assert len(store) == 1
        assert len(store.facts(Sym("e"), 2)) == 1

    def test_remove_maintains_indexes(self):
        store = RelationStore()
        for i in range(20):
            store.add(parse_term("e(n%d, n%d)" % (i, i + 1)))
        pattern = App(Sym("e"), (parse_term("n7"), Var("Y")))
        assert len(store.candidates(pattern, Substitution(), (0,))) == 1
        store.remove(parse_term("e(n7, n8)"))
        assert len(store.candidates(pattern, Substitution(), (0,))) == 0
        store.add(parse_term("e(n7, n99)"))
        assert [repr(c) for c in store.candidates(pattern, Substitution(), (0,))] \
            == ["e(n7, n99)"]


class TestSupportCounts:
    def test_supports_accumulate_and_drain(self):
        store = RelationStore()
        atom = parse_term("p(a)")
        assert store.add_support(atom)          # became present
        assert not store.add_support(atom)      # second support
        assert store.support(atom) == 2
        assert not store.remove_support(atom)   # one support left
        assert atom in store
        assert store.remove_support(atom)       # last support gone
        assert atom not in store
        assert store.support(atom) == 0

    def test_plain_add_has_set_semantics(self):
        store = RelationStore()
        atom = parse_term("p(a)")
        store.add(atom)
        store.add(atom)
        assert store.support(atom) == 1

    def test_oversubtraction_raises(self):
        store = RelationStore()
        atom = parse_term("p(a)")
        store.add_support(atom)
        with pytest.raises(GroundingError):
            store.remove_support(atom, 2)
        with pytest.raises(GroundingError):
            store.remove_support(parse_term("q(b)"))


class TestStratification:
    PROGRAM = """
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        reach(X) :- tc(a, X).
        e(a, b).
    """

    def test_default_groups_positive_levels(self):
        strat = stratify_program(parse_program(self.PROGRAM))
        assert len(strat.strata) == 1  # definite: one stratum

    def test_by_component_splits_sccs(self):
        strat = stratify_program(parse_program(self.PROGRAM), by_component=True)
        assert len(strat.strata) == 2  # {tc} below {reach}
        reach_rule = strat.strata[1][0]
        assert strat.recursive[reach_rule] == set()  # reach is not recursive

    def test_by_component_falls_back_for_higher_order(self):
        program = parse_program("""
            tc(G)(X, Y) :- graph(G), G(X, Y).
            graph(g). g(a, b).
        """)
        strat = stratify_program(program, by_component=True)
        assert len(strat.strata) == 1
        assert list(strat.recursive.values()) == [None]

    def test_result_unchanged_for_one_shot_evaluation(self):
        program = parse_program(self.PROGRAM)
        result = seminaive_evaluate(program)
        assert parse_term("reach(b)") in result.true


class TestInjectedDelta:
    def test_evaluate_stratum_resumes_from_delta(self):
        program = parse_program("""
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        """)
        strat = stratify_program(program, by_component=True)
        stratum = compile_stratum(strat.strata[0], strat.recursive)

        store = RelationStore()
        for text in ("e(a, b)", "e(b, c)"):
            store.add(parse_term(text))
        evaluate_stratum(stratum, store)
        assert parse_term("tc(a, c)") in store

        # A new edge arrived; the caller derived its one-step consequence
        # (the delta-site fact) and injects it.  Resumption derives exactly
        # the transitive consequences, nothing is recomputed.
        store.add(parse_term("e(c, d)"))
        seed = parse_term("tc(c, d)")
        store.add(seed)
        iterations, added = evaluate_stratum(stratum, store, seed_delta=[seed])
        assert set(added) == {parse_term("tc(b, d)"), parse_term("tc(a, d)")}
        assert iterations >= 1

    def test_empty_delta_is_a_noop(self):
        program = parse_program("p(X) :- q(X). q(a).")
        strat = stratify_program(program, by_component=True)
        stratum = compile_stratum(strat.strata[0], strat.recursive)
        store = RelationStore([parse_term("q(a)"), parse_term("p(a)")])
        iterations, added = evaluate_stratum(stratum, store, seed_delta=[])
        assert iterations == 0 and added == []


class TestPlanHelpers:
    def test_plan_satisfiable_with_bound_head(self):
        rule = parse_rule("tc(X, Y) :- e(X, Z), tc(Z, Y).")
        plan = compile_rule(rule, bound=frozenset(rule.head.variables()))
        store = RelationStore([
            parse_term("e(a, b)"), parse_term("tc(b, c)"),
        ])
        sources = PlanSources(store)
        binding = Substitution({Var("X"): Sym("a"), Var("Y"): Sym("c")})
        assert plan_satisfiable(plan, sources, binding)
        binding = Substitution({Var("X"): Sym("b"), Var("Y"): Sym("c")})
        assert not plan_satisfiable(plan, sources, binding)

    def test_run_plan_with_custom_sources(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        plan = compile_rule(rule)
        store = RelationStore([parse_term("q(a)"), parse_term("q(b)"),
                               parse_term("r(b)")])

        class EverythingFalse(PlanSources):
            def holds(self, atom):
                return False  # negation-as-failure against an empty world

        assert sorted(map(repr, run_plan(plan, PlanSources(store)))) == ["p(a)"]
        assert sorted(map(repr, run_plan(plan, EverythingFalse(store)))) \
            == ["p(a)", "p(b)"]
