"""Property test: the semi-naive fast path and the grounding oracle compute
identical perfect models.

Random stratified range-restricted programs from
:mod:`repro.workloads.random_programs` are evaluated under both strategies
of :func:`repro.core.modular.perfect_model_for_hilog`; on every sample the
true-atom sets must coincide and both models must be total (everything
outside the true set is false by closed world, so equal true sets mean the
models agree on every atom).  A second sweep checks
:func:`repro.core.magic.evaluate.magic_evaluate` strategy agreement on
definite samples under bound and free queries.
"""

import pytest

from repro.core.magic.evaluate import magic_evaluate
from repro.core.modular import perfect_model_for_hilog
from repro.hilog.errors import StratificationError
from repro.hilog.parser import parse_query
from repro.workloads.random_programs import random_range_restricted_program

#: Sample shapes: (predicates, constants, facts, rules, max body, negation).
SHAPES = [
    (3, 3, 6, 4, 3, "stratified"),
    (4, 4, 10, 6, 3, "stratified"),
    (3, 5, 12, 5, 2, "stratified"),
    (5, 3, 8, 8, 3, "stratified"),
    (3, 3, 6, 4, 3, "none"),
    (4, 4, 12, 7, 4, "none"),
]


def _sample(shape, seed):
    n_predicates, n_constants, n_facts, n_rules, max_body, negation = shape
    return random_range_restricted_program(
        n_predicates=n_predicates,
        n_constants=n_constants,
        n_facts=n_facts,
        n_rules=n_rules,
        max_body=max_body,
        negation=negation,
        seed=seed,
    )


@pytest.mark.parametrize("shape", SHAPES, ids=[str(s) for s in SHAPES])
@pytest.mark.parametrize("seed", range(8))
def test_perfect_model_strategies_agree(shape, seed):
    program = _sample(shape, seed)
    try:
        ground = perfect_model_for_hilog(program)
    except StratificationError:
        # The generator keeps predicate levels stratified, but a sample can
        # still fall outside the Figure-1 class (e.g. an instance-level
        # negative loop the relevance grounding materializes).  The fast
        # path must agree on the rejection.
        with pytest.raises(StratificationError):
            perfect_model_for_hilog(program, strategy="seminaive")
        return
    fast = perfect_model_for_hilog(program, strategy="seminaive")
    assert ground.true == fast.true
    assert ground.is_total() and fast.is_total()


@pytest.mark.parametrize("seed", range(10))
def test_magic_strategies_agree_on_definite_samples(seed):
    program = _sample((4, 4, 10, 6, 3, "none"), seed)
    for query_text in ("p0(X, Y)", "p1(c0, Y)", "p2(X, c1)"):
        query = parse_query(query_text)
        ground = magic_evaluate(program, query)
        fast = magic_evaluate(program, query, strategy="seminaive")
        assert ground.answers == fast.answers, (query_text, seed)
