"""Committed corruption fixtures: recovery *recovers* from them — torn
tails truncate, corrupt snapshots are skipped with full error detail —
rather than crashing, and the damage is visible in the error taxonomy and
the ``repro_recovery_*`` metrics.

Regenerate the binaries with ``tests/durable/fixtures/make_fixtures.py``
(WAL fixtures are JSON-framed and cross-version stable; snapshot fixtures
are committed only in corrupt form — see that script's docstring).
"""

import os
import shutil

import pytest

from repro.db import DatabaseSession
from repro.durable.snapshot import load_snapshot, snapshot_path
from repro.durable.wal import WriteAheadLog, read_frames
from repro.hilog.errors import CorruptSnapshot, CorruptWal
from repro.obs.metrics import get_registry

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

TC = """
    e(a, b). e(b, c).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""


def _fixture(name):
    return os.path.join(FIXTURES, name)


def test_torn_tail_fixture_truncates_and_keeps_committed(tmp_path):
    path = str(tmp_path / "wal.log")
    shutil.copy(_fixture("torn_tail.wal"), path)
    wal = WriteAheadLog(path, fsync="off")
    # Both committed transactions survive; the partial tail frame is cut;
    # the dangling begin (txn 3) is skipped but keeps the numbering.
    assert [(b.txn, b.inserts, b.retracts) for b in wal.committed] == [
        (1, ["e(c, d)."], []),
        (2, ["e(d, e)."], ["e(a, b)."]),
    ]
    assert wal.truncated_bytes > 0
    assert wal.last_txn == 3
    wal.close()


def test_bad_crc_fixture_strict_read_raises_with_offset(tmp_path):
    path = str(tmp_path / "wal.log")
    shutil.copy(_fixture("bad_crc.wal"), path)
    lenient = [record["t"] for _o, _e, record in read_frames(path)]
    assert lenient == ["begin"]  # reads stop at the flipped frame
    with pytest.raises(CorruptWal) as info:
        list(read_frames(path, strict=True))
    assert info.value.path == path
    assert info.value.offset is not None and info.value.offset > 0


@pytest.mark.parametrize("name", ["bad_magic.snap", "bad_crc.snap",
                                  "truncated.snap"])
def test_snapshot_fixtures_raise_corrupt_snapshot(name):
    with pytest.raises(CorruptSnapshot) as info:
        load_snapshot(_fixture(name))
    assert info.value.path == _fixture(name)
    assert str(info.value)  # a human-readable reason, not a bare raise


def test_end_to_end_recovery_from_fixture_damage(tmp_path):
    """A data directory wearing both kinds of committed damage — a torn
    WAL and a corrupt newest snapshot — recovers rather than crashes,
    and the damage shows up in the recovery details and metrics."""
    directory = str(tmp_path / "data")
    DatabaseSession(TC, path=directory).close()
    # Overwrite the WAL with the torn fixture and plant a corrupt
    # "newest" snapshot above the valid initial one.
    shutil.copy(_fixture("torn_tail.wal"), os.path.join(directory, "wal.log"))
    shutil.copy(_fixture("bad_crc.snap"), snapshot_path(directory, 99))

    registry = get_registry()
    skipped = registry.counter(
        "repro_recovery_corrupt_snapshots",
        "Snapshots skipped as corrupt during recovery", family="durable",
    )
    truncated = registry.counter(
        "repro_recovery_truncated_bytes",
        "Torn-tail bytes truncated from the WAL at open", family="durable",
    )
    replayed = registry.counter(
        "repro_recovery_replayed_records",
        "Committed WAL transactions replayed during recovery",
        family="durable",
    )
    before = (skipped.value, truncated.value, replayed.value)

    session = DatabaseSession.open(directory, verify=True)
    try:
        info = session.stats()["durability"]
        assert len(info["corrupt_snapshots"]) == 1
        assert "CRC mismatch" in info["corrupt_snapshots"][0]
        assert info["truncated_bytes"] > 0
        assert info["replayed_txns"] == 2
        # The fixture's committed batches are live in the model.
        assert session.ask("tc(c, e)")
        assert not session.ask("e(a, b)")
        assert skipped.value == before[0] + 1
        assert truncated.value > before[1]
        assert replayed.value == before[2] + 2
    finally:
        session.close()
