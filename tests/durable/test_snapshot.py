"""Snapshot checkpoint unit tests: round-trip fidelity, write atomicity
under injected crashes, corruption detection and pruning."""

import os

import pytest

from repro.db import DatabaseSession
from repro.durable.faults import crash_at, CrashPoint
from repro.durable.snapshot import (
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.hilog.errors import CorruptSnapshot

TC = """
    e(a, b). e(b, c). e(c, a).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

WIN_MOVE = """
    move(a, b). move(b, a). move(c, d).
    win(X) :- move(X, Y), not win(Y).
"""


def _checkpoint(session, directory, txn=0):
    return write_snapshot(
        str(directory), rules_text="%% rules", mode=session.mode, txn=txn,
        edb=session.edb(), store=session.store,
        undefined=session.undefined, supports=session.store._supports,
    )


def test_round_trip_preserves_model_and_supports(tmp_path):
    session = DatabaseSession(TC)
    path = _checkpoint(session, tmp_path, txn=7)

    state = load_snapshot(path)
    assert state.txn == 7
    assert state.mode == session.mode
    assert state.rules_text == "%% rules"
    assert state.edb == session.edb()
    assert set(state.store) == set(session.store)
    # Hash-consing: restored atoms are the canonical interned objects.
    for atom in session.store:
        assert atom in state.store
    assert dict(state.store._supports) == dict(session.store._supports)
    assert state.undefined == session.undefined


def test_round_trip_preserves_undefined_partition(tmp_path):
    session = DatabaseSession(WIN_MOVE)
    assert session.undefined  # the a<->b loop is undefined
    state = load_snapshot(_checkpoint(session, tmp_path))
    assert state.undefined == session.undefined
    assert set(state.store) == set(session.store)


def test_crash_mid_write_leaves_old_snapshot_set(tmp_path):
    session = DatabaseSession(TC)
    _checkpoint(session, tmp_path, txn=1)
    for point in ("snapshot.mid_write", "snapshot.pre_rename"):
        with crash_at(point):
            with pytest.raises(CrashPoint):
                _checkpoint(session, tmp_path, txn=2)
        # The crashed attempt never became visible as a snapshot.
        assert [txn for txn, _path in list_snapshots(str(tmp_path))] == [1]
        state = load_snapshot(list_snapshots(str(tmp_path))[0][1])
        assert state.txn == 1
    # The interrupted attempts left *.tmp strays; pruning clears them.
    strays = [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]
    assert strays
    prune_snapshots(str(tmp_path))
    assert not [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]


def test_crash_post_rename_publishes_snapshot(tmp_path):
    session = DatabaseSession(TC)
    with crash_at("snapshot.post_rename"):
        with pytest.raises(CrashPoint):
            _checkpoint(session, tmp_path, txn=3)
    (txn, path), = list_snapshots(str(tmp_path))
    assert txn == 3
    assert load_snapshot(path).txn == 3


@pytest.mark.parametrize("mangle", ["magic", "crc", "truncate", "body"])
def test_corruption_raises_corrupt_snapshot(tmp_path, mangle):
    session = DatabaseSession(TC)
    path = _checkpoint(session, tmp_path)
    with open(path, "r+b") as handle:
        if mangle == "magic":
            handle.write(b"XXXXXXXX")
        elif mangle == "crc":
            handle.seek(8)
            handle.write(b"\xde\xad\xbe\xef")
        elif mangle == "truncate":
            handle.truncate(os.path.getsize(path) // 2)
        else:  # body byte flip
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CorruptSnapshot) as info:
        load_snapshot(path)
    assert info.value.path == path


def test_prune_keeps_newest_two(tmp_path):
    session = DatabaseSession(TC)
    for txn in range(5):
        _checkpoint(session, tmp_path, txn=txn)
    removed = prune_snapshots(str(tmp_path), keep=2)
    assert len(removed) == 3
    assert [txn for txn, _p in list_snapshots(str(tmp_path))] == [4, 3]


def test_snapshot_restores_from_frozen_store(tmp_path):
    # The serving path checkpoints a pinned frozen epoch; freezing must
    # not change what gets serialized.
    session = DatabaseSession(TC)
    frozen = session.store.snapshot()
    path = write_snapshot(
        str(tmp_path), rules_text="r", mode=session.mode, txn=0,
        edb=session.edb(), store=frozen, undefined=session.undefined,
        supports=session.store._supports,
    )
    assert set(load_snapshot(path).store) == set(session.store)
