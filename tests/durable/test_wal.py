"""Write-ahead log unit tests: framing, transaction boundaries, torn-tail
truncation, fsync policies and crash-abandon semantics."""

import os

import pytest

from repro.durable.wal import CommittedBatch, WriteAheadLog, read_frames
from repro.hilog.errors import CorruptWal


def _wal(tmp_path, **kwargs):
    return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)


def test_begin_commit_round_trip(tmp_path):
    wal = _wal(tmp_path, fsync="off")
    txn = wal.begin(["e(a, b).", "e(b, c)."], [])
    wal.commit(txn)
    txn2 = wal.begin([], ["e(a, b)."])
    wal.commit(txn2)
    wal.close()

    reopened = _wal(tmp_path, fsync="off")
    assert [batch.txn for batch in reopened.committed] == [txn, txn2]
    assert reopened.committed[0].inserts == ["e(a, b).", "e(b, c)."]
    assert reopened.committed[0].retracts == []
    assert reopened.committed[1].retracts == ["e(a, b)."]
    assert reopened.last_txn == txn2
    reopened.close()


def test_txn_numbering_continues_across_reopen(tmp_path):
    wal = _wal(tmp_path, fsync="off")
    wal.commit(wal.begin(["p(a)."], []))
    wal.close()
    wal = _wal(tmp_path, fsync="off")
    txn = wal.begin(["p(b)."], [])
    assert txn == 2
    wal.commit(txn)
    wal.close()


def test_uncommitted_transaction_is_skipped(tmp_path):
    wal = _wal(tmp_path, fsync="off")
    wal.commit(wal.begin(["p(a)."], []))
    wal.begin(["p(b)."], [])  # dangling: the process died mid-apply
    wal.abandon()

    reopened = _wal(tmp_path, fsync="off")
    assert [b.inserts for b in reopened.committed] == [["p(a)."]]
    # Numbering still continues past the dangling begin: its frames are
    # intact on disk, only the commit is missing.
    assert reopened.last_txn == 2
    reopened.close()


def test_aborted_transaction_is_skipped(tmp_path):
    wal = _wal(tmp_path, fsync="off")
    txn = wal.begin(["bad(a)."], [])
    wal.abort(txn)
    wal.commit(wal.begin(["good(a)."], []))
    wal.close()

    reopened = _wal(tmp_path, fsync="off")
    assert [b.inserts for b in reopened.committed] == [["good(a)."]]
    reopened.close()


def test_torn_tail_is_truncated_at_first_bad_frame(tmp_path):
    wal = _wal(tmp_path, fsync="always")
    wal.commit(wal.begin(["p(a)."], []))
    wal.close()
    path = str(tmp_path / "wal.log")
    clean_size = os.path.getsize(path)
    garbage = b"\x01\x02torn-by-a-crash"
    with open(path, "ab") as handle:
        handle.write(garbage)

    reopened = _wal(tmp_path, fsync="off")
    assert reopened.truncated_bytes == len(garbage)
    assert os.path.getsize(path) == clean_size
    assert [b.inserts for b in reopened.committed] == [["p(a)."]]
    # Appending after truncation lands where the tail was cut.
    reopened.commit(reopened.begin(["p(b)."], []))
    reopened.close()
    final = _wal(tmp_path, fsync="off")
    assert [b.inserts for b in final.committed] == [["p(a)."], ["p(b)."]]
    final.close()


def test_mid_frame_truncation_drops_partial_frame(tmp_path):
    wal = _wal(tmp_path, fsync="always")
    wal.commit(wal.begin(["p(a)."], []))
    first_end = os.path.getsize(str(tmp_path / "wal.log"))
    wal.commit(wal.begin(["p(b)."], []))
    wal.close()
    path = str(tmp_path / "wal.log")
    # Cut into the middle of the second transaction's frames.
    with open(path, "r+b") as handle:
        handle.truncate(first_end + 5)

    reopened = _wal(tmp_path, fsync="off")
    assert [b.inserts for b in reopened.committed] == [["p(a)."]]
    assert reopened.truncated_bytes == 5
    reopened.close()


def test_read_frames_strict_raises_corrupt_wal(tmp_path):
    wal = _wal(tmp_path, fsync="off")
    wal.commit(wal.begin(["p(a)."], []))
    wal.close()
    path = str(tmp_path / "wal.log")
    good = list(read_frames(path, strict=True))
    assert [record["t"] for _o, _e, record in good] == ["begin", "ins",
                                                        "commit"]
    # Flip a payload byte: lenient reads stop, strict reads raise with
    # the bad frame's offset.
    with open(path, "r+b") as handle:
        handle.seek(good[1][0] + 8)
        byte = handle.read(1)
        handle.seek(good[1][0] + 8)
        handle.write(bytes([byte[0] ^ 0xFF]))
    assert [r["t"] for _o, _e, r in read_frames(path)] == ["begin"]
    with pytest.raises(CorruptWal) as info:
        list(read_frames(path, strict=True))
    assert info.value.path == path
    assert info.value.offset == good[1][0]


def test_fsync_policy_validation(tmp_path):
    with pytest.raises(ValueError):
        _wal(tmp_path, fsync="sometimes")
    with pytest.raises(ValueError):
        _wal(tmp_path, fsync="batch", sync_every=0)


def test_abandon_keeps_written_bytes_visible(tmp_path):
    # os.write is unbuffered: an abandoned (crash-simulated) WAL still
    # shows every appended frame on reopen — same-OS crash semantics.
    wal = _wal(tmp_path, fsync="off")
    wal.commit(wal.begin(["p(a)."], []))
    wal.abandon()
    assert wal.closed
    reopened = _wal(tmp_path, fsync="off")
    assert [b.inserts for b in reopened.committed] == [["p(a)."]]
    reopened.close()


def test_committed_batch_repr(tmp_path):
    batch = CommittedBatch(3, ["a.", "b."], ["c."])
    assert repr(batch) == "CommittedBatch(txn=3, +2, -1)"
