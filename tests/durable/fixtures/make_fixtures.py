"""Regenerate the committed corruption fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/durable/fixtures/make_fixtures.py

The WAL fixtures are JSON-framed and stable across Python versions, so
they are committed as binaries.  Snapshot fixtures are committed only in
*corrupt* form (bad magic, bad CRC, truncated): a *valid* snapshot body
is :mod:`marshal` data, which is not stable across Python versions, and
every committed snapshot fixture must keep failing validation the same
way everywhere — which magic/CRC/length checks guarantee.
"""

import os
import struct
import sys
from zlib import crc32

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "..", "src"))

from repro.durable.snapshot import MAGIC, _TRAILER  # noqa: E402
from repro.durable.wal import _frame  # noqa: E402


def _write(name, data):
    path = os.path.join(HERE, name)
    with open(path, "wb") as handle:
        handle.write(data)
    print("wrote %s (%d bytes)" % (name, len(data)))


def main():
    committed = (
        _frame({"t": "begin", "x": 1})
        + _frame({"t": "ins", "f": ["e(c, d)."]})
        + _frame({"t": "commit", "x": 1})
        + _frame({"t": "begin", "x": 2})
        + _frame({"t": "ins", "f": ["e(d, e)."]})
        + _frame({"t": "ret", "f": ["e(a, b)."]})
        + _frame({"t": "commit", "x": 2})
    )
    # A torn tail: a dangling begin plus a partial frame, as a crash
    # mid-append would leave.  Recovery must truncate at the dangling
    # frames' end... no: the dangling begin is a *valid* frame, so only
    # the partial frame is cut; the uncommitted txn 3 is skipped.
    dangling = _frame({"t": "begin", "x": 3})
    partial = _frame({"t": "ins", "f": ["e(x, y)."]})[:-7]
    _write("torn_tail.wal", committed + dangling + partial)

    # A bad CRC mid-file: everything after the flipped frame is
    # unreachable; lenient reads stop there, strict reads raise.
    frames = committed
    flip_at = len(_frame({"t": "begin", "x": 1})) + 9
    mangled = bytearray(frames)
    mangled[flip_at] ^= 0xFF
    _write("bad_crc.wal", bytes(mangled))

    # Corrupt snapshots: each must fail validation identically on every
    # Python version (the checks are pure magic/length/CRC).
    fake_body = b"this is not a marshal payload"
    _write("bad_magic.snap",
           b"XSNAPX\0\n"
           + _TRAILER.pack(crc32(fake_body) & 0xFFFFFFFF, len(fake_body))
           + fake_body)
    _write("bad_crc.snap",
           MAGIC + _TRAILER.pack(0xDEADBEEF, len(fake_body)) + fake_body)
    _write("truncated.snap",
           (MAGIC + _TRAILER.pack(crc32(fake_body) & 0xFFFFFFFF,
                                  len(fake_body)) + fake_body)[:len(MAGIC) + 4])


if __name__ == "__main__":
    main()
