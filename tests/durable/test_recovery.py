"""Recovery integration tests through the public session API: clean
reopen, crash reopen, corrupt-snapshot fallback, WAL-only degradation,
the single-writer lock and recovery provenance/metrics."""

import os

import pytest

from repro.db import DatabaseSession
from repro.db.session import SessionError
from repro.durable.snapshot import list_snapshots
from repro.hilog.errors import CorruptSnapshot, DurabilityError, LockHeld
from repro.obs.metrics import get_registry

TC = """
    e(a, b). e(b, c).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

WIN_MOVE = """
    move(a, b). move(b, a). move(c, d).
    win(X) :- move(X, Y), not win(Y).
"""


def _dir(tmp_path):
    return str(tmp_path / "data")


def test_fresh_directory_gets_initial_checkpoint(tmp_path):
    with DatabaseSession(TC, path=_dir(tmp_path)) as session:
        assert session.ask("tc(a, c)")
        assert list_snapshots(_dir(tmp_path))
        assert os.path.isfile(os.path.join(_dir(tmp_path), "program.hilog"))


def test_clean_close_and_reopen_round_trips(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path))
    session.insert("e(c, d).")
    session.retract("e(a, b).")
    expected_true = set(session.true)
    expected_edb = session.edb()
    session.close()

    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert recovered.edb() == expected_edb
    assert set(recovered.true) == expected_true
    info = recovered.stats()["durability"]
    # Clean shutdown checkpointed: nothing left to replay.
    assert info["replayed_txns"] == 0
    recovered.close()


def test_crash_reopen_replays_wal_tail(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path), fsync="always")
    session.insert("e(c, d).")
    session.insert("e(d, e).")
    expected_true = set(session.true)
    expected_edb = session.edb()
    session._durable.abandon()  # simulate a kill: no final checkpoint

    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert recovered.edb() == expected_edb
    assert set(recovered.true) == expected_true
    info = recovered.stats()["durability"]
    assert info["replayed_txns"] == 2
    assert info["snapshot_txn"] == 0
    recovered.close()


def test_recovery_falls_back_past_corrupt_snapshot(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path), fsync="always")
    session.insert("e(c, d).")
    session.checkpoint()
    session.insert("e(d, e).")
    expected_edb = session.edb()
    session._durable.abandon()

    snapshots = list_snapshots(_dir(tmp_path))
    assert len(snapshots) == 2
    newest = snapshots[0][1]
    with open(newest, "r+b") as handle:
        handle.seek(20)
        handle.write(b"\xff" * 8)

    before = get_registry().counter(
        "repro_recovery_corrupt_snapshots",
        "Snapshots skipped as corrupt during recovery", family="durable",
    ).value
    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert recovered.edb() == expected_edb
    info = recovered.stats()["durability"]
    assert len(info["corrupt_snapshots"]) == 1
    assert info["snapshot_txn"] == 0  # the older (initial) snapshot
    assert info["replayed_txns"] == 2
    after = get_registry().counter(
        "repro_recovery_corrupt_snapshots",
        "Snapshots skipped as corrupt during recovery", family="durable",
    ).value
    assert after == before + 1
    recovered.close()


def test_recovery_without_any_snapshot_replays_whole_wal(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path), fsync="always")
    session.insert("e(c, d).")
    expected_true = set(session.true)
    session._durable.abandon()
    for _txn, path in list_snapshots(_dir(tmp_path)):
        os.unlink(path)

    # Degraded path: rematerialize from program.hilog, replay everything.
    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert set(recovered.true) == expected_true
    assert recovered.stats()["durability"]["snapshot_txn"] is None
    recovered.close()


def test_wellfounded_undefined_partition_survives_recovery(tmp_path):
    session = DatabaseSession(WIN_MOVE, path=_dir(tmp_path), fsync="always")
    session.insert("move(c, d).")
    expected_undef = set(session.undefined)
    expected_true = set(session.true)
    assert expected_undef
    session._durable.abandon()

    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert set(recovered.undefined) == expected_undef
    assert set(recovered.true) == expected_true
    recovered.close()


def test_open_uninitialized_directory_raises(tmp_path):
    with pytest.raises(DurabilityError):
        DatabaseSession.open(_dir(tmp_path))
    # The failed open released the lock.
    DatabaseSession(TC, path=_dir(tmp_path)).close()


def test_constructor_refuses_initialized_directory(tmp_path):
    DatabaseSession(TC, path=_dir(tmp_path)).close()
    with pytest.raises(SessionError, match="recover it"):
        DatabaseSession(TC, path=_dir(tmp_path))


def test_second_opener_fails_fast_with_lock_held(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path))
    with pytest.raises(LockHeld) as info:
        DatabaseSession.open(_dir(tmp_path))
    assert info.value.holder == os.getpid()
    # ... and the constructor path is equally locked out.
    with pytest.raises((LockHeld, SessionError)):
        DatabaseSession(TC, path=_dir(tmp_path))
    session.close()
    # Lock released on close: reopening now succeeds.
    DatabaseSession.open(_dir(tmp_path)).close()


def test_updates_after_close_raise(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path))
    session.close()
    # The in-memory side stays queryable...
    assert session.ask("tc(a, c)")
    # ...but updates raise rather than silently diverging from disk.
    with pytest.raises(SessionError, match="closed"):
        session.insert("e(c, d).")
    recovered = DatabaseSession.open(_dir(tmp_path))
    assert recovered.edb() == session.edb()
    recovered.close()


def test_checkpoint_every_triggers_automatic_snapshots(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path), checkpoint_every=2)
    session.insert("e(c, d).")
    assert session.stats()["durability"]["records_since_checkpoint"] == 1
    session.insert("e(d, e).")  # second record: snapshot fires
    assert session.stats()["durability"]["records_since_checkpoint"] == 0
    assert len(list_snapshots(_dir(tmp_path))) == 2
    session.close()


def test_checkpoint_requires_data_directory():
    session = DatabaseSession(TC)
    with pytest.raises(SessionError):
        session.checkpoint()


def test_failed_update_logs_abort_and_recovers_clean(tmp_path):
    session = DatabaseSession(TC, path=_dir(tmp_path), fsync="always",
                              max_facts=20)
    session.insert("e(c, d).")
    expected_edb = session.edb()
    from repro.hilog.errors import GroundingError

    with pytest.raises(GroundingError):
        session.insert(" ".join(
            "e(x%d, y%d)." % (i, i) for i in range(40)
        ))
    session._durable.abandon()

    recovered = DatabaseSession.open(_dir(tmp_path), verify=True)
    assert recovered.edb() == expected_edb
    recovered.close()
