"""Kill-and-recover property tests.

For every registered crash point and a hypothesis-generated random op
stream — over both a stratified program (counting + DRed) and a
non-stratified one (win/move, whose well-founded model has an undefined
partition) — the harness:

1. runs the stream against a durable session, with the crash point armed
   to fire after a random number of hits;
2. when the injected :class:`CrashPoint` tears through, abandons the
   session exactly as process death would (descriptors dropped without
   syncing, lock released);
3. recovers with ``DatabaseSession.open(..., verify=True)`` — which ends
   in a full :meth:`check` of the recovered model against a from-scratch
   recomputation (the partitions-vs-oracle comparison);
4. asserts the recovered EDB is one of the **observably consistent
   prefixes**: every batch whose insert/retract call returned must be
   present, every batch whose call never returned must be absent or
   present in full (a commit frame may or may not have reached the file
   before the crash — both are honest), and nothing in between.

Crash points that fire outside the update path (mid-snapshot-write,
mid-replay) are exercised by checkpointing mid-stream and by crashing a
recovery and recovering again.
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import DatabaseSession
from repro.durable.faults import FAULT_POINTS, CrashPoint, arm, disarm

TC_RULES = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

WIN_RULES = """
    reach(X) :- start(X).
    reach(Y) :- reach(X), e(X, Y).
    win(X) :- e(X, Y), not win(Y).
"""

NODES = ("a", "b", "c", "d")

PROGRAMS = {"stratified": TC_RULES, "wellfounded": WIN_RULES}

_facts = ["e(%s, %s)." % (x, y) for x in NODES for y in NODES]
_facts += ["start(%s)." % x for x in NODES[:2]]


def _ops():
    return st.lists(st.sampled_from(_facts), min_size=1, max_size=10)


def _run_stream(session, ops, acknowledged, edb_texts):
    """Toggle each candidate fact; track acknowledged batches and the
    EDB-after-each-acknowledged-batch text sets."""
    for fact in ops:
        text = fact[:-1].strip()
        if fact in edb_texts[-1]:
            session.retract(fact)
            next_set = edb_texts[-1] - {fact}
        else:
            session.insert(fact)
            next_set = edb_texts[-1] | {fact}
        acknowledged.append(fact)
        edb_texts.append(next_set)


def _recovered_edb_texts(session):
    from repro.hilog.pretty import format_term

    return {format_term(atom) + "." for atom in session.edb()}


@pytest.mark.parametrize("point", [p for p in FAULT_POINTS
                                   if p.startswith("wal.")])
@pytest.mark.parametrize("rules_key", sorted(PROGRAMS))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(ops=_ops(), skip=st.integers(min_value=0, max_value=6))
def test_crash_in_wal_path_recovers_to_consistent_prefix(
        tmp_path_factory, point, rules_key, ops, skip):
    directory = str(tmp_path_factory.mktemp("crash"))
    session = DatabaseSession(PROGRAMS[rules_key], path=directory,
                              fsync="always", checkpoint_every=3)
    acknowledged = []
    edb_texts = [set()]
    arm(point, skip=skip)
    crashed = False
    try:
        _run_stream(session, ops, acknowledged, edb_texts)
    except CrashPoint:
        crashed = True
    finally:
        disarm()
        session._durable.abandon()

    recovered = DatabaseSession.open(directory, verify=True)
    try:
        got = _recovered_edb_texts(recovered)
        if crashed:
            # The interrupted batch is all-or-nothing; every acknowledged
            # batch is in.  Both the pre-crash and the crash-batch state
            # are consistent outcomes (the commit frame may have hit the
            # file before the crash point fired).
            assert got in (edb_texts[-1],
                           _next_state(edb_texts[-1], ops, acknowledged))
        else:
            assert got == edb_texts[-1]
    finally:
        recovered.close()


def _next_state(state, ops, acknowledged):
    """The EDB had the crashed batch (the first unacknowledged op)
    committed after all."""
    if len(acknowledged) >= len(ops):
        return state
    fact = ops[len(acknowledged)]
    return state - {fact} if fact in state else state | {fact}


@pytest.mark.parametrize("point", [p for p in FAULT_POINTS
                                   if p.startswith("snapshot.")])
@pytest.mark.parametrize("rules_key", sorted(PROGRAMS))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(ops=_ops())
def test_crash_during_checkpoint_recovers_to_stream_state(
        tmp_path_factory, point, rules_key, ops):
    directory = str(tmp_path_factory.mktemp("crash"))
    session = DatabaseSession(PROGRAMS[rules_key], path=directory,
                              fsync="always")
    acknowledged = []
    edb_texts = [set()]
    _run_stream(session, ops, acknowledged, edb_texts)
    arm(point)
    try:
        with pytest.raises(CrashPoint):
            session.checkpoint()
    finally:
        disarm()
        session._durable.abandon()

    # A crashed checkpoint loses no data: every acknowledged batch is in
    # the WAL, whichever snapshot generation survived.
    recovered = DatabaseSession.open(directory, verify=True)
    try:
        assert _recovered_edb_texts(recovered) == edb_texts[-1]
    finally:
        recovered.close()


@pytest.mark.parametrize("rules_key", sorted(PROGRAMS))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(ops=_ops(), skip=st.integers(min_value=0, max_value=3))
def test_crash_mid_replay_recovers_on_retry(tmp_path_factory, rules_key,
                                            ops, skip):
    directory = str(tmp_path_factory.mktemp("crash"))
    session = DatabaseSession(PROGRAMS[rules_key], path=directory,
                              fsync="always")
    acknowledged = []
    edb_texts = [set()]
    _run_stream(session, ops, acknowledged, edb_texts)
    # Abandon without a checkpoint: recovery has a real WAL tail.
    session._durable.abandon()

    arm("recovery.mid_replay", skip=skip)
    try:
        try:
            interrupted = DatabaseSession.open(directory)
        except CrashPoint:
            pass  # crashed mid-replay; the failed open released the lock
        else:
            interrupted.close()  # tail shorter than skip: no crash
    finally:
        disarm()

    recovered = DatabaseSession.open(directory, verify=True)
    try:
        assert _recovered_edb_texts(recovered) == edb_texts[-1]
    finally:
        recovered.close()
