"""End-to-end integration tests across modules.

Each test exercises a full pipeline the way a downstream user would: parse a
program, check its syntactic class, evaluate it with more than one strategy
and compare the results.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    answer_query,
    hilog_well_founded_model,
    is_strongly_range_restricted,
    magic_evaluate,
    modularly_stratified_for_hilog,
    parse_program,
    parse_query,
    parse_term,
)
from repro.core.modular import perfect_model_for_hilog
from repro.workloads.games import hilog_game_program, multi_game_program, normal_game_program
from repro.workloads.graphs import chain_edges, random_dag_edges

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPipelines:
    def test_game_pipeline_all_strategies_agree(self):
        edges = random_dag_edges(30, 60, seed=5)
        program = hilog_game_program({"m": edges})
        assert is_strongly_range_restricted(program)

        wfs = hilog_well_founded_model(program)
        figure1 = perfect_model_for_hilog(program)
        assert wfs.true == figure1.true

        # Query-driven evaluation agrees position by position.
        winners = {atom for atom in wfs.true if repr(atom).startswith("winning")}
        sampled = sorted(winners, key=repr)[:5]
        for atom in sampled:
            answers = answer_query(program, (parse_query(repr(atom) + ".")[0],))
            assert atom in answers

    def test_normal_and_hilog_game_agree(self):
        edges = chain_edges(10)
        normal = normal_game_program(edges)
        hilog = hilog_game_program({"move": edges}, game_name="game", winning_name="winning")
        normal_model = hilog_well_founded_model(normal)
        hilog_model = hilog_well_founded_model(hilog)
        for node, _target in edges:
            assert normal_model.is_true(parse_term("winning(%s)" % node)) == \
                hilog_model.is_true(parse_term("winning(move)(%s)" % node))

    def test_magic_and_exhaustive_agree_on_multi_game(self):
        program, relations = multi_game_program(
            [chain_edges(8, "a"), chain_edges(9, "b"), chain_edges(7, "c")]
        )
        full = hilog_well_founded_model(program)
        for relation, prefix in zip(relations, ["a", "b", "c"]):
            query = parse_query("w(%s)(%s0)" % (relation, prefix))
            result = magic_evaluate(program, query)
            atom = parse_term("w(%s)(%s0)" % (relation, prefix))
            assert (atom in result.answers) == full.is_true(atom)

    def test_mixed_program_with_builtins_and_negation(self):
        program = parse_program("""
            price(apple, 3). price(pear, 5). price(kiwi, 9).
            cheap(X) :- price(X, P), P < 5.
            treat(X) :- price(X, P), not cheap(X), P < 10.
            double(X, D) :- price(X, P), D is P * 2.
        """)
        model = hilog_well_founded_model(program)
        assert model.is_true(parse_term("cheap(apple)"))
        assert model.is_true(parse_term("treat(pear)"))
        assert model.is_false(parse_term("treat(apple)"))
        assert model.is_true(parse_term("double(kiwi, 18)"))
        result = modularly_stratified_for_hilog(program)
        assert result.is_modularly_stratified


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "generic_transitive_closure.py",
    "parts_explosion.py",
    "preservation_and_semantics.py",
    "magic_sets_query.py",
])
def test_examples_run(script):
    """Every shipped example runs to completion."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
