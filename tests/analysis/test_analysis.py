"""Tests for the comparison and reporting helpers."""

from repro.analysis.compare import compare_interpretations, hilog_vs_normal_reduction
from repro.analysis.report import ExperimentRow, format_table, print_table
from repro.engine.interpretation import Interpretation
from repro.hilog.parser import parse_program, parse_term


def atoms(*texts):
    return [parse_term(text) for text in texts]


class TestCompareInterpretations:
    def test_equal(self):
        first = Interpretation(atoms("p(a)"), atoms("p(b)"))
        second = Interpretation(atoms("p(a)"), atoms("p(b)"))
        assert compare_interpretations(first, second).equal

    def test_differences_reported(self):
        first = Interpretation(atoms("p(a)"), atoms("p(b)"))
        second = Interpretation(atoms("p(b)"), atoms("p(a)"))
        result = compare_interpretations(first, second)
        assert not result.equal
        assert parse_term("p(a)") in result.only_true_in_first
        assert parse_term("p(b)") in result.only_true_in_second

    def test_undefined_disagreements(self):
        first = Interpretation(atoms("p(a)"), [], base=atoms("p(a)", "p(b)"))
        second = Interpretation(atoms("p(a)"), atoms("p(b)"), base=atoms("p(a)", "p(b)"))
        result = compare_interpretations(first, second)
        assert parse_term("p(b)") in result.undefined_disagreements


class TestReductionHelper:
    def test_reduction_on_small_program(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). r(b).")
        check = hilog_vs_normal_reduction(program)
        assert check.well_founded_conservative
        assert check.stable_correspondence
        assert check.normal_model.is_true(parse_term("p(a)"))


class TestReport:
    def test_format_table(self):
        rows = [
            ExperimentRow("row1", {"atoms": 10, "time": 0.5}),
            ExperimentRow("row2", {"atoms": 20, "time": 1.25}),
        ]
        text = format_table("Demo", ["case", "atoms", "time"], rows)
        assert "Demo" in text
        assert "row1" in text
        assert "20" in text
        assert "1.2500" in text

    def test_print_table_returns_text(self, capsys):
        rows = [ExperimentRow("only", {"n": 1})]
        text = print_table("T", ["case", "n"], rows)
        captured = capsys.readouterr()
        assert "only" in captured.out
        assert "only" in text
