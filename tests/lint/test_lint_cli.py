"""The ``python -m repro.lint`` CLI: exit codes, renderers, filters, and
the ``repro.serve lint`` passthrough."""

import json

import pytest

from repro.lint import validate_report
from repro.lint.cli import main as lint_main
from repro.serve.cli import main as serve_main

CLEAN = "edge(a, b).\ntc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
BROKEN = "q(a).\np(X) :- q(Y).\n"
WARNING_ONLY = "q(a, b).\np(X) :- q(X, Extra).\n"


@pytest.fixture
def programs(tmp_path):
    paths = {}
    for name, text in (("clean", CLEAN), ("broken", BROKEN),
                       ("warn", WARNING_ONLY)):
        path = tmp_path / ("%s.hilog" % name)
        path.write_text(text, encoding="utf-8")
        paths[name] = str(path)
    return paths


class TestExitCodes:
    def test_clean_exits_zero(self, programs, capsys):
        assert lint_main([programs["clean"]]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_warnings_alone_stay_green(self, programs, capsys):
        assert lint_main([programs["warn"]]) == 0
        assert "W201" in capsys.readouterr().out

    def test_errors_exit_one(self, programs, capsys):
        assert lint_main([programs["broken"]]) == 1
        assert "E101" in capsys.readouterr().out

    def test_parse_failure_is_e001_and_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.hilog"
        path.write_text("p(a", encoding="utf-8")
        assert lint_main([str(path)]) == 1
        assert "E001" in capsys.readouterr().out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent.hilog")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_code_exits_two(self, programs, capsys):
        assert lint_main([programs["clean"], "--select", "E987"]) == 2
        assert "unknown diagnostic code" in capsys.readouterr().err


class TestJsonOutput:
    def test_document_matches_schema(self, programs, capsys):
        assert lint_main([programs["broken"], "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        validate_report(document)
        assert document["errors"] >= 1
        codes = {d["code"] for d in document["diagnostics"]}
        assert "E101" in codes

    def test_multiple_files_combine(self, programs, capsys):
        assert lint_main([programs["clean"], programs["warn"],
                          "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        validate_report(document)
        files = {d["file"] for d in document["diagnostics"]}
        assert files == {programs["warn"]}


class TestFilters:
    def test_ignore_suppresses_the_error_and_exit_goes_green(self, programs, capsys):
        assert lint_main([programs["broken"], "--ignore", "E101"]) == 0

    def test_select_prefix(self, programs, capsys):
        assert lint_main([programs["warn"], "--select", "W2",
                          "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert {d["code"] for d in document["diagnostics"]} == {"W201"}

    def test_comma_separated_and_repeated(self, programs, capsys):
        code = lint_main([programs["broken"], "--ignore", "E101,W403",
                          "--ignore", "W401"])
        assert code == 0


class TestServePassthrough:
    def test_serve_lint_subcommand(self, programs, capsys):
        assert serve_main(["lint", programs["clean"]]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_serve_lint_forwards_flags_and_exit_codes(self, programs, capsys):
        assert serve_main(["lint", programs["broken"],
                           "--format", "json"]) == 1
        validate_report(json.loads(capsys.readouterr().out))
