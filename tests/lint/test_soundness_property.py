"""Linter soundness (hypothesis): on randomly composed programs, a clean
lint report guarantees the engine accepts the program.

One property, stated as its contrapositive so a single assertion covers
both directions the CI gate cares about:

* a program the linter passes **without errors** must materialize in a
  :class:`DatabaseSession` without raising, and
* a program the engine **rejects** must carry at least one lint error.

Programs are composed from a template pool mixing the repository's safe
shapes (closure, stratified and unstratified negation) with deliberately
broken ones (unsafe head/negation variables, unbound predicate names,
non-ground facts, certain aggregate recursion).  Aggregate templates with
*data-dependent* termination are excluded on purpose: their W503 warning
is exactly the class where lint-clean does not imply evaluation success.
"""

from hypothesis import given, settings, strategies as st

from repro.db.session import DatabaseSession
from repro.hilog.errors import HiLogError
from repro.lint import lint_source

FACTS = "e(a, b). e(b, c). e(c, a). n(a). q(a). v(1). v(2)."

#: Rule templates: safe shapes first, broken ones after.  Every broken
#: template trips at least one E-code statically.
TEMPLATES = (
    "p(X) :- e(X, Y).",
    "tc(X, Y) :- e(X, Y).",
    "tc(X, Z) :- e(X, Y), tc(Y, Z).",
    "w(X) :- e(X, Y), not w(Y).",
    "o(X, Y) :- e(X, Y), not tc(Y, X).",
    "tot(N) :- N = sum(P : v(P)).",
    "bad_head(X) :- e(Y, Z).",
    "bad_neg(X) :- e(X, Y), not q(Z).",
    "bad_name(X) :- e(X, Y2), F(X).",
    "bad_fact(X).",
    "bad_agg(X, N) :- n(X), N = sum(V : bad_agg(X, V)).",
)


@given(st.lists(st.sampled_from(TEMPLATES), min_size=0, max_size=6,
                unique=True))
@settings(max_examples=60, deadline=None)
def test_lint_clean_programs_evaluate_and_rejected_programs_lint_dirty(rules):
    text = FACTS + " " + " ".join(rules)
    report = lint_source(text)
    try:
        session = DatabaseSession(text, max_facts=5000)
    except HiLogError:
        assert report.has_errors(), (
            "engine rejected a program the linter passed:\n%s" % text
        )
    else:
        # The engine accepted it; nothing to assert beyond reaching here —
        # but a clean report must never coexist with a raise above.
        session.stats()
