"""Load-time validation: ``DatabaseSession(validate=...)`` and the serve
CLI's strict startup rejection."""

import warnings

import pytest

from repro.db.session import DatabaseSession
from repro.hilog.errors import DiagnosticError
from repro.serve.session import ServingSession

CLEAN = "edge(a, b). tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z)."
BROKEN = "q(a). p(X) :- q(Y)."
WARNING_ONLY = "q(a, b). p(X) :- q(X, Extra)."


class TestValidateModes:
    def test_off_is_default_and_skips_linting(self):
        session = DatabaseSession(WARNING_ONLY)
        assert session.diagnostics is None
        assert "lint" not in session.stats()

    def test_off_leaves_unsafe_rules_to_the_engine(self):
        # Without validation the unsafe rule reaches materialization and
        # fails there — strict mode turns that into a load-time report.
        from repro.hilog.errors import GroundingError

        with pytest.raises(GroundingError):
            DatabaseSession(BROKEN)

    def test_strict_raises_on_errors(self):
        with pytest.raises(DiagnosticError) as info:
            DatabaseSession(BROKEN, validate="strict")
        report = info.value.diagnostics
        assert report.has_errors()
        assert "E101" in [d.code for d in report.errors]
        assert "E101" in str(info.value)

    def test_strict_accepts_clean_programs(self):
        session = DatabaseSession(CLEAN, validate="strict")
        assert not session.diagnostics.has_errors()
        assert session.stats()["lint"] == {"errors": 0, "warnings": 0}

    def test_strict_tolerates_warnings(self):
        session = DatabaseSession(WARNING_ONLY, validate="strict")
        assert len(session.diagnostics.warnings) == 1

    def test_warn_emits_user_warning_and_proceeds(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = DatabaseSession(WARNING_ONLY, validate="warn")
        assert len(caught) == 1
        assert "W201" in str(caught[0].message)
        assert session.value("p(a)") == "true"

    def test_warn_is_silent_on_clean_programs(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DatabaseSession(CLEAN, validate="warn")
        assert caught == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="validate"):
            DatabaseSession(CLEAN, validate="paranoid")


class TestDurableAndServing:
    def test_open_threads_validate_through_recovery(self, tmp_path):
        data = str(tmp_path / "data")
        DatabaseSession(CLEAN, path=data).close()
        session = DatabaseSession.open(data, validate="strict")
        try:
            assert session.diagnostics is not None
            assert not session.diagnostics.has_errors()
        finally:
            session.close()

    def test_serving_session_forwards_validate(self):
        with pytest.raises(DiagnosticError):
            ServingSession(BROKEN, validate="strict")
        serving = ServingSession(CLEAN, validate="strict")
        try:
            assert not serving.session.diagnostics.has_errors()
        finally:
            serving.close()


class TestServeCliStrictStartup:
    def test_strict_startup_refuses_broken_program(self, tmp_path, capsys):
        from repro.serve.cli import main as serve_main

        path = tmp_path / "broken.hilog"
        path.write_text(BROKEN, encoding="utf-8")
        with pytest.raises(SystemExit) as info:
            serve_main(["serve", str(path), "--validate", "strict",
                        "--port", "0"])
        assert "refusing to serve" in str(info.value)
        assert "E101" in str(info.value)
