"""The defect corpus: one program per diagnostic code.

Every ``tests/lint/corpus/*.hilog`` file starts with a header comment
``% expect: CODE LINE:COL``; the linter must report exactly that code at
exactly that source position.  The corpus is the regression net for the
code registry — a check whose span drifts (or stops firing) fails here
with the file name in the test id.
"""

import re
from pathlib import Path

import pytest

from repro.lint import CODES, lint_file

CORPUS = Path(__file__).parent / "corpus"
FILES = sorted(CORPUS.glob("*.hilog"))

EXPECT = re.compile(r"% expect: (\S+) (\d+):(\d+)")


def _expectation(path):
    match = EXPECT.match(path.read_text(encoding="utf-8"))
    assert match, "%s lacks a '%% expect: CODE LINE:COL' header" % path.name
    return match.group(1), int(match.group(2)), int(match.group(3))


def test_corpus_is_complete():
    """Every registered code has a corpus program (and E001 means the
    corpus also exercises the parse-failure path)."""
    covered = {_expectation(path)[0] for path in FILES}
    assert covered == set(CODES), (
        "codes without a corpus program: %s; stale corpus programs: %s"
        % (sorted(set(CODES) - covered), sorted(covered - set(CODES)))
    )


def test_corpus_has_at_least_twelve_programs():
    assert len(FILES) >= 12


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_program_fires_expected_code_at_expected_span(path):
    code, line, column = _expectation(path)
    report = lint_file(path)
    hits = [
        (d.code, d.span.line if d.span else None,
         d.span.column if d.span else None)
        for d in report
    ]
    assert (code, line, column) in hits, (
        "%s: expected %s at %d:%d, got %s" % (path.name, code, line, column, hits)
    )


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_filename_matches_code(path):
    code, _, _ = _expectation(path)
    assert path.name.startswith(code.lower() + "_")


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_severity_consistency(path):
    """Error-corpus files make the report error-bearing; warning-corpus
    files must not (zero false-positive errors on warning examples)."""
    code, _, _ = _expectation(path)
    report = lint_file(path)
    if code.startswith("E"):
        assert report.has_errors()
    else:
        assert not report.has_errors(), (
            "%s: unexpected errors %s" % (path.name, [d.code for d in report.errors])
        )
