"""Per-check behavior on targeted programs: true positives with accurate
spans, and the false-positive guards the checks were designed around."""

from repro.lint import lint_source
from repro.workloads import (
    bicycle_parts_program,
    hilog_closure_program,
    parts_explosion_program,
    transitive_closure_program,
)
from repro.lint.linter import lint_program


def codes(text):
    return [d.code for d in lint_source(text)]


def spans(text, code):
    return [
        (d.span.line, d.span.column)
        for d in lint_source(text)
        if d.code == code and d.span is not None
    ]


class TestSafety:
    def test_unsafe_head_variable(self):
        assert codes("q(a). p(X) :- q(Y).") == ["E101"]

    def test_unsafe_negation_span_points_at_literal(self):
        text = "q(a). r(a).\np(X) :- q(X), not r(Y)."
        assert spans(text, "E102") == [(2, 15)]

    def test_head_name_variables_satisfy_condition_two(self):
        # Definition 5.5 condition 2 allows negation variables bound by
        # the head *name*; the planner still flounders (E106), but the
        # rule is not E102-unsafe.
        report = lint_source("q(a). p(X)(y) :- not q(X).")
        assert [d.code for d in report.errors] == ["E106"]

    def test_nonground_fact(self):
        assert "E105" in codes("p(X).")

    def test_name_ordering_binds_predicate_variables(self):
        # closure(hilog)(X, Y): the higher-order TC program is the
        # paper's range-restricted showcase — no errors.
        report = lint_program(hilog_closure_program({"g": [("a", "b")]}))
        assert not report.has_errors()

    def test_unbound_predicate_name(self):
        assert "E103" in codes("q(a). p(X) :- q(X), Y(X).")


class TestStratification:
    def test_negation_cycle_is_warning_with_witness(self):
        report = lint_source(
            "move(a, b). move(b, a).\nwin(X) :- move(X, Y), not win(Y)."
        )
        [finding] = [d for d in report if d.code == "W501"]
        assert "win/1" in finding.message
        assert not report.has_errors()

    def test_stratified_negation_is_clean(self):
        assert codes(
            "e(a, b). t(X, Y) :- e(X, Y). o(X, Y) :- e(X, Y), not t(Y, X)."
        ) == []

    def test_certain_aggregate_self_recursion_is_error(self):
        text = "base(a).\ntotal(X, N) :- base(X), N = sum(V : total(X, V))."
        assert spans(text, "E104") == [(2, 25)]

    def test_data_dependent_aggregate_recursion_is_warning(self):
        # The condition's first argument W is bound by the body, so the
        # ground instance can be acyclic (modular stratification).
        text = "next(a, b).\ns(X, N) :- next(X, W), N = sum(V : s(W, V))."
        report = lint_source(text)
        assert [d.code for d in report.errors] == []
        assert "W503" in [d.code for d in report]

    def test_parts_explosion_showcase_has_no_errors(self):
        for program in (bicycle_parts_program(),
                        parts_explosion_program(
                            {"m": {"rel": [("w", "p", 2)]}})):
            report = lint_program(program)
            assert not report.has_errors(), [d.code for d in report.errors]
            assert "W503" in [d.code for d in report]


class TestHygiene:
    def test_singleton_variables_reported_once_per_rule(self):
        report = lint_source("q(a, b). p(X) :- q(X, Extra).")
        [finding] = list(report)
        assert finding.code == "W201" and "Extra" in finding.message

    def test_underscore_prefix_suppresses_singleton(self):
        assert codes("q(a, b). p(X) :- q(X, _extra).") == []

    def test_duplicate_rule_alpha_equivalence(self):
        report = lint_source("q(a). p(X) :- q(X).\np(Y) :- q(Y).")
        assert [d.code for d in report] == ["W301"]

    def test_subsumed_rule(self):
        text = "q(a). r(a). p(X) :- q(X).\np(X) :- q(X), r(X)."
        assert spans(text, "W302") == [(2, 1)]

    def test_transitive_closure_is_not_subsumed(self):
        # tc(X,Z) :- e(X,Y), tc(Y,Z) shares a head and a first body
        # literal with tc(X,Y) :- e(X,Y) but is NOT an instance of it —
        # the guard against over-eager one-sided matching.
        report = lint_program(transitive_closure_program([("a", "b")]))
        assert [d.code for d in report] == []

    def test_arity_mismatch(self):
        assert "W303" in codes("q(a). q(a, b). p(X) :- q(X).")


class TestLiveness:
    def test_undefined_predicate(self):
        assert "W401" in codes("q(a). p(X) :- q(X), missing(X).")

    def test_unused_edb_relation(self):
        assert "W402" in codes("unused(a). q(b). p(X) :- q(X).")

    def test_fact_only_program_has_no_unused_warning(self):
        # A pure EDB (no proper rules) is a fact base, not dead code.
        assert codes("a(1). b(2).") == []

    def test_underivable_idb(self):
        assert "W403" in codes("q(a). p(X) :- q(X), missing(X).")

    def test_higher_order_reference_keeps_predicates_alive(self):
        # closure(P)(X, Y) :- P(X, Y): the non-ground name P may refer to
        # any binary relation, so no W402/W401 for edge/2.
        report = lint_program(hilog_closure_program({"g": [("a", "b")]}))
        assert "W402" not in [d.code for d in report]


class TestPlans:
    def test_cross_product_join(self):
        text = "q(a). r(b).\np(X, Y) :- q(X), r(Y)."
        assert spans(text, "W502") == [(2, 18)]

    def test_joined_literals_are_not_cross_products(self):
        assert codes("q(a, b). r(b, c). p(X, Z) :- q(X, Y), r(Y, Z).") == []

    def test_nonground_aggregate_name(self):
        assert "E107" in codes("q(a). p(N) :- q(V), N = sum(Z : V(Z)).")
