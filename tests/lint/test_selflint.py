"""The CI self-lint gate over the repository's own programs."""

import json

import pytest

from repro.lint import selflint


def test_shipped_programs_have_no_lint_errors():
    errors, _ = selflint.collect()
    assert errors == []


def test_snapshot_is_committed_and_current(capsys):
    assert selflint.main([]) == 0
    assert "self-lint OK" in capsys.readouterr().out


def test_covers_examples_and_workloads():
    names = [name for name, _ in selflint.iter_programs()]
    assert any(name.startswith("examples/") for name in names)
    assert any(name.startswith("workloads:") for name in names)
    assert len(names) >= 20


def test_workload_inputs_are_deterministic():
    first = sorted(selflint.collect()[1], key=repr)
    second = sorted(selflint.collect()[1], key=repr)
    assert first == second


class TestGateMechanics:
    @pytest.fixture
    def snapshot(self, tmp_path, monkeypatch):
        path = tmp_path / "expected_warnings.json"
        monkeypatch.setattr(selflint, "SNAPSHOT_PATH", path)
        return path

    def test_missing_snapshot_fails(self, snapshot, capsys):
        assert selflint.main([]) == 1
        assert "no snapshot" in capsys.readouterr().out

    def test_update_writes_then_gate_passes(self, snapshot, capsys):
        assert selflint.main(["--update"]) == 0
        assert snapshot.exists()
        assert selflint.main([]) == 0

    def test_divergence_fails_with_diff(self, snapshot, capsys):
        selflint.main(["--update"])
        document = json.loads(snapshot.read_text())
        document["warnings"].append(
            {"source": "examples/ghost.py:1", "code": "W201",
             "line": 1, "column": 1}
        )
        snapshot.write_text(json.dumps(document))
        assert selflint.main([]) == 1
        out = capsys.readouterr().out
        assert "- examples/ghost.py:1: W201" in out
