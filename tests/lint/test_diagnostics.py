"""Diagnostics data model: code registry, report container, renderers,
filters, and the JSON schema contract."""

import pytest

from repro.hilog.program import Span
from repro.lint import (
    CODES,
    Diagnostics,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    make_diagnostic,
    validate_report,
)


class TestCodeRegistry:
    def test_codes_are_well_formed(self):
        for code, entry in CODES.items():
            assert entry.code == code
            assert code[0] in ("E", "W") and code[1:].isdigit()
            assert entry.severity == (
                SEVERITY_ERROR if code.startswith("E") else SEVERITY_WARNING
            )
            assert entry.slug and entry.summary

    def test_slugs_are_unique(self):
        slugs = [entry.slug for entry in CODES.values()]
        assert len(slugs) == len(set(slugs))


class TestDiagnostic:
    def test_make_derives_severity(self):
        assert make_diagnostic("E101", "m").severity == SEVERITY_ERROR
        assert make_diagnostic("W201", "m").severity == SEVERITY_WARNING

    def test_make_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            make_diagnostic("E999", "m")

    def test_location(self):
        d = make_diagnostic("E101", "m", span=Span(3, 7), file="prog.hilog")
        assert d.location() == "prog.hilog:3:7"
        assert make_diagnostic("E101", "m").location() == "<program>"

    def test_text_rendering_includes_rule_and_hint(self):
        d = make_diagnostic("W201", "msg", span=Span(1, 2), rule="p.", hint="use _")
        text = d.to_text()
        assert "W201" in text and "singleton-var" in text
        assert "rule: p." in text and "hint: use _" in text


class TestDiagnosticsReport:
    def _sample(self):
        return Diagnostics([
            make_diagnostic("W201", "w", span=Span(5, 1)),
            make_diagnostic("E101", "e", span=Span(2, 1)),
            make_diagnostic("W501", "w2", span=Span(2, 9)),
        ])

    def test_sorted_by_position(self):
        assert [d.code for d in self._sample()] == ["E101", "W501", "W201"]

    def test_splits_and_truthiness(self):
        report = self._sample()
        assert report and len(report) == 3
        assert [d.code for d in report.errors] == ["E101"]
        assert {d.code for d in report.warnings} == {"W201", "W501"}
        assert report.has_errors()
        assert not Diagnostics()
        assert not Diagnostics().has_errors()

    def test_add(self):
        combined = Diagnostics([make_diagnostic("E101", "a")]) + Diagnostics(
            [make_diagnostic("W201", "b")]
        )
        assert {d.code for d in combined} == {"E101", "W201"}

    def test_filter_select_by_code_slug_and_prefix(self):
        report = self._sample()
        assert [d.code for d in report.filter(select=["E101"])] == ["E101"]
        assert [d.code for d in report.filter(select=["singleton-var"])] == ["W201"]
        assert {d.code for d in report.filter(select=["W"])} == {"W201", "W501"}
        assert {d.code for d in report.filter(ignore=["W2"])} == {"E101", "W501"}

    def test_filter_unknown_code_raises(self):
        with pytest.raises(ValueError):
            self._sample().filter(select=["E987"])

    def test_text_summary_line(self):
        assert self._sample().to_text().endswith("1 error(s), 2 warning(s)")
        assert Diagnostics().to_text() == "no issues found"


class TestReportSchema:
    def test_roundtrip_validates(self):
        report = Diagnostics([
            make_diagnostic("E101", "e", span=Span(1, 1), file="f", rule="r", hint="h"),
            make_diagnostic("W201", "w"),
        ])
        document = report.to_json()
        assert validate_report(document) is document
        assert document["version"] == 1
        assert document["errors"] == 1 and document["warnings"] == 1

    def test_empty_report_validates(self):
        validate_report(Diagnostics().to_json())

    @pytest.mark.parametrize("mutate, message", [
        (lambda r: r.pop("version"), "missing"),
        (lambda r: r.update(version=2), "version"),
        (lambda r: r.update(errors=-1), "non-negative"),
        (lambda r: r.update(errors=5), "error diagnostics"),
        (lambda r: r["diagnostics"][0].update(code="E999"), "unknown code"),
        (lambda r: r["diagnostics"][0].update(severity="warning"), "severity"),
        (lambda r: r["diagnostics"][0].update(slug="nope"), "slug"),
        (lambda r: r["diagnostics"][0].update(line=0), "positive"),
    ])
    def test_rejects_malformed_documents(self, mutate, message):
        document = Diagnostics([make_diagnostic("E101", "e", span=Span(1, 1))]).to_json()
        mutate(document)
        with pytest.raises(ValueError, match=message):
            validate_report(document)
