"""Unit tests for the epoch layer: frozen snapshots, overlay stores and
the epoch manager's publication/pinning/rebase machinery."""

import pytest

from repro.engine.seminaive.relation import (
    OverlayStore,
    RelationStore,
    predicate_indicator,
)
from repro.hilog.errors import FrozenStoreError
from repro.hilog.parser import parse_term
from repro.hilog.subst import Substitution
from repro.serve.epochs import EpochManager


def atoms(*texts):
    return [parse_term(text) for text in texts]


def base_store(*texts):
    store = RelationStore()
    for atom in atoms(*texts):
        store.add(atom)
    return store


class TestFrozenStore:
    def test_freeze_blocks_every_mutator(self):
        store = base_store("e(a, b)")
        present, absent = atoms("e(a, b)", "e(b, c)")
        store.freeze()
        assert store.frozen
        with pytest.raises(FrozenStoreError):
            store.add(absent)
        with pytest.raises(FrozenStoreError):
            store.remove(present)
        with pytest.raises(FrozenStoreError):
            store.add_support(absent)
        with pytest.raises(FrozenStoreError):
            store.remove_support(present)

    def test_frozen_duplicate_add_still_short_circuits(self):
        # Set semantics win over the freeze guard: re-adding a present atom
        # was always a no-op and stays one (idempotent loaders rely on it).
        store = base_store("e(a, b)")
        store.freeze()
        assert store.add(atoms("e(a, b)")[0]) is False

    def test_frozen_store_still_reads_and_builds_indexes(self):
        store = base_store("e(a, b)", "e(a, c)", "e(b, c)")
        store.freeze()
        e_name, a = atoms("e", "a")
        facts, exact = store.fetch(e_name, 2, (0,), a)
        assert exact and len(facts) == 2  # lazy index built post-freeze

    def test_snapshot_is_independent(self):
        store = base_store("e(a, b)")
        clone = store.snapshot()
        extra = atoms("e(b, c)")[0]
        store.add(extra)
        assert extra not in clone
        clone.add(atoms("e(c, d)")[0])
        assert atoms("e(c, d)")[0] in clone
        assert atoms("e(c, d)")[0] not in store
        assert len(clone) == 2 and len(store) == 2

    def test_refcounts(self):
        store = base_store("e(a, b)")
        assert store.acquire() == 1
        assert store.acquire() == 2
        assert store.release() == 1
        assert store.release() == 0
        assert store.release() == 0  # never below zero


class TestOverlayStore:
    def overlay(self, base, added=(), removed=(), previous=None):
        return OverlayStore(base, atoms(*added), atoms(*removed),
                            previous=previous)

    def test_membership_and_length(self):
        base = base_store("e(a, b)", "e(b, c)").freeze()
        view = self.overlay(base, added=["e(c, d)"], removed=["e(a, b)"])
        kept, gone, new = atoms("e(b, c)", "e(a, b)", "e(c, d)")
        assert kept in view and new in view and gone not in view
        assert len(view) == 2
        assert sorted(map(str, view)) == ["e(b, c)", "e(c, d)"]
        # the base is untouched
        assert gone in base and new not in base

    def test_fetch_filters_and_appends(self):
        base = base_store("e(a, b)", "e(a, c)").freeze()
        view = self.overlay(base, added=["e(a, d)"], removed=["e(a, b)"])
        (e_name,) = atoms("e")
        facts, _exact = view.fetch(e_name, 2, (), None)
        assert sorted(map(str, facts)) == ["e(a, c)", "e(a, d)"]

    def test_facts_and_all_facts(self):
        base = base_store("e(a, b)", "p(x)").freeze()
        view = self.overlay(base, added=["e(b, c)"], removed=["p(x)"])
        (e_name,) = atoms("e")
        assert sorted(map(str, view.facts(e_name, 2))) == [
            "e(a, b)", "e(b, c)"]
        facts, _exact = view.all_facts()
        assert sorted(map(str, facts)) == ["e(a, b)", "e(b, c)"]

    def test_candidates_ground_name(self):
        base = base_store("e(a, b)").freeze()
        view = self.overlay(base, added=["e(b, c)"])
        pattern = parse_term("e(X, Y)")
        result = view.candidates(pattern, Substitution(), ())
        assert sorted(map(str, result)) == ["e(a, b)", "e(b, c)"]

    def test_netting_remove_of_added_cancels(self):
        base = base_store("e(a, b)").freeze()
        first = self.overlay(base, added=["e(b, c)"])
        second = self.overlay(base, removed=["e(b, c)"], previous=first)
        assert atoms("e(b, c)")[0] not in second
        assert second.overlay_size() == 0
        assert len(second) == 1

    def test_netting_add_of_tombstoned_cancels(self):
        base = base_store("e(a, b)").freeze()
        first = self.overlay(base, removed=["e(a, b)"])
        second = self.overlay(base, added=["e(a, b)"], previous=first)
        assert atoms("e(a, b)")[0] in second
        assert second.overlay_size() == 0

    def test_previous_collapses_chains(self):
        base = base_store("e(a, b)").freeze()
        view = self.overlay(base, added=["e(b, c)"])
        for step in range(3):
            view = self.overlay(
                base, added=["f(n%d)" % step], previous=view)
        assert view.base is base  # single overlay, however many batches
        assert len(view) == 5

    def test_previous_must_share_base(self):
        base = base_store("e(a, b)").freeze()
        other = base_store("e(a, b)").freeze()
        first = self.overlay(base, added=["e(b, c)"])
        with pytest.raises(ValueError):
            OverlayStore(other, previous=first)

    def test_pin_roots_cover_base_added_and_tombstones(self):
        base = base_store("e(a, b)").freeze()
        view = self.overlay(base, added=["e(b, c)"], removed=["e(a, b)"])
        roots = set(view.pin_roots())
        for text in ("e(a, b)", "e(b, c)"):
            assert atoms(text)[0] in roots


class TestEpochManager:
    def manager(self, store, **kwargs):
        return EpochManager(store.snapshot, **kwargs)

    def test_publish_base_then_delta(self):
        store = base_store("e(a, b)")
        manager = self.manager(store)
        first = manager.publish_base()
        assert first.is_base() and first.eid == 0
        added = atoms("e(b, c)")
        store.add(added[0])
        second = manager.publish_delta(added, [])
        assert not second.is_base()
        assert added[0] in second and added[0] not in first
        assert manager.current is second

    def test_acquire_release_retires_old_epochs(self):
        store = base_store("e(a, b)")
        manager = self.manager(store)
        first = manager.publish_base()
        pinned = manager.acquire()
        assert pinned is first and first.refs == 1
        second = manager.publish_delta(atoms("e(b, c)"), [])
        assert first.live  # still pinned by the reader
        manager.release(first)
        assert not first.live  # retired: unpinned and not current
        assert second.live
        assert [epoch.eid for epoch in manager.live_epochs()] == [second.eid]

    def test_layer_refcounts_follow_epoch_liveness(self):
        store = base_store("e(a, b)")
        manager = self.manager(store)
        first = manager.publish_base()
        base_layer = first.store
        assert base_layer.refs == 1
        manager.acquire()  # pin the base epoch so it stays live
        second = manager.publish_delta(atoms("e(b, c)"), [])
        # the overlay holds the base too: one ref from each live epoch
        assert base_layer.refs == 2
        third = manager.publish_delta(atoms("e(c, d)"), [])
        # second retired (unpinned, not current); first still pinned
        assert base_layer.refs == 2
        assert third.store.refs == 1
        assert second.store.refs == 0
        manager.release(first)
        assert base_layer.refs == 1  # only third's overlay holds it now

    def test_rebase_after_overlay_outgrows_base(self):
        store = base_store("e(a, b)", "e(b, c)")
        manager = self.manager(store, rebase_ratio=0.5, rebase_min=2)
        manager.publish_base()
        epochs = []
        for step in range(4):
            atom = atoms("f(n%d)" % step)[0]
            store.add(atom)
            epochs.append(manager.publish_delta([atom], []))
        assert manager.stats()["rebases"] >= 1
        assert any(epoch.is_base() for epoch in epochs)
        assert len(epochs[-1]) == 6  # rebasing never changes the contents

    def test_acquire_without_publication_raises(self):
        manager = self.manager(base_store())
        with pytest.raises(RuntimeError):
            manager.acquire()

    def test_close_retires_everything(self):
        store = base_store("e(a, b)")
        manager = self.manager(store)
        epoch = manager.publish_base()
        manager.close()
        assert not epoch.live
        assert manager.current is None
        assert manager.live_epochs() == []
