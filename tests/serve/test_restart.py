"""End-to-end serving restart: kill ``python -m repro.serve`` mid-churn,
restart it against the same ``--data-dir``, and get identical answers.

This is the durability subsystem's full-stack exercise: the HTTP server,
the serving session's coalesced writer batches flowing through the WAL
as group-committed transactions, SIGKILL at an arbitrary moment, and
recovery (snapshot + WAL tail) feeding the next process's epochs.  Also
covers graceful SIGTERM: a final checkpoint means the restarted process
replays nothing.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

TC_PROGRAM = """
    e(a, b). e(b, c).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def _spawn(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve", "--port", "0"]
        + list(args),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_ready(process):
    """Read startup lines until the bound address appears."""
    deadline = time.time() + 20
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                "server exited during startup: %r" % process.stdout.read()
            )
        if "serving" in line:
            return int(line.split(":")[-1].split()[0].rstrip("/"))
    raise AssertionError("server never reported its address")


def _post(port, path, payload, timeout=10):
    request = urllib.request.Request(
        "http://127.0.0.1:%d%s" % (port, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _get(port, path, timeout=10):
    with urllib.request.urlopen(
        "http://127.0.0.1:%d%s" % (port, path), timeout=timeout
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def _reap(process):
    if process.poll() is None:
        process.kill()
    try:
        process.wait(10)
    except subprocess.TimeoutExpired:
        pass


@pytest.mark.parametrize("how", ["sigkill", "sigterm"])
def test_restart_serves_identical_answers(tmp_path, how):
    program = tmp_path / "tc.hilog"
    program.write_text(TC_PROGRAM)
    data_dir = str(tmp_path / "data")

    first = _spawn(str(program), "--data-dir", data_dir,
                   "--fsync", "always", "--checkpoint-every", "3")
    try:
        port = _wait_ready(first)
        # Churn: extend the chain, retract an original edge.
        for fact in ("e(c, d).", "e(d, e).", "e(e, f).", "e(f, g)."):
            _post(port, "/insert", {"facts": fact})
        _post(port, "/retract", {"facts": "e(a, b)."})
        expected = _post(port, "/query", {"query": "tc(X, Y)"})["answers"]
        assert "tc(b, g)" in expected and "tc(a, b)" not in expected

        if how == "sigkill":
            first.send_signal(signal.SIGKILL)  # mid-flight, no goodbye
        else:
            first.send_signal(signal.SIGTERM)  # drain + final checkpoint
        first.wait(15)
    finally:
        _reap(first)

    # Restart against the same directory — no program file needed.
    second = _spawn("--data-dir", data_dir)
    try:
        port = _wait_ready(second)
        health = _get(port, "/healthz")
        assert health["ok"] and health["writer_alive"]
        answers = _post(port, "/query", {"query": "tc(X, Y)"})["answers"]
        assert sorted(answers) == sorted(expected)
        # The restarted server is live, not a read-only replica.
        _post(port, "/insert", {"facts": "e(g, h)."})
        assert _post(port, "/ask", {"atom": "tc(a, h)"})["result"] is False
        assert _post(port, "/ask", {"atom": "tc(b, h)"})["result"] is True
        second.send_signal(signal.SIGTERM)
        second.wait(15)
    finally:
        _reap(second)


def test_lock_held_while_first_server_lives(tmp_path):
    program = tmp_path / "tc.hilog"
    program.write_text(TC_PROGRAM)
    data_dir = str(tmp_path / "data")
    first = _spawn(str(program), "--data-dir", data_dir)
    try:
        _wait_ready(first)
        second = _spawn("--data-dir", data_dir)
        try:
            out = second.communicate(timeout=20)[0]
        finally:
            _reap(second)
        assert second.returncode != 0
        assert "LockHeld" in out or "locked" in out
    finally:
        first.send_signal(signal.SIGTERM)
        _reap(first)
