"""Serving-session tests: writer batching, snapshot isolation under
concurrent reader threads, intern-GC safety for pinned epochs."""

import threading
import time

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import DatabaseSession
from repro.hilog.parser import parse_term
from repro.hilog.terms import App, Sym
from repro.serve import (
    ServeError,
    ServingClosed,
    ServingSession,
    WriteQueueFull,
)

TC_RULES = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

WIN_RULES = """
    win(X) :- move(X, Y), not win(Y).
"""


def answers(reader_or_serving, query):
    return frozenset(map(str, reader_or_serving.query(query)))


class TestBasics:
    def test_submit_and_query(self):
        with ServingSession(TC_RULES + "e(a, b).") as serving:
            assert answers(serving, "tc(a, X)") == {"tc(a, b)"}
            summary = serving.submit(inserts=["e(b, c)."]).result(5)
            assert summary.inserted == 1
            assert answers(serving, "tc(a, X)") == {"tc(a, b)", "tc(a, c)"}
            serving.retract("e(a, b).", timeout=5)
            assert answers(serving, "tc(a, X)") == frozenset()

    def test_wraps_existing_session(self):
        session = DatabaseSession(TC_RULES + "e(a, b).")
        with ServingSession(session) as serving:
            assert serving.session is session
            assert serving.ask("tc(a, b)")
        with pytest.raises(ValueError):
            ServingSession(DatabaseSession("p(a)."), strategy="auto")

    def test_reader_pins_one_epoch(self):
        with ServingSession(TC_RULES + "e(a, b).") as serving:
            with serving.reader() as reader:
                eid = reader.epoch.eid
                before = answers(reader, "tc(a, X)")
                serving.insert("e(b, c).", timeout=5)
                serving.insert("e(c, d).", timeout=5)
                # the pinned reader still answers from its epoch...
                assert answers(reader, "tc(a, X)") == before
                assert reader.epoch.eid == eid
            # ...while a fresh reader sees the new model
            assert answers(serving, "tc(a, X)") == {
                "tc(a, b)", "tc(a, c)", "tc(a, d)"}

    def test_reader_use_after_close_raises(self):
        with ServingSession("p(a).") as serving:
            reader = serving.reader()
            reader.close()
            reader.close()  # idempotent
            with pytest.raises(ServeError):
                reader.query("p(X)")

    def test_coalescing_merges_queued_ops(self):
        with ServingSession(TC_RULES + "e(a, b).") as serving:
            serving.pause()
            futures = [serving.submit(inserts=["e(n%d, n%d)." % (i, i + 1)])
                       for i in range(8)]
            # last-op-wins netting across ops in one batch
            futures.append(serving.submit(inserts=["e(z1, z2)."]))
            futures.append(serving.submit(retracts=["e(z1, z2)."]))
            batches_before = serving.stats()["batches"]
            serving.resume()
            summaries = {id(f.result(5)) for f in futures}
            assert len(summaries) == 1  # one maintenance pass for all ten
            assert serving.stats()["batches"] == batches_before + 1
            assert not serving.ask("e(z1, z2)")
            assert serving.ask("tc(n0, n8)")

    def test_malformed_op_fails_alone(self):
        with ServingSession(TC_RULES + "e(a, b).") as serving:
            serving.pause()
            bad = serving.submit(inserts=["tc(X) :- e(X)."])  # a rule, not facts
            good = serving.submit(inserts=["e(b, c)."])
            serving.resume()
            with pytest.raises(ValueError):
                bad.result(5)
            assert good.result(5).inserted == 1
            assert serving.ask("tc(a, c)")

    def test_backpressure(self):
        with ServingSession("p(a).", max_pending=2) as serving:
            serving.pause()
            serving.submit(inserts=["p(b)."])
            serving.submit(inserts=["p(c)."])
            with pytest.raises(WriteQueueFull) as excinfo:
                serving.submit(inserts=["p(d)."])
            assert excinfo.value.retry_after > 0
            assert serving.stats()["rejected"] == 1
            serving.resume()
            serving.flush(5)
            assert serving.ask("p(c)")

    def test_flush_is_a_barrier(self):
        with ServingSession("p(a).") as serving:
            futures = [serving.submit(inserts=["p(q%d)." % i])
                       for i in range(20)]
            serving.flush(5)
            assert all(future.done() for future in futures)

    def test_closed_session_rejects_ops(self):
        serving = ServingSession("p(a).")
        serving.close()
        serving.close()  # idempotent
        assert serving.closed
        with pytest.raises(ServingClosed):
            serving.submit(inserts=["p(b)."])

    def test_session_stats_and_serving_stats(self):
        with ServingSession(TC_RULES + "e(a, b).") as serving:
            serving.insert("e(b, c).", timeout=5)
            stats = serving.stats()
            assert stats["batches"] == 1
            assert stats["epochs"]["published"] == 2
            assert stats["facts"] == len(serving.session.store)
            inner = serving.session_stats(timeout=5)
            assert inner["updates"] == 1 and inner["mode"] == "incremental"

    def test_wellfounded_epochs_carry_undefined(self):
        program = WIN_RULES + "move(a, b). move(b, a)."
        with ServingSession(program) as serving:
            assert serving.value("win(a)") == "undefined"
            assert serving.value("win(c)") == "false"
            with serving.reader() as reader:
                assert reader.value("win(a)") == "undefined"
                # give a an escape to a dead node: the game settles...
                serving.insert("move(a, c).", timeout=5)
                # ...but the pinned epoch keeps its three-valued verdict
                assert reader.value("win(a)") == "undefined"
            assert serving.value("win(a)") == "true"
            assert serving.value("win(b)") == "false"


class TestInternSafety:
    def test_collect_keeps_pinned_epoch_atoms_canonical(self):
        # Force every publication to rebase to a fresh frozen snapshot, so
        # the post-retract epoch carries no tombstones (an overlay's
        # tombstones deliberately pin the retracted atoms for the overlay's
        # lifetime; a base epoch pins exactly its contents).
        with ServingSession(TC_RULES, rebase_min=0,
                            rebase_ratio=1e-9) as serving:
            # Facts parsed on the writer thread are generation-born: after
            # retraction, the pinned epoch is their only owner.
            serving.insert("e(x0, y0). e(y0, z0).", timeout=5)
            with serving.reader() as reader:
                held = sorted(reader.facts("e", 2), key=repr)
                assert len(held) == 2
                serving.retract("e(x0, y0). e(y0, z0).", timeout=5)
                serving.collect().result(5)
                # identity preserved: a structural rebuild is the same object
                rebuilt = App(Sym("e"), (Sym("x0"), Sym("y0")))
                assert rebuilt is held[0]
                assert held[0] in reader.epoch.store
                assert answers(reader, "tc(x0, X)") == {
                    "tc(x0, y0)", "tc(x0, z0)"}
                keep = held[1]
            # With the reader released the atoms are collectable: the next
            # sweep evicts them, so a rebuild is a fresh twin.
            serving.collect().result(5)
            assert App(Sym("e"), (Sym("y0"), Sym("z0"))) is not keep

    def test_collect_runs_on_writer_thread_under_churn(self):
        with ServingSession(TC_RULES) as serving:
            for i in range(10):
                serving.submit(inserts=["e(c%d, c%d)." % (i, i + 1)])
                if i % 3 == 0:
                    serving.collect()
            serving.flush(10)
            assert serving.ask("tc(c0, c10)")
            assert serving.session.check()


class _ReaderWorker(threading.Thread):
    """Queries the serving session in a loop, checking every answer set
    against the per-epoch oracle and re-checking epoch stability."""

    def __init__(self, serving, oracle, query, stop):
        super().__init__(daemon=True)
        self.serving = serving
        self.oracle = oracle
        self.query = query
        self.stop = stop
        self.checked = 0
        self.violations = []

    def run(self):
        while not self.stop.is_set():
            with self.serving.reader() as reader:
                eid = reader.epoch.eid
                first = answers(reader, self.query)
                expected = self.oracle.get(eid)
                if expected is not None and first != expected:
                    self.violations.append(
                        ("oracle", eid, first, expected))
                # torn-view check: the same pinned epoch must answer
                # identically however much the writer publishes meanwhile
                second = answers(reader, self.query)
                if second != first:
                    self.violations.append(("torn", eid, first, second))
                if reader.epoch.eid != eid:
                    self.violations.append(("moved", eid, reader.epoch.eid))
            self.checked += 1


@st.composite
def churn_batches(draw):
    """A list of update batches over a small edge universe."""
    nodes = ["n%d" % i for i in range(5)]
    edges = ["e(%s, %s)." % (x, y) for x in nodes for y in nodes if x != y]
    return draw(st.lists(
        st.tuples(
            st.lists(st.sampled_from(edges), max_size=4),   # inserts
            st.lists(st.sampled_from(edges), max_size=4),   # retracts
        ),
        min_size=1, max_size=12,
    ))


class TestSnapshotIsolationProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(batches=churn_batches())
    def test_readers_always_see_a_published_epoch(self, batches):
        query = "tc(n0, X)"
        serving = ServingSession(
            TC_RULES + "e(n0, n1). e(n1, n2).", max_batch=4)
        try:
            oracle = {}

            def record(epoch, _summary):
                oracle[epoch.eid] = frozenset(
                    map(str, _query_epoch(epoch, query)))

            # seed the oracle with the initial epoch
            with serving.reader() as reader:
                oracle[reader.epoch.eid] = answers(reader, query)
            serving.add_publish_hook(record)

            stop = threading.Event()
            workers = [_ReaderWorker(serving, oracle, query, stop)
                       for _ in range(4)]
            for worker in workers:
                worker.start()
            for inserts, retracts in batches:
                ins = [fact for fact in inserts if fact not in retracts]
                serving.submit(inserts=ins, retracts=retracts)
            serving.flush(20)
            time.sleep(0.01)
            stop.set()
            for worker in workers:
                worker.join(10)
                assert not worker.is_alive()
                assert worker.violations == [], worker.violations
            # the final epoch agrees with the maintained session
            final = answers(serving, query)
            assert final == frozenset(map(str, serving.session.query(query)))
            assert serving.session.check()
        finally:
            serving.close()


def _query_epoch(epoch, text):
    """Answer a query against a given epoch's store (the publish hook runs
    on the writer thread, where the just-published epoch is current)."""
    from repro.core.magic.evaluate import answer_from_store
    from repro.hilog.parser import parse_query
    from repro.hilog.program import Literal
    from repro.hilog.terms import Term

    query = parse_query(text)
    if isinstance(query, Term):
        query = (Literal(query),)
    else:
        query = tuple(query)
    return answer_from_store(epoch.store, query).answers
