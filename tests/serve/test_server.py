"""HTTP front-end tests: real sockets on an ephemeral port, endpoint
behavior, backpressure mapping, request timeouts and clean shutdown."""

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve import ServingSession
from repro.serve.server import serve

TC_PROGRAM = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    e(a, b). e(b, c).
"""


class RunningServer:
    """Runs the asyncio server on a background thread for the tests."""

    def __init__(self, serving, request_timeout=5.0):
        self.serving = serving
        self._ready = threading.Event()
        self._loop = None
        self._task = None
        self.address = None
        self._thread = threading.Thread(
            target=self._run, args=(request_timeout,), daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server did not start"

    def _run(self, request_timeout):
        asyncio.run(self._main(request_timeout))

    async def _main(self, request_timeout):
        def on_ready(server):
            self.address = server.address
            self._ready.set()

        self._loop = asyncio.get_event_loop()
        self._task = self._loop.create_task(serve(
            self.serving, port=0, request_timeout=request_timeout,
            ready=on_ready,
        ))
        try:
            await self._task
        except asyncio.CancelledError:
            pass

    def stop(self):
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(10)
        assert not self._thread.is_alive(), "server thread did not exit"

    # -- tiny test client ----------------------------------------------------

    def request(self, method, path, payload=None, connection=None):
        conn = connection or http.client.HTTPConnection(*self.address,
                                                        timeout=10)
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        result = (response.status, data, dict(response.getheaders()))
        if connection is None:
            conn.close()
        return result

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, payload, **kwargs):
        return self.request("POST", path, payload, **kwargs)


@pytest.fixture
def server():
    serving = ServingSession(TC_PROGRAM, max_pending=4)
    running = RunningServer(serving)
    try:
        yield running
    finally:
        running.stop()
        serving.close()


class TestEndpoints:
    def test_healthz_and_stats(self, server):
        status, body, _headers = server.get("/healthz")
        assert status == 200 and body == {"ok": True}
        status, body, _headers = server.get("/stats")
        assert status == 200
        assert body["epochs"]["published"] >= 1
        assert body["requests"] >= 1

    def test_query_ask_value(self, server):
        status, body, _headers = server.post("/query", {"query": "tc(a, X)"})
        assert status == 200
        assert sorted(body["answers"]) == ["tc(a, b)", "tc(a, c)"]
        assert body["count"] == 2 and body["epoch"] == 0
        status, body, _headers = server.post("/ask", {"atom": "tc(a, c)"})
        assert status == 200 and body["result"] is True
        status, body, _headers = server.post("/value", {"atom": "tc(c, a)"})
        assert status == 200 and body["value"] == "false"

    def test_insert_then_retract(self, server):
        status, body, _headers = server.post("/insert",
                                             {"facts": "e(c, d)."})
        assert status == 200
        assert body["inserted"] == 1 and body["mode"] == "incremental"
        status, body, _headers = server.post("/query", {"query": "tc(a, X)"})
        assert body["count"] == 3 and body["epoch"] == 1
        status, body, _headers = server.post("/retract",
                                             {"facts": "e(c, d)."})
        assert status == 200 and body["retracted"] == 1
        status, body, _headers = server.post("/ask", {"atom": "tc(a, d)"})
        assert body["result"] is False

    def test_fire_and_forget_write(self, server):
        status, body, _headers = server.post(
            "/insert", {"facts": "e(c, e).", "wait": False})
        assert status == 200 and body["queued"] is True
        server.serving.flush(5)
        status, body, _headers = server.post("/ask", {"atom": "tc(a, e)"})
        assert body["result"] is True

    def test_keep_alive_serves_multiple_requests(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            for _ in range(3):
                status, body, headers = server.post(
                    "/query", {"query": "e(X, Y)"}, connection=conn)
                assert status == 200 and body["count"] == 2
                assert headers.get("Connection") == "keep-alive"
        finally:
            conn.close()

    def test_error_mapping(self, server):
        status, body, _headers = server.get("/nope")
        assert status == 404
        status, body, _headers = server.get("/query")
        assert status == 405
        status, body, _headers = server.post("/query", {"wrong": "field"})
        assert status == 400
        status, body, _headers = server.post("/insert",
                                             {"facts": "p(X) :- q(X)."})
        assert status == 400 and "error" in body
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.request("POST", "/query", body="{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_backpressure_maps_to_503_with_retry_after(self, server):
        server.serving.pause()
        try:
            for i in range(4):
                status, _body, _headers = server.post(
                    "/insert", {"facts": "p(b%d)." % i, "wait": False})
                assert status == 200
            status, body, headers = server.post(
                "/insert", {"facts": "p(overflow).", "wait": False})
            assert status == 503
            assert float(headers["Retry-After"]) > 0
            assert "queue full" in body["error"]
        finally:
            server.serving.resume()
        server.serving.flush(5)

    def test_request_timeout_maps_to_504(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving, request_timeout=0.3)
        try:
            serving.pause()  # the batch never applies within the budget
            status, body, _headers = running.post(
                "/insert", {"facts": "e(z, z)."})
            assert status == 504
            assert "exceeded" in body["error"]
        finally:
            serving.resume()
            running.stop()
            serving.close()

    def test_clean_shutdown_leaves_session_usable(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving)
        status, _body, _headers = running.get("/healthz")
        assert status == 200
        running.stop()
        # the server released its sockets; the serving session lives on
        assert serving.ask("tc(a, c)")
        serving.insert("e(c, d).", timeout=5)
        assert serving.ask("tc(a, d)")
        serving.close()
        with pytest.raises(ConnectionError):
            running.get("/healthz")
