"""HTTP front-end tests: real sockets on an ephemeral port, endpoint
behavior, backpressure mapping, request timeouts and clean shutdown."""

import asyncio
import http.client
import json
import threading
import urllib.parse

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.serve import ServingSession
from repro.serve.server import ServeServer, serve

TC_PROGRAM = """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    e(a, b). e(b, c).
"""


class RunningServer:
    """Runs the asyncio server on a background thread for the tests."""

    def __init__(self, serving, request_timeout=5.0, slow_query_ms=500.0):
        self.serving = serving
        self._ready = threading.Event()
        self._loop = None
        self._task = None
        self.address = None
        self._thread = threading.Thread(
            target=self._run, args=(request_timeout, slow_query_ms),
            daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server did not start"

    def _run(self, request_timeout, slow_query_ms):
        asyncio.run(self._main(request_timeout, slow_query_ms))

    async def _main(self, request_timeout, slow_query_ms):
        def on_ready(server):
            self.address = server.address
            self._ready.set()

        self._loop = asyncio.get_event_loop()
        self._task = self._loop.create_task(serve(
            self.serving, port=0, request_timeout=request_timeout,
            slow_query_ms=slow_query_ms, ready=on_ready,
        ))
        try:
            await self._task
        except asyncio.CancelledError:
            pass

    def stop(self):
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(10)
        assert not self._thread.is_alive(), "server thread did not exit"

    # -- tiny test client ----------------------------------------------------

    def request(self, method, path, payload=None, connection=None):
        conn = connection or http.client.HTTPConnection(*self.address,
                                                        timeout=10)
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        result = (response.status, data, dict(response.getheaders()))
        if connection is None:
            conn.close()
        return result

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, payload, **kwargs):
        return self.request("POST", path, payload, **kwargs)

    def get_raw(self, path):
        """GET without JSON-decoding: (status, content_type, text)."""
        conn = http.client.HTTPConnection(*self.address, timeout=10)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return (response.status,
                    response.getheader("Content-Type", ""),
                    response.read().decode("utf-8"))
        finally:
            conn.close()


@pytest.fixture
def server():
    serving = ServingSession(TC_PROGRAM, max_pending=4)
    running = RunningServer(serving)
    try:
        yield running
    finally:
        running.stop()
        serving.close()


class TestEndpoints:
    def test_healthz_and_stats(self, server):
        status, body, _headers = server.get("/healthz")
        assert status == 200
        assert body["ok"] is True and body["writer_alive"] is True
        assert body["closed"] is False and body["pending"] == 0
        status, body, _headers = server.get("/stats")
        assert status == 200
        assert body["epochs"]["published"] >= 1
        assert body["requests"] >= 1
        assert body["writer_alive"] is True
        assert body["requests_by_endpoint"]["/healthz"] == 1
        assert body["slow_queries"] == []

    def test_query_ask_value(self, server):
        status, body, _headers = server.post("/query", {"query": "tc(a, X)"})
        assert status == 200
        assert sorted(body["answers"]) == ["tc(a, b)", "tc(a, c)"]
        assert body["count"] == 2 and body["epoch"] == 0
        status, body, _headers = server.post("/ask", {"atom": "tc(a, c)"})
        assert status == 200 and body["result"] is True
        status, body, _headers = server.post("/value", {"atom": "tc(c, a)"})
        assert status == 200 and body["value"] == "false"

    def test_insert_then_retract(self, server):
        status, body, _headers = server.post("/insert",
                                             {"facts": "e(c, d)."})
        assert status == 200
        assert body["inserted"] == 1 and body["mode"] == "incremental"
        status, body, _headers = server.post("/query", {"query": "tc(a, X)"})
        assert body["count"] == 3 and body["epoch"] == 1
        status, body, _headers = server.post("/retract",
                                             {"facts": "e(c, d)."})
        assert status == 200 and body["retracted"] == 1
        status, body, _headers = server.post("/ask", {"atom": "tc(a, d)"})
        assert body["result"] is False

    def test_fire_and_forget_write(self, server):
        status, body, _headers = server.post(
            "/insert", {"facts": "e(c, e).", "wait": False})
        assert status == 200 and body["queued"] is True
        server.serving.flush(5)
        status, body, _headers = server.post("/ask", {"atom": "tc(a, e)"})
        assert body["result"] is True

    def test_keep_alive_serves_multiple_requests(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            for _ in range(3):
                status, body, headers = server.post(
                    "/query", {"query": "e(X, Y)"}, connection=conn)
                assert status == 200 and body["count"] == 2
                assert headers.get("Connection") == "keep-alive"
        finally:
            conn.close()

    def test_error_mapping(self, server):
        status, body, _headers = server.get("/nope")
        assert status == 404
        status, body, _headers = server.get("/query")
        assert status == 405
        status, body, _headers = server.post("/query", {"wrong": "field"})
        assert status == 400
        status, body, _headers = server.post("/insert",
                                             {"facts": "p(X) :- q(X)."})
        assert status == 400 and "error" in body
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.request("POST", "/query", body="{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_backpressure_maps_to_503_with_retry_after(self, server):
        server.serving.pause()
        try:
            for i in range(4):
                status, _body, _headers = server.post(
                    "/insert", {"facts": "p(b%d)." % i, "wait": False})
                assert status == 200
            status, body, headers = server.post(
                "/insert", {"facts": "p(overflow).", "wait": False})
            assert status == 503
            assert float(headers["Retry-After"]) > 0
            assert "queue full" in body["error"]
        finally:
            server.serving.resume()
        server.serving.flush(5)

    def test_request_timeout_maps_to_504(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving, request_timeout=0.3)
        try:
            serving.pause()  # the batch never applies within the budget
            status, body, _headers = running.post(
                "/insert", {"facts": "e(z, z)."})
            assert status == 504
            assert "exceeded" in body["error"]
        finally:
            serving.resume()
            running.stop()
            serving.close()

    def test_clean_shutdown_leaves_session_usable(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving)
        status, _body, _headers = running.get("/healthz")
        assert status == 200
        running.stop()
        # the server released its sockets; the serving session lives on
        assert serving.ask("tc(a, c)")
        serving.insert("e(c, d).", timeout=5)
        assert serving.ask("tc(a, d)")
        serving.close()
        with pytest.raises(ConnectionError):
            running.get("/healthz")


class TestObservabilityEndpoints:
    def test_metrics_exposition(self, server):
        server.post("/query", {"query": "tc(a, X)"})
        server.post("/insert", {"facts": "e(c, zz)."})
        status, content_type, text = server.get_raw("/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        parsed = parse_prometheus_text(text)
        assert "repro_http_requests_total" in parsed
        assert "repro_http_request_seconds_bucket" in parsed
        assert "repro_serve_pending_ops" in parsed
        assert "repro_serve_writer_alive" in parsed
        query_series = [
            value for labels, value in parsed["repro_http_requests_total"]
            if labels.get("endpoint") == "/query"
            and labels.get("status") == "200"
        ]
        assert query_series and query_series[0] >= 1

    def test_metrics_is_get_only(self, server):
        status, _body, _headers = server.post("/metrics", {"x": "y"})
        assert status == 405

    def test_explain_true_atom(self, server):
        path = "/explain?q=" + urllib.parse.quote("tc(a, c)")
        status, body, _headers = server.get(path)
        assert status == 200
        assert body["atom"] == "tc(a, c)"
        tree = body["explanation"]
        assert tree["kind"] == "rule" and tree["atom"] == "tc(a, c)"
        assert any(child["kind"] == "edb" for child in tree["children"])

    def test_explain_false_atom(self, server):
        path = "/explain?q=" + urllib.parse.quote("tc(c, a)")
        status, body, _headers = server.get(path)
        assert status == 200 and body["explanation"]["kind"] == "false"

    def test_explain_reflects_updates(self, server):
        server.post("/insert", {"facts": "e(c, d)."})
        status, body, _headers = server.get(
            "/explain?q=" + urllib.parse.quote("tc(a, d)"))
        assert status == 200 and body["explanation"]["kind"] == "rule"

    def test_explain_requires_q(self, server):
        status, body, _headers = server.get("/explain")
        assert status == 400 and "q" in body["error"]

    def test_explain_bad_atom_maps_to_400(self, server):
        status, body, _headers = server.get(
            "/explain?q=" + urllib.parse.quote("tc(a, X) :- nope"))
        assert status == 400 and "error" in body

    def test_404_collapses_into_other_endpoint_label(self, server):
        server.get("/definitely/not/an/endpoint")
        _status, _ct, text = server.get_raw("/metrics")
        parsed = parse_prometheus_text(text)
        other = [
            value for labels, value in parsed["repro_http_requests_total"]
            if labels.get("endpoint") == "other"
            and labels.get("status") == "404"
        ]
        assert other and other[0] >= 1


class TestSlowQueryLog:
    def test_slow_requests_are_logged_and_bounded(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving, slow_query_ms=0.0)
        try:
            for _ in range(3):
                running.post("/query", {"query": "tc(a, X)"})
            status, body, _headers = running.get("/stats")
            assert status == 200
            assert body["slow_query_ms"] == 0.0
            entries = body["slow_queries"]
            assert len(entries) >= 3
            assert all(entry["duration_ms"] >= 0 for entry in entries)
            assert {entry["path"] for entry in entries} >= {"/query"}
            assert len(entries) <= ServeServer.SLOW_LOG_CAPACITY
        finally:
            running.stop()
            serving.close()


class TestHealthzLiveness:
    def test_healthz_503_when_session_closed(self):
        serving = ServingSession(TC_PROGRAM)
        running = RunningServer(serving)
        try:
            status, body, _headers = running.get("/healthz")
            assert status == 200 and body["ok"] is True
            # Kill the session under the live server: the probe must flip.
            serving.close()
            status, body, _headers = running.get("/healthz")
            assert status == 503
            assert body["ok"] is False
            assert body["closed"] is True
            assert body["writer_alive"] is False
        finally:
            running.stop()
            serving.close()
