"""CLI tests: client subcommands against a live server, serve flags."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServingSession
from repro.serve.cli import build_parser, main

from test_server import TC_PROGRAM, RunningServer


@pytest.fixture
def server():
    serving = ServingSession(TC_PROGRAM)
    running = RunningServer(serving)
    try:
        yield running
    finally:
        running.stop()
        serving.close()


def _argv(server, *words):
    host, port = server.address
    return list(words) + ["--host", host, "--port", str(port)]


class TestClientCommands:
    def test_query(self, server, capsys):
        assert main(_argv(server, "query", "tc(a, X)")) == 0
        out = capsys.readouterr().out
        assert "tc(a, b)" in out and "tc(a, c)" in out

    def test_ask_exit_codes(self, server, capsys):
        assert main(_argv(server, "ask", "tc(a, c)")) == 0
        assert main(_argv(server, "ask", "tc(c, a)")) == 1

    def test_explain(self, server, capsys):
        assert main(_argv(server, "explain", "tc(a, c)")) == 0
        tree = json.loads(capsys.readouterr().out)
        assert tree["kind"] == "rule" and tree["atom"] == "tc(a, c)"
        assert tree["children"]

    def test_explain_bad_atom_exits_with_server_error(self, server):
        with pytest.raises(SystemExit):
            main(_argv(server, "explain", "tc(a, X) :- nope"))

    def test_stats(self, server, capsys):
        assert main(_argv(server, "stats")) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "requests_by_endpoint" in stats

    def test_load(self, server, tmp_path, capsys):
        facts = tmp_path / "facts.hilog"
        facts.write_text("e(c, d). e(d, f).")
        assert main(_argv(server, "load", str(facts))) == 0
        assert "2 new fact(s)" in capsys.readouterr().out
        assert main(_argv(server, "ask", "tc(a, f)")) == 0


class TestParser:
    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "program.hilog", "--trace-log", "t.jsonl",
            "--slow-query-ms", "250",
        ])
        assert args.trace_log == "t.jsonl"
        assert args.slow_query_ms == 250.0

    def test_trace_log_defaults_off(self):
        args = build_parser().parse_args(["serve", "program.hilog"])
        assert args.trace_log is None
        assert args.slow_query_ms == 500.0


def test_serve_subcommand_with_trace_log(tmp_path):
    """End to end: serve with --trace-log, explain against it, clean stop."""
    program = tmp_path / "tc.hilog"
    program.write_text(TC_PROGRAM)
    trace = tmp_path / "trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve", str(program),
         "--port", "0", "--trace-log", str(trace), "--slow-query-ms", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = process.stdout.readline()
        assert "serving" in line, line
        port = line.split(":")[-1].split()[0].rstrip("/")
        assert main(["explain", "tc(a, c)", "--port", port]) == 0
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(10)
    # The tracer flushed structured events (at least the initial load's
    # evaluation spans and the slow_request entries) to the JSONL sink.
    deadline = time.time() + 5
    events = []
    while time.time() < deadline:
        if trace.exists():
            events = [json.loads(entry)
                      for entry in trace.read_text().splitlines()]
            if events:
                break
        time.sleep(0.05)
    kinds = {event["kind"] for event in events}
    assert "stratum" in kinds
    assert "slow_request" in kinds
