"""Tests for the update-stream builders (:mod:`repro.workloads.streams`)."""

import pytest

from repro.db import DatabaseSession
from repro.workloads.closure import transitive_closure_program
from repro.workloads.graphs import chain_edges, is_acyclic, random_dag_edges
from repro.workloads.streams import (
    INSERT,
    RETRACT,
    Update,
    edge_atom,
    edge_churn_stream,
    growing_chain_stream,
    insert_edges,
    replay,
    retract_edges,
    sliding_window_stream,
    win_move_stream,
)


class TestBuilders:
    def test_edge_atom(self):
        assert repr(edge_atom("e", "a", "b")) == "e(a, b)"

    def test_streams_are_deterministic(self):
        base = chain_edges(10)
        assert edge_churn_stream(base, seed=3) == edge_churn_stream(base, seed=3)
        assert edge_churn_stream(base, seed=3) != edge_churn_stream(base, seed=4)

    def test_churn_only_retracts_present_edges(self):
        base = chain_edges(8)
        present = set(base)
        for update in edge_churn_stream(base, operations=50, seed=1):
            for atom in update.atoms:
                edge = (atom.args[0].name, atom.args[1].name)
                if update.action == INSERT:
                    assert edge not in present
                    present.add(edge)
                else:
                    assert edge in present
                    present.discard(edge)

    def test_growing_chain_stream(self):
        stream = growing_chain_stream(5, 3)
        assert [u.action for u in stream] == [INSERT] * 3
        assert repr(stream[0].atoms[0]) == "e(n5, n6)"
        assert repr(stream[-1].atoms[0]) == "e(n7, n8)"

    def test_sliding_window_stream_bounds_live_edges(self):
        edges = chain_edges(30)
        stream = sliding_window_stream(edges, window=5)
        live = set()
        for update in stream:
            for atom in update.atoms:
                edge = (atom.args[0].name, atom.args[1].name)
                if update.action == INSERT:
                    live.add(edge)
                else:
                    live.discard(edge)
            assert len(live) <= 6
        assert len(live) == 5

    def test_win_move_stream_stays_acyclic(self):
        base = random_dag_edges(15, 30, seed=9)
        present = set(base)
        for update in win_move_stream(15, base, operations=40, seed=9):
            for atom in update.atoms:
                edge = (atom.args[0].name, atom.args[1].name)
                if update.action == INSERT:
                    present.add(edge)
                else:
                    present.discard(edge)
            assert is_acyclic(sorted(present))


class TestReplay:
    def test_replay_applies_stream(self):
        session = DatabaseSession(transitive_closure_program(chain_edges(4)))
        stream = [insert_edges("e", [("n4", "n5")]), retract_edges("e", [("n0", "n1")])]
        summaries = replay(session, stream, verify=True)
        assert len(summaries) == 2
        assert session.ask("tc(n1, n5)")
        assert not session.ask("tc(n0, n1)")

    def test_replay_on_step_callback(self):
        session = DatabaseSession(transitive_closure_program(chain_edges(3)))
        seen = []
        replay(
            session, growing_chain_stream(3, 2),
            on_step=lambda index, update, summary: seen.append((index, update.action)),
        )
        assert seen == [(0, INSERT), (1, INSERT)]

    def test_replay_rejects_unknown_action(self):
        session = DatabaseSession(transitive_closure_program(chain_edges(2)))
        with pytest.raises(ValueError):
            replay(session, [Update("upsert", (edge_atom("e", "a", "b"),))])
