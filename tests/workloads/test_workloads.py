"""Tests for the workload generators."""

import pytest

from repro.core.datahilog import is_datahilog
from repro.core.range_restriction import is_strongly_range_restricted
from repro.normal.classify import is_normal_program
from repro.normal.range_restriction import is_range_restricted_normal
from repro.workloads.games import (
    datahilog_game_program,
    hilog_game_program,
    multi_game_program,
    normal_game_program,
)
from repro.workloads.graphs import (
    chain_edges,
    cycle_edges,
    is_acyclic,
    random_dag_edges,
    random_graph_edges,
    tree_edges,
)
from repro.workloads.parts import bicycle_parts_program, random_hierarchy
from repro.workloads.random_programs import random_range_restricted_program


class TestGraphs:
    def test_chain(self):
        edges = chain_edges(3)
        assert edges == [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]
        assert is_acyclic(edges)

    def test_cycle(self):
        edges = cycle_edges(3)
        assert len(edges) == 3
        assert not is_acyclic(edges)

    def test_tree(self):
        edges = tree_edges(depth=2, branching=2)
        assert len(edges) == 6
        assert is_acyclic(edges)

    def test_random_dag_is_acyclic(self):
        for seed in range(3):
            assert is_acyclic(random_dag_edges(20, 40, seed=seed))

    def test_random_graph_deterministic(self):
        assert random_graph_edges(10, 15, seed=7) == random_graph_edges(10, 15, seed=7)


class TestGamePrograms:
    def test_normal_game(self):
        program = normal_game_program(chain_edges(3))
        assert is_normal_program(program)
        assert is_range_restricted_normal(program)
        assert len(program.facts()) == 3

    def test_hilog_game(self):
        program = hilog_game_program({"m1": chain_edges(2), "m2": chain_edges(2, "k")})
        assert not is_normal_program(program)
        assert is_strongly_range_restricted(program)

    def test_datahilog_game(self):
        program = datahilog_game_program({"m1": chain_edges(2)})
        assert is_datahilog(program)
        assert is_strongly_range_restricted(program)

    def test_multi_game(self):
        program, names = multi_game_program([chain_edges(2), chain_edges(3)])
        assert names == ["move0", "move1"]
        assert len(program.facts()) == 2 + 2 + 3


class TestParts:
    def test_random_hierarchy_acyclic(self):
        triples = random_hierarchy(levels=4, seed=1)
        assert is_acyclic([(whole, part) for whole, part, _count in triples])

    def test_bicycle_program_parses(self):
        program = bicycle_parts_program()
        assert program.has_aggregates()


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_programs_are_range_restricted_normal(self, seed):
        program = random_range_restricted_program(seed=seed)
        assert is_normal_program(program)
        assert is_range_restricted_normal(program)

    def test_determinism(self):
        assert random_range_restricted_program(seed=11) == random_range_restricted_program(seed=11)

    def test_negation_modes(self):
        definite = random_range_restricted_program(seed=0, negation="none")
        assert not definite.has_negation()
        with pytest.raises(ValueError):
            random_range_restricted_program(negation="bogus")
