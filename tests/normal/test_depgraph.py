"""Tests for dependency graphs and strongly connected components."""

from repro.normal.classify import PredicateSignature
from repro.normal.depgraph import (
    DependencyGraph,
    condensation_order,
    predicate_dependency_graph,
    strongly_connected_components,
)
from repro.hilog.parser import parse_program


def sig(name, arity):
    return PredicateSignature(name, arity)


class TestSCC:
    def test_single_cycle(self):
        edges = {1: [2], 2: [3], 3: [1]}
        components = strongly_connected_components([1, 2, 3], lambda n: edges.get(n, []))
        assert components == [frozenset({1, 2, 3})]

    def test_two_components_reverse_topological(self):
        edges = {1: [2], 2: []}
        components = strongly_connected_components([1, 2], lambda n: edges.get(n, []))
        # Tarjan emits the component that depends on nothing first.
        assert components[0] == frozenset({2})
        assert components[1] == frozenset({1})

    def test_self_loop(self):
        components = strongly_connected_components([1], lambda n: [1])
        assert components == [frozenset({1})]

    def test_large_chain_no_recursion_error(self):
        size = 5000
        edges = {i: [i + 1] for i in range(size)}
        components = strongly_connected_components(range(size + 1), lambda n: edges.get(n, []))
        assert len(components) == size + 1


class TestDependencyGraph:
    def test_negative_edges(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b", negative=True)
        graph.add_edge("a", "c")
        assert graph.is_negative_edge("a", "b")
        assert not graph.is_negative_edge("a", "c")

    def test_condensation(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.add_edge("a", "c")
        components, component_of, component_edges = graph.condensation()
        assert frozenset({"a", "b"}) in components
        assert frozenset({"c"}) in components
        ab_index = component_of["a"]
        c_index = component_of["c"]
        assert c_index in component_edges[ab_index]
        assert not component_edges[c_index]

    def test_condensation_order_dependencies_first(self):
        graph = DependencyGraph()
        graph.add_edge("top", "middle")
        graph.add_edge("middle", "bottom")
        order = condensation_order(graph)
        positions = {next(iter(component)): index for index, component in enumerate(order)}
        assert positions["bottom"] < positions["middle"] < positions["top"]


class TestPredicateDependencyGraph:
    def test_win_move(self):
        program = parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b).")
        graph = predicate_dependency_graph(program)
        assert graph.is_negative_edge(sig("winning", 1), sig("winning", 1))
        assert not graph.is_negative_edge(sig("winning", 1), sig("move", 2))

    def test_components_of_transitive_closure(self):
        program = parse_program("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y). e(a, b).")
        graph = predicate_dependency_graph(program)
        order = condensation_order(graph)
        assert order[0] == frozenset({sig("e", 2)})
        assert order[1] == frozenset({sig("t", 2)})

    def test_non_normal_program_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            predicate_dependency_graph(parse_program("winning(M)(X) :- game(M)."))
