"""Tests for modular stratification of normal programs (Defs 6.3/6.4, Example 6.1)."""

import pytest

from repro.hilog.errors import StratificationError
from repro.hilog.parser import parse_program, parse_term
from repro.normal.modular import (
    is_modularly_stratified,
    modular_stratification,
    perfect_model,
)
from repro.workloads.games import normal_game_program
from repro.workloads.graphs import chain_edges, cycle_edges


class TestExample61:
    def test_acyclic_game_is_modularly_stratified(self):
        program = normal_game_program(chain_edges(4))
        result = modular_stratification(program)
        assert result.is_modularly_stratified
        assert result.model is not None
        assert result.model.is_total()

    def test_cyclic_game_is_not_modularly_stratified(self):
        program = normal_game_program(cycle_edges(3))
        result = modular_stratification(program)
        assert not result.is_modularly_stratified
        assert "locally stratified" in result.reason

    def test_winning_positions_of_chain(self):
        # n0 -> n1 -> n2 -> n3: n2 wins (n3 is lost), n1 loses, n0 wins.
        program = normal_game_program(chain_edges(3))
        model = perfect_model(program)
        assert model.is_true(parse_term("winning(n0)"))
        assert model.is_false(parse_term("winning(n1)"))
        assert model.is_true(parse_term("winning(n2)"))
        assert model.is_false(parse_term("winning(n3)"))

    def test_perfect_model_raises_on_cyclic_game(self):
        with pytest.raises(StratificationError):
            perfect_model(normal_game_program(cycle_edges(4)))


class TestGeneralModularStratification:
    def test_stratified_program_is_modularly_stratified(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). q(b). r(b).")
        result = modular_stratification(program)
        assert result.is_modularly_stratified
        assert result.model.is_true(parse_term("p(a)"))
        assert result.model.is_false(parse_term("p(b)"))

    def test_even_odd_over_successor_facts(self):
        program = parse_program("""
            even(X) :- zero(X).
            even(X) :- succ(Y, X), not even(Y).
            zero(n0).
            succ(n0, n1). succ(n1, n2). succ(n2, n3).
        """)
        result = modular_stratification(program)
        assert result.is_modularly_stratified
        assert result.model.is_true(parse_term("even(n0)"))
        assert result.model.is_false(parse_term("even(n1)"))
        assert result.model.is_true(parse_term("even(n2)"))

    def test_directly_unstratified_component(self):
        program = parse_program("p(a) :- not p(a).")
        assert not is_modularly_stratified(program)

    def test_component_order_is_reported(self):
        program = normal_game_program(chain_edges(2))
        result = modular_stratification(program)
        assert len(result.component_order) == 2

    def test_rejects_hilog_program(self):
        with pytest.raises(StratificationError):
            modular_stratification(parse_program("winning(M)(X) :- game(M)."))

    def test_win_move_with_extra_stratum(self):
        program = parse_program("""
            winning(X) :- move(X, Y), not winning(Y).
            move(a, b). move(b, c).
            happy(X) :- winning(X), not sad(X).
            sad(c).
        """)
        # Chain a -> b -> c: winning(b) is true, winning(a) and winning(c) false.
        result = modular_stratification(program)
        assert result.is_modularly_stratified
        assert result.model.is_true(parse_term("happy(b)"))
        assert result.model.is_false(parse_term("happy(a)"))
        assert result.model.is_false(parse_term("happy(c)"))

    def test_matches_well_founded_model(self):
        from repro.core.semantics import normal_well_founded_model

        program = normal_game_program(chain_edges(5))
        modular_model = perfect_model(program)
        wfs = normal_well_founded_model(program)
        assert modular_model.true == wfs.true
