"""Tests for stratification (Def 6.1) and local stratification (Def 6.2)."""

from repro.engine.grounding import ground_over_universe, relevant_ground_program
from repro.hilog.herbrand import normal_herbrand_universe
from repro.hilog.parser import parse_program, parse_term
from repro.normal.classify import PredicateSignature
from repro.normal.stratification import (
    is_locally_stratified_ground,
    is_stratified,
    local_stratification_levels,
    stratification_levels,
)


def ground_full(text):
    program = parse_program(text)
    return ground_over_universe(program, normal_herbrand_universe(program))


class TestStratification:
    def test_stratified_program(self):
        program = parse_program("p(X) :- q(X), not r(X). q(a). r(b).")
        assert is_stratified(program)
        levels = stratification_levels(program)
        assert levels[PredicateSignature("p", 1)] > levels[PredicateSignature("r", 1)]
        assert levels[PredicateSignature("p", 1)] >= levels[PredicateSignature("q", 1)]

    def test_win_move_not_stratified(self):
        # Example 6.1: winning depends negatively on itself.
        program = parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b).")
        assert not is_stratified(program)

    def test_positive_recursion_is_stratified(self):
        program = parse_program("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y). e(a, b).")
        assert is_stratified(program)

    def test_even_odd_not_stratified(self):
        program = parse_program("even(X) :- not odd(X). odd(X) :- not even(X). num(a).")
        assert not is_stratified(program)

    def test_stratified_implies_levels_exist(self):
        program = parse_program("a :- not b. b :- not c. c.")
        levels = stratification_levels(program)
        assert levels is not None
        assert levels[PredicateSignature("a", 0)] > levels[PredicateSignature("b", 0)]
        assert levels[PredicateSignature("b", 0)] > levels[PredicateSignature("c", 0)]


class TestLocalStratification:
    def test_full_instantiation_of_game_is_not_locally_stratified(self):
        # Example 6.1: the full instantiation contains
        # winning(a) :- move(a, a), not winning(a), so even the acyclic game
        # is not locally stratified — the reduction modulo the move facts is.
        ground = ground_full("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).")
        assert not is_locally_stratified_ground(ground)

    def test_reduced_game_is_locally_stratified(self):
        # Deleting the false move subgoals (here: instantiating only against
        # the true move facts via relevant grounding) leaves a locally
        # stratified program when the move relation is acyclic.
        ground = relevant_ground_program(parse_program(
            "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c)."
        ))
        assert is_locally_stratified_ground(ground)
        levels = local_stratification_levels(ground)
        assert levels is not None
        assert levels[parse_term("winning(a)")] > levels[parse_term("winning(b)")]

    def test_win_move_cyclic_is_not_locally_stratified(self):
        # With a cyclic move relation even the reduced program has a negative cycle.
        ground = relevant_ground_program(parse_program(
            "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a)."
        ))
        assert not is_locally_stratified_ground(ground)
        assert local_stratification_levels(ground) is None

    def test_relevant_grounding_version(self):
        ground = relevant_ground_program(parse_program(
            "winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c)."
        ))
        assert is_locally_stratified_ground(ground)

    def test_instantiated_self_negation(self):
        ground = ground_full("p(a) :- not p(a).")
        assert not is_locally_stratified_ground(ground)

    def test_positive_cycle_is_fine(self):
        ground = ground_full("p(a) :- q(a). q(a) :- p(a).")
        assert is_locally_stratified_ground(ground)
