"""Tests for normal-program classification and range restriction (Def 4.1)."""

from repro.normal.classify import (
    PredicateSignature,
    atom_signature,
    edb_predicates,
    idb_predicates,
    is_normal_program,
    predicate_signatures,
)
from repro.normal.range_restriction import (
    is_range_restricted_normal,
    rule_is_range_restricted_normal,
    unrestricted_rules,
)
from repro.hilog.parser import parse_program, parse_rule, parse_term


class TestClassification:
    def test_atom_signature(self):
        assert atom_signature(parse_term("p(a, b)")) == PredicateSignature("p", 2)
        assert atom_signature(parse_term("p")) == PredicateSignature("p", 0)
        assert atom_signature(parse_term("G(a)")) is None
        assert atom_signature(parse_term("tc(G)(a, b)")) is None

    def test_is_normal_program(self):
        assert is_normal_program(parse_program("p(X) :- q(X, f(X)), not r(X)."))
        assert not is_normal_program(parse_program("winning(M)(X) :- game(M)."))

    def test_predicate_signatures(self):
        program = parse_program("p(X) :- q(X), not r(X, X).")
        assert predicate_signatures(program) == {
            PredicateSignature("p", 1),
            PredicateSignature("q", 1),
            PredicateSignature("r", 2),
        }

    def test_edb_idb_split(self):
        program = parse_program("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
        assert edb_predicates(program) == {PredicateSignature("e", 2)}
        assert idb_predicates(program) == {PredicateSignature("t", 2)}

    def test_predicate_defined_by_fact_and_rule_is_idb(self):
        program = parse_program("p(a). p(X) :- q(X). q(b).")
        assert PredicateSignature("p", 1) not in edb_predicates(program)
        assert PredicateSignature("p", 1) in idb_predicates(program)


class TestNormalRangeRestriction:
    def test_range_restricted_rules(self):
        assert rule_is_range_restricted_normal(parse_rule("p(X) :- q(X, Y)."))
        assert rule_is_range_restricted_normal(parse_rule("p(X) :- q(X), not r(X)."))
        assert rule_is_range_restricted_normal(parse_rule("p(a)."))

    def test_head_variable_not_bound(self):
        assert not rule_is_range_restricted_normal(parse_rule("p(X) :- q(a)."))

    def test_negative_variable_not_bound(self):
        assert not rule_is_range_restricted_normal(parse_rule("p :- not q(X)."))

    def test_example_4_1_is_not_range_restricted(self):
        program = parse_program("p :- not q(X). q(a).")
        assert not is_range_restricted_normal(program)
        assert len(unrestricted_rules(program)) == 1

    def test_nonground_fact_not_range_restricted(self):
        assert not is_range_restricted_normal(parse_program("p(X, X, a)."))

    def test_win_move_is_range_restricted(self):
        program = parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b).")
        assert is_range_restricted_normal(program)

    def test_assignment_builtin_counts_as_binding(self):
        assert rule_is_range_restricted_normal(
            parse_rule("total(X, N) :- cost(X, M), N is M * 2.")
        )

    def test_comparison_does_not_bind(self):
        assert not rule_is_range_restricted_normal(parse_rule("p(N) :- q(M), N > M."))
