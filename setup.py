"""Setup shim so the package can be installed editable without network access
(environments without the `wheel` package fall back to the legacy
`setup.py develop` path).  All metadata — including the ``src/`` package
layout — lives in ``pyproject.toml``; setuptools >= 61 reads it from there
on both the PEP 660 (`pip install -e .`) and the legacy path."""

from setuptools import setup

setup()
