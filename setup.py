"""Setup shim so the package can be installed editable without network access
(the environment has no `wheel` package, so the legacy `setup.py develop`
path is used)."""

from setuptools import setup

setup()
