"""HiLog language substrate.

This package implements the HiLog language of Chen, Kifer and Warren as used
in Ross's "On Negation in HiLog": terms (where predicate, function and
constant symbols are not distinguished), variables, applications of arbitrary
terms to argument lists, substitutions, unification, a concrete syntax with a
lexer and parser, rules/literals/programs, Herbrand universe enumeration and
the universal-relation ("call"/"apply") encoding of Section 2 of the paper.
"""

from repro.hilog.errors import GenerationError, HiLogError, ParseError, UnificationError
from repro.hilog.terms import (
    App,
    Num,
    Sym,
    Term,
    Var,
    app,
    begin_generation,
    collect_generation,
    end_generation,
    fresh_var,
    intern_generation,
    intern_generation_sizes,
    intern_table_sizes,
    is_ground,
    register_flush_hook,
    register_pin_provider,
    sym,
    term_depth,
    term_size,
    unregister_flush_hook,
    unregister_pin_provider,
    variables_of,
)
from repro.hilog.subst import Substitution, compose, empty_substitution
from repro.hilog.unify import match, mgu, unify
from repro.hilog.program import Literal, Program, Rule, AggregateSpec
from repro.hilog.parser import parse_program, parse_query, parse_rule, parse_term
from repro.hilog.pretty import format_literal, format_program, format_rule, format_term
from repro.hilog.herbrand import HerbrandUniverse, herbrand_symbols
from repro.hilog.universal import (
    APPLY_PREFIX,
    CALL,
    encode_atom,
    encode_program,
    encode_term,
    decode_atom,
    decode_term,
)

__all__ = [
    "HiLogError",
    "ParseError",
    "UnificationError",
    "GenerationError",
    "fresh_var",
    "begin_generation",
    "end_generation",
    "intern_generation",
    "collect_generation",
    "intern_table_sizes",
    "intern_generation_sizes",
    "register_pin_provider",
    "unregister_pin_provider",
    "register_flush_hook",
    "unregister_flush_hook",
    "Term",
    "Var",
    "Sym",
    "Num",
    "App",
    "sym",
    "app",
    "is_ground",
    "variables_of",
    "term_depth",
    "term_size",
    "Substitution",
    "empty_substitution",
    "compose",
    "unify",
    "mgu",
    "match",
    "Literal",
    "Rule",
    "Program",
    "AggregateSpec",
    "parse_term",
    "parse_rule",
    "parse_program",
    "parse_query",
    "format_term",
    "format_literal",
    "format_rule",
    "format_program",
    "HerbrandUniverse",
    "herbrand_symbols",
    "CALL",
    "APPLY_PREFIX",
    "encode_term",
    "encode_atom",
    "encode_program",
    "decode_term",
    "decode_atom",
]
