"""HiLog terms.

In HiLog there is no distinction between predicate, function and constant
symbols (paper, Section 2): every symbol is a term, every variable is a term,
and if ``t, t1, ..., tn`` are terms then so is the application ``t(t1,...,tn)``
for every ``n >= 0``.  Terms and atoms coincide; the Herbrand base and the
Herbrand universe are the same set.

Terms are immutable, hashable and **hash-consed**: every constructor interns
its result in a global table keyed by structure, so two structurally equal
terms are always the *same object*.  Equality is therefore pointer equality
(``a == b`` iff ``a is b``) and the evaluation engines' hot loops — index
probes, join matches, set membership — compare and hash terms in O(1)
regardless of term size.  Three constructors:

* :class:`Var` — a logical variable (``X``, ``Y``, ``Rest``).
* :class:`Sym` — an atomic symbol (``p``, ``move``, ``a``); :class:`Num` is a
  subclass carrying an integer value so arithmetic builtins can work, but it
  behaves exactly like a symbol for unification and grounding.
* :class:`App` — the application of a term (the *name*) to a tuple of
  argument terms; ``p(a)(X, b)`` is ``App(App(Sym('p'), (Sym('a'),)),
  (Var('X'), Sym('b')))``.  Zero-ary applications ``p()`` are permitted and
  distinct from the bare symbol ``p`` (footnote 1 of the paper).

Because terms are built bottom-up, an :class:`App`'s children are already
interned when it is constructed, so its intern key ``(name,) + args`` hashes
with the children's cached hashes and compares by identity — one dictionary
probe per construction.  Hash values keep the pre-interning structural
formulas, so iteration orders (and hence printed outputs) are unchanged.

Interning alone would make memory grow with the set of *distinct terms
ever built in the process* — fatal for a long-lived
:class:`~repro.db.session.DatabaseSession` churning over ever-fresh
constants (timestamps, ids).  The tables are therefore **generation
scoped**: terms born while a generation is open (:func:`begin_generation` /
:func:`end_generation`, or the :class:`intern_generation` context manager)
record their generation and can later be *evicted* by
:func:`collect_generation`, which sweeps every closed generation and drops
the terms that are not reachable from a **pin set** — the explicit pin
roots passed by the caller plus the roots supplied by every registered
:func:`pin provider <register_pin_provider>` (relation stores, extensional
databases, program rules, compiled register programs).  Terms born while
no generation is open are *immortal* (generation 0) and are never swept,
so one-shot evaluations and module constants pay nothing; a generational
term re-obtained through an intern hit while no generation is open is
*promoted* to immortal on the spot, so the promise covers everything you
obtain at top level, not just what you build first.  Anonymous variables
are outside the tables entirely: :func:`fresh_var` creates uninterned
variables (and applications over them stay uninterned), reclaimed by
ordinary garbage collection.

The identity invariant survives collection because eviction is allowed
only for terms the pin set cannot reach: any term a caller can still
observe is (transitively) pinned, so rebuilding an evicted structure
creates a fresh canonical object with no surviving twin.  The contract is
therefore: **whoever calls** :func:`collect_generation` **must ensure the
pins (explicit plus registered providers) cover every retained term** —
do not collect while generational terms are held only in local variables.
A :class:`~repro.db.session.DatabaseSession` opens a generation around
every update and registers a pin provider for its store, EDB, rules and
compiled plans, so session-driven collection is safe by construction.
Monitor with :func:`intern_table_sizes` (live per-constructor counts) and
:func:`intern_generation_sizes` (live counts per birth generation).
"""

from __future__ import annotations

import threading
import weakref

from typing import Dict, Iterable, Iterator, Set, Tuple, Union

from repro.hilog.errors import GenerationError

#: Guards the intern tables' *construction* (miss) path and the eviction
#: sweep, so two threads interning the same new structure concurrently
#: cannot each insert a twin (which would break identity-based equality).
#: The hit path stays lock-free: dictionary probes are atomic under the
#: GIL, and a hit never mutates a table.  Contention is negligible — the
#: serving subsystem's readers mostly *hit* (their queries mention terms
#: the model already interned), and construction is dwarfed by the
#: dictionary work it guards.
_INTERN_LOCK = threading.RLock()

#: Global intern (hash-consing) tables, one per constructor.  Num gets its
#: own table so ``Num(1)`` and ``Sym("1")`` stay distinct objects.
_VAR_INTERN = {}
_SYM_INTERN = {}
_NUM_INTERN = {}
_APP_INTERN = {}

#: Generation bookkeeping.  ``_CURRENT_GEN`` is the innermost open
#: generation id (0 = none open: terms born now are immortal);
#: ``_OPEN_GENS`` the stack of open ids; ``_GEN_POOLS`` maps a generation
#: id to the list of *live* interned terms born in it (entries are removed
#: on eviction, so pool lengths are accurate live counts).
_GEN_COUNTER = 0
_CURRENT_GEN = 0
_OPEN_GENS = []
_GEN_POOLS = {}

#: Weak references to callables consulted at collection time:
#: pin providers yield root terms that must survive, flush hooks clear
#: caches that would otherwise hold (and hand out) evicted terms.
_PIN_PROVIDERS = []
_FLUSH_HOOKS = []

#: Sentinel generation of *fresh* (uninterned) terms — anonymous variables
#: and any application containing one.  Far above every real generation id,
#: so the pin-traversal threshold test always descends through fresh terms
#: into the interned subterms they may hold.
_FRESH_GEN = 1 << 62


def _promote(term):
    """Make a generational term (and its interned subterms) immortal.

    Called on intern-cache hits while no generation is open: the documented
    contract is that terms *obtained* at top level are never swept, and a
    hit on a generational twin would otherwise hand out an object a later
    collection could evict behind the holder's back.  Stale birth-pool
    entries are dropped lazily at the next sweep (the sweep skips
    generation-0 terms), so promotion is O(term size), not O(pool).
    """
    stack = [term]
    while stack:
        node = stack.pop()
        if node._gen == 0:
            continue
        object.__setattr__(node, "_gen", 0)
        if type(node) is App:
            stack.append(node.name)
            stack.extend(node.args)


def intern_table_sizes():
    """Diagnostic: the number of *currently interned* terms per constructor.

    Counts shrink when :func:`collect_generation` evicts unpinned terms, so
    under generation-scoped churn (a session inserting and retracting facts
    over fresh constants) the sizes are bounded by the live term volume
    instead of growing with every term ever built.  Per-birth-generation
    counts are available from :func:`intern_generation_sizes`.
    """
    return {
        "var": len(_VAR_INTERN),
        "sym": len(_SYM_INTERN),
        "num": len(_NUM_INTERN),
        "app": len(_APP_INTERN),
    }


def intern_generation_sizes():
    """Live interned-term counts per birth generation.

    Generation 0 counts the immortal terms (born while no generation was
    open, or promoted by being re-obtained at top level — never swept);
    every other key is a generation with at least one surviving term.  The
    sum over all generations equals the sum of :func:`intern_table_sizes`.
    """
    sizes = {}
    for gen, pool in _GEN_POOLS.items():
        live = sum(1 for term in pool if term._gen)
        if live:
            sizes[gen] = live
    mortal = sum(sizes.values())
    total = (
        len(_VAR_INTERN) + len(_SYM_INTERN) + len(_NUM_INTERN) + len(_APP_INTERN)
    )
    sizes[0] = total - mortal
    return sizes


def current_generation():
    """The innermost open generation id, or 0 when none is open."""
    return _CURRENT_GEN


def begin_generation():
    """Open a new intern generation and return its id.

    Terms constructed while the generation is open record it as their birth
    generation and become sweepable by :func:`collect_generation` once the
    generation is closed.  Generations nest (LIFO).
    """
    global _GEN_COUNTER, _CURRENT_GEN
    _GEN_COUNTER += 1
    gen = _GEN_COUNTER
    _OPEN_GENS.append(gen)
    _CURRENT_GEN = gen
    _GEN_POOLS[gen] = []
    return gen


def end_generation(gen):
    """Close generation ``gen`` (and any generation opened after it).

    Closed generations keep their birth pools until collected; empty pools
    are dropped immediately.  Raises :class:`GenerationError` when ``gen``
    is not open.
    """
    global _CURRENT_GEN
    if gen not in _OPEN_GENS:
        raise GenerationError("generation %r is not open" % (gen,))
    while _OPEN_GENS:
        closed = _OPEN_GENS.pop()
        if not _GEN_POOLS.get(closed):
            _GEN_POOLS.pop(closed, None)
        if closed == gen:
            break
    _CURRENT_GEN = _OPEN_GENS[-1] if _OPEN_GENS else 0


class intern_generation:
    """Context manager sugar over :func:`begin_generation` /
    :func:`end_generation`::

        with intern_generation():
            transient = parse_term("obs(t17)")
        collect_generation(pins=[...])   # transient is sweepable now
    """

    __slots__ = ("gen",)

    def __enter__(self):
        self.gen = begin_generation()
        return self.gen

    def __exit__(self, _exc_type, _exc, _tb):
        if self.gen in _OPEN_GENS:
            end_generation(self.gen)
        return False


def _weak_callable(callback):
    """A weak reference to ``callback`` (WeakMethod for bound methods), so
    registries never keep sessions or stores alive."""
    if hasattr(callback, "__self__"):
        return weakref.WeakMethod(callback)
    return weakref.ref(callback)


def register_pin_provider(provider):
    """Register a callable yielding root terms that every collection must
    keep interned (a session's store/EDB/rules, a standalone result a test
    holds on to, ...).  Held weakly — keep the callable (or its bound
    instance) alive yourself.  Returns a handle for
    :func:`unregister_pin_provider`."""
    handle = _weak_callable(provider)
    _PIN_PROVIDERS.append(handle)
    return handle


def unregister_pin_provider(handle):
    """Remove a previously registered pin provider (no-op when absent)."""
    try:
        _PIN_PROVIDERS.remove(handle)
    except ValueError:
        pass


def register_flush_hook(hook):
    """Register a callable invoked at the start of every collection, before
    the pin set is gathered — the place to clear caches keyed by something
    other than the terms themselves (parsed-fact string caches, execution
    counters) so they neither pin nor hand out evicted terms.  Held weakly;
    returns a handle for :func:`unregister_flush_hook`."""
    handle = _weak_callable(hook)
    _FLUSH_HOOKS.append(handle)
    return handle


def unregister_flush_hook(handle):
    """Remove a previously registered flush hook (no-op when absent)."""
    try:
        _FLUSH_HOOKS.remove(handle)
    except ValueError:
        pass


def _call_registered(registry):
    """Yield the live callables of a weak registry, pruning dead entries."""
    dead = []
    for handle in registry:
        callback = handle()
        if callback is None:
            dead.append(handle)
        else:
            yield callback
    for handle in dead:
        try:
            registry.remove(handle)
        except ValueError:
            pass


def _record(term, gen):
    """Register a freshly interned mortal term in its birth pool."""
    pool = _GEN_POOLS.get(gen)
    if pool is None:
        pool = _GEN_POOLS[gen] = []
    pool.append(term)


def _evict(term, counts):
    """Drop one term's intern-table entry (the sweep's unpin action)."""
    kind = type(term)
    if kind is App:
        key = (term.name,) + term.args
        if _APP_INTERN.get(key) is term:
            del _APP_INTERN[key]
        counts["app"] += 1
    elif kind is Num:
        if _NUM_INTERN.get(term.value) is term:
            del _NUM_INTERN[term.value]
        counts["num"] += 1
    elif kind is Var:
        if _VAR_INTERN.get(term.name) is term:
            del _VAR_INTERN[term.name]
        counts["var"] += 1
    else:
        if _SYM_INTERN.get(term.name) is term:
            del _SYM_INTERN[term.name]
        counts["sym"] += 1


def collect_generation(pins=(), generations=None):
    """Sweep closed generations: evict every term born in them that is not
    reachable from the pin set.

    ``pins`` is an iterable of root terms to keep (their subterms are kept
    too); the roots yielded by every registered pin provider are always
    added.  ``generations`` optionally restricts the sweep to specific
    closed generation ids (default: all closed generations).  Terms that
    survive stay in their birth pool and are re-examined by future
    collections, so a pinned term becomes evictable as soon as it stops
    being reachable (e.g. after the fact holding it is retracted).

    Raises :class:`GenerationError` when any generation is still open —
    in-flight computations hold terms in places no pin provider can see.
    Returns a stats dict: the generation ids swept, the pinned-term count,
    per-constructor eviction counts, and the post-sweep table sizes.
    """
    if _OPEN_GENS:
        raise GenerationError(
            "cannot collect while generations %r are open" % (_OPEN_GENS,)
        )
    target = list(_GEN_POOLS)
    if generations is not None:
        wanted = set(generations)
        target = [gen for gen in target if gen in wanted]
    evicted = {"var": 0, "sym": 0, "num": 0, "app": 0}
    if not target:
        return {
            "generations": (),
            "pinned": 0,
            "evicted": evicted,
            "evicted_total": 0,
            "sizes": intern_table_sizes(),
        }

    for hook in list(_call_registered(_FLUSH_HOOKS)):
        hook()

    # Mark: the subterm closure of the pin roots, pruned at terms born
    # before the oldest swept generation (a term can only contain subterms
    # at most as young as itself, so nothing below the threshold can reach
    # a candidate).
    threshold = min(target)
    pinned = set()
    stack = []

    def push_roots(roots):
        for root in roots:
            if isinstance(root, Term) and root._gen >= threshold:
                stack.append(root)

    push_roots(pins)
    for provider in list(_call_registered(_PIN_PROVIDERS)):
        push_roots(provider())
    # A sweep restricted to specific generations must keep every term the
    # *surviving* generations still reference: their pool members are
    # implicit roots (an App born in a non-swept generation may hold
    # children born in a swept one, and evicting those would leave the
    # surviving App dangling).  Unrestricted sweeps have no such pools.
    for gen, pool in _GEN_POOLS.items():
        if gen not in target:
            push_roots(pool)
    while stack:
        term = stack.pop()
        if term in pinned:
            continue
        pinned.add(term)
        if type(term) is App:
            name = term.name
            if name._gen >= threshold:
                stack.append(name)
            for arg in term.args:
                if arg._gen >= threshold:
                    stack.append(arg)

    # Sweep: evict the unpinned, keep survivors in their birth pool.
    # Terms promoted to immortality since birth (generation 0) are dropped
    # from the pool without eviction — their table entries are permanent.
    # The intern lock serializes the table deletions against concurrent
    # construction misses on other threads (the serving subsystem's readers
    # may be parsing queries while the writer collects).
    with _INTERN_LOCK:
        for gen in target:
            pool = _GEN_POOLS.pop(gen)
            survivors = []
            for term in pool:
                if term._gen == 0:
                    continue
                if term in pinned:
                    survivors.append(term)
                else:
                    _evict(term, evicted)
            if survivors:
                _GEN_POOLS[gen] = survivors
    return {
        "generations": tuple(target),
        "pinned": len(pinned),
        "evicted": evicted,
        "evicted_total": sum(evicted.values()),
        "sizes": intern_table_sizes(),
    }


class Term:
    """Abstract base class for HiLog terms.

    Concrete subclasses are :class:`Var`, :class:`Sym`, :class:`Num` and
    :class:`App`.  All of them are immutable and hashable so they can be used
    freely as dictionary keys and set members, which the grounding and
    fixpoint engines rely on heavily.
    """

    __slots__ = ()

    def is_ground(self):
        """Return ``True`` when the term contains no variables."""
        raise NotImplementedError

    def variables(self):
        """Return the set of :class:`Var` objects occurring in the term."""
        raise NotImplementedError

    def symbols(self):
        """Return the set of symbol names (strings) occurring in the term."""
        raise NotImplementedError

    def depth(self):
        """Return the nesting depth of the term (symbols and variables are 0)."""
        raise NotImplementedError

    def size(self):
        """Return the number of nodes in the term tree."""
        raise NotImplementedError

    # The pretty printer lives in repro.hilog.pretty; __repr__ delegates to it
    # lazily to avoid an import cycle.
    def __repr__(self):
        from repro.hilog.pretty import format_term

        return format_term(self)


class Var(Term):
    """A logical variable.

    Variables are interned by name: two ``Var('X')`` calls return the same
    object, so equality is identity.  The parser produces names starting
    with an upper-case letter or underscore; programmatically constructed
    variables may use any string.
    """

    __slots__ = ("name", "_hash", "_gen")

    def __new__(cls, name):
        self = _VAR_INTERN.get(name)
        if self is not None:
            if self._gen and not _CURRENT_GEN:
                _promote(self)
            return self
        with _INTERN_LOCK:
            self = _VAR_INTERN.get(name)
            if self is not None:
                if self._gen and not _CURRENT_GEN:
                    _promote(self)
                return self
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "_hash", hash(("var", name)))
            gen = _CURRENT_GEN
            object.__setattr__(self, "_gen", gen)
            _VAR_INTERN[name] = self
            if gen:
                _record(self, gen)
        return self

    def __setattr__(self, key, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return False

    def variables(self):
        return {self}

    def symbols(self):
        return set()

    def depth(self):
        return 0

    def size(self):
        return 1


class Sym(Term):
    """An atomic HiLog symbol.

    The same symbol may be used as a constant, as a function name, or as a
    predicate name — possibly all three in one program — because HiLog does
    not distinguish these roles.
    """

    __slots__ = ("name", "_hash", "_gen")

    def __new__(cls, name):
        self = _SYM_INTERN.get(name)
        if self is not None:
            if self._gen and not _CURRENT_GEN:
                _promote(self)
            return self
        with _INTERN_LOCK:
            self = _SYM_INTERN.get(name)
            if self is not None:
                if self._gen and not _CURRENT_GEN:
                    _promote(self)
                return self
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "_hash", hash(("sym", name)))
            gen = _CURRENT_GEN
            object.__setattr__(self, "_gen", gen)
            _SYM_INTERN[name] = self
            if gen:
                _record(self, gen)
        return self

    def __setattr__(self, key, value):
        raise AttributeError("Sym is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return True

    def variables(self):
        return set()

    def symbols(self):
        return {self.name}

    def depth(self):
        return 0

    def size(self):
        return 1


class Num(Sym):
    """An integer literal.

    Numbers behave exactly like symbols for unification, grounding and the
    semantics; the attached :attr:`value` is only consulted by arithmetic and
    comparison builtins and by aggregates.
    """

    __slots__ = ("value",)

    def __new__(cls, value):
        value = int(value)
        self = _NUM_INTERN.get(value)
        if self is not None:
            if self._gen and not _CURRENT_GEN:
                _promote(self)
            return self
        with _INTERN_LOCK:
            self = _NUM_INTERN.get(value)
            if self is not None:
                if self._gen and not _CURRENT_GEN:
                    _promote(self)
                return self
            self = object.__new__(cls)
            object.__setattr__(self, "name", str(value))
            object.__setattr__(self, "value", value)
            object.__setattr__(self, "_hash", hash(("num", value)))
            gen = _CURRENT_GEN
            object.__setattr__(self, "_gen", gen)
            _NUM_INTERN[value] = self
            if gen:
                _record(self, gen)
        return self

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash


class App(Term):
    """Application of a term to a tuple of argument terms: ``name(args...)``.

    ``name`` is itself an arbitrary term (usually a :class:`Sym` or another
    :class:`App`, but a :class:`Var` is legal — that is what gives HiLog its
    higher-order flavour, e.g. ``G(X, Y)`` or ``winning(M)(X)``).

    Hashing and groundness are the hot inner loops of every set/dict the
    engines use, so both are memoized in slots at construction, and the
    application itself is hash-consed: since children are already interned,
    the intern key ``(name,) + args`` hashes with cached child hashes and
    compares by identity, so re-building an existing application is a single
    dictionary probe that returns the canonical object.
    """

    __slots__ = ("name", "args", "_hash", "_ground", "_depth", "_gen")

    def __new__(cls, name, args=()):
        if not isinstance(name, Term):
            raise TypeError("App name must be a Term, got %r" % (name,))
        args = tuple(args)
        key = (name,) + args
        try:
            self = _APP_INTERN.get(key)
        except TypeError:
            self = None  # unhashable non-Term argument; diagnosed below
        if self is not None:
            if self._gen and not _CURRENT_GEN:
                _promote(self)
            return self
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError("App argument must be a Term, got %r" % (arg,))
        with _INTERN_LOCK:
            self = _APP_INTERN.get(key)
            if self is not None:
                if self._gen and not _CURRENT_GEN:
                    _promote(self)
                return self
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "args", args)
            object.__setattr__(self, "_hash", hash(("app", name, args)))
            object.__setattr__(
                self, "_ground",
                name.is_ground() and all(arg.is_ground() for arg in args)
            )
            # Children are already interned (hence their depths cached), so
            # the nesting depth memoizes bottom-up in O(arity) at
            # construction.
            depth = name.depth()
            for arg in args:
                arg_depth = arg.depth()
                if arg_depth > depth:
                    depth = arg_depth
            object.__setattr__(self, "_depth", depth + 1)
            # Birth generation: at least the current one, and never younger
            # than any child — an application built after a generation closed
            # must still be sweepable together with the mortal children it
            # references (collection prunes pin traversal below a term's own
            # generation, so descendants may never outlive their ancestors'
            # generation bound).  An application over a *fresh* (uninterned)
            # child inherits the fresh sentinel and is itself left uninterned:
            # its key contains an identity-unique object, so a table entry
            # could never be hit again and would only be immortal leak.
            gen = _CURRENT_GEN
            child_gen = name._gen
            if child_gen > gen:
                gen = child_gen
            for arg in args:
                child_gen = arg._gen
                if child_gen > gen:
                    gen = child_gen
            if gen >= _FRESH_GEN:
                # Fresh-descended: uninterned, reclaimed by ordinary GC.
                object.__setattr__(self, "_gen", gen)
                return self
            if gen and not _CURRENT_GEN:
                # Top-level construction over generational children: the
                # immortality promise covers everything obtained while no
                # generation is open, so promote the children (mirroring the
                # intern-hit path) and intern the new application immortally.
                _promote(name)
                for arg in args:
                    _promote(arg)
                gen = 0
            object.__setattr__(self, "_gen", gen)
            _APP_INTERN[key] = self
            if gen:
                _record(self, gen)
        return self

    def __setattr__(self, key, value):
        raise AttributeError("App is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    @property
    def arity(self):
        """Number of arguments of the application."""
        return len(self.args)

    def is_ground(self):
        return self._ground

    # The traversals below are iterative (explicit stacks) so that deeply
    # nested terms — which arise when saturating non-strongly-range-restricted
    # programs such as Example 5.2's unguarded tc(G) — never hit Python's
    # recursion limit.
    def variables(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(node)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def symbols(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sym):
                result.add(node.name)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def depth(self):
        return self._depth

    def size(self):
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return count


# ---------------------------------------------------------------------------
# Convenience constructors and helpers
# ---------------------------------------------------------------------------

# The list constructor symbols used by the parser's [H|T] sugar.
CONS = Sym("$cons")
NIL = Sym("$nil")


def intern_app(name, args):
    """Hot-path :class:`App` construction: one intern probe, no validation.

    ``name`` and every element of ``args`` (a tuple) must already be
    :class:`Term`\\ s; the register executor's builders guarantee this.
    """
    cached = _APP_INTERN.get((name,) + args)
    if cached is not None:
        if cached._gen and not _CURRENT_GEN:
            _promote(cached)
        return cached
    return App(name, args)


def sym(name):
    """Build a :class:`Sym` (or :class:`Num` when given an ``int``)."""
    if isinstance(name, Term):
        return name
    if isinstance(name, bool):
        raise TypeError("booleans are not HiLog symbols")
    if isinstance(name, int):
        return Num(name)
    return Sym(str(name))


def var(name):
    """Build a :class:`Var`."""
    if isinstance(name, Var):
        return name
    return Var(str(name))


def fresh_var(name):
    """An **uninterned** variable: a fresh object distinct from every other
    variable, including interned or fresh ones carrying the same name.

    This is the representation of anonymous variables (the parser's ``_``):
    each occurrence denotes a fresh variable, so distinctness must come
    from object identity rather than from globally unique names — unique
    names in the intern table would make every parse of ``_`` permanent
    (immortal) intern growth.  A fresh variable never has an intern-table
    entry — and neither does any application containing one (its intern key
    holds an identity-unique object that could never be probed again) — so
    the whole structure is reclaimed by ordinary Python garbage collection
    along with whatever rule holds it, with no generation bookkeeping.
    Consequently building the *same* application over the *same* fresh
    variable twice yields two distinct objects, and printing a fresh
    variable then reparsing the text yields an (interned) α-equivalent
    variable, not the same object.
    """
    self = object.__new__(Var)
    object.__setattr__(self, "name", name)
    object.__setattr__(self, "_hash", hash(("var", name)))
    object.__setattr__(self, "_gen", _FRESH_GEN)
    return self


def app(name, *args):
    """Build an application ``name(args...)``.

    ``name`` may be a string (converted to a :class:`Sym`), and arguments may
    be strings/ints which are converted with :func:`sym`.  Strings beginning
    with an upper-case letter or ``_`` are *not* auto-converted to variables;
    use :func:`var` or :class:`Var` explicitly for programmatic construction.
    """
    name_term = sym(name) if not isinstance(name, Term) else name
    converted = tuple(arg if isinstance(arg, Term) else sym(arg) for arg in args)
    return App(name_term, converted)


def make_list(items, tail=NIL):
    """Build a HiLog list term out of ``items`` using the ``$cons``/``$nil``
    constructors used by the parser's ``[a, b | T]`` sugar."""
    result = tail
    for item in reversed(list(items)):
        result = App(CONS, (item, result))
    return result


def list_items(term):
    """Inverse of :func:`make_list` for proper lists.

    Returns a list of element terms, or ``None`` when ``term`` is not a
    proper ``$cons``/``$nil`` list.
    """
    items = []
    node = term
    while True:
        if node == NIL:
            return items
        if isinstance(node, App) and node.name == CONS and len(node.args) == 2:
            items.append(node.args[0])
            node = node.args[1]
            continue
        return None


def is_ground(term):
    """Module-level alias for :meth:`Term.is_ground`."""
    return term.is_ground()


def variables_of(term):
    """Module-level alias for :meth:`Term.variables`."""
    return term.variables()


def term_depth(term):
    """Module-level alias for :meth:`Term.depth`."""
    return term.depth()


def term_size(term):
    """Module-level alias for :meth:`Term.size`."""
    return term.size()


def subterms(term):
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, App):
            stack.append(current.name)
            stack.extend(reversed(current.args))


def functor(term):
    """Return the outermost *name* of an atom.

    For ``p(a)(X)`` this is the term ``p(a)``; for ``p(a)`` it is the symbol
    ``p``; for a bare symbol it is the symbol itself.  Used when building
    predicate-name dependency graphs.
    """
    if isinstance(term, App):
        return term.name
    return term


def outermost_symbol(term):
    """Return the left-most, inner-most symbol of an atom's name, or ``None``.

    For ``winning(M)(X)`` this is the symbol ``winning``; for ``G(X, Y)``
    (variable name) it is ``None``.  This is the "outermost functor" used in
    Section 6 of the paper when assigning levels to predicate names.
    """
    node = term
    while isinstance(node, App):
        node = node.name
    if isinstance(node, Sym):
        return node
    return None


def predicate_name(atom):
    """Return the predicate-name term of an atom.

    An atom in a rule is either an application (its name is the predicate
    name, which may itself be a complex term such as ``tc(G)``) or a bare
    symbol / variable (a 0-argument proposition, its own name).
    """
    if isinstance(atom, App):
        return atom.name
    return atom


def atom_arguments(atom):
    """Return the tuple of argument terms of an atom (empty for symbols)."""
    if isinstance(atom, App):
        return atom.args
    return ()


def rename_variables(term, mapping, counter):
    """Rename variables in ``term`` apart using ``mapping`` (a dict that is
    updated in place) and ``counter`` (a one-element list used as a mutable
    integer).  Returns the renamed term.  Used to standardize rules apart."""
    if isinstance(term, Var):
        if term not in mapping:
            counter[0] += 1
            mapping[term] = Var("_R%d" % counter[0])
        return mapping[term]
    if isinstance(term, App):
        new_name = rename_variables(term.name, mapping, counter)
        new_args = tuple(rename_variables(arg, mapping, counter) for arg in term.args)
        return App(new_name, new_args)
    return term
