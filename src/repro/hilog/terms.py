"""HiLog terms.

In HiLog there is no distinction between predicate, function and constant
symbols (paper, Section 2): every symbol is a term, every variable is a term,
and if ``t, t1, ..., tn`` are terms then so is the application ``t(t1,...,tn)``
for every ``n >= 0``.  Terms and atoms coincide; the Herbrand base and the
Herbrand universe are the same set.

Terms are immutable, hashable and **hash-consed**: every constructor interns
its result in a global table keyed by structure, so two structurally equal
terms are always the *same object*.  Equality is therefore pointer equality
(``a == b`` iff ``a is b``) and the evaluation engines' hot loops — index
probes, join matches, set membership — compare and hash terms in O(1)
regardless of term size.  Three constructors:

* :class:`Var` — a logical variable (``X``, ``Y``, ``Rest``).
* :class:`Sym` — an atomic symbol (``p``, ``move``, ``a``); :class:`Num` is a
  subclass carrying an integer value so arithmetic builtins can work, but it
  behaves exactly like a symbol for unification and grounding.
* :class:`App` — the application of a term (the *name*) to a tuple of
  argument terms; ``p(a)(X, b)`` is ``App(App(Sym('p'), (Sym('a'),)),
  (Var('X'), Sym('b')))``.  Zero-ary applications ``p()`` are permitted and
  distinct from the bare symbol ``p`` (footnote 1 of the paper).

Because terms are built bottom-up, an :class:`App`'s children are already
interned when it is constructed, so its intern key ``(name,) + args`` hashes
with the children's cached hashes and compares by identity — one dictionary
probe per construction.  Hash values keep the pre-interning structural
formulas, so iteration orders (and hence printed outputs) are unchanged.

The intern tables hold strong references and are never evicted: memory
grows with the set of *distinct terms ever built in the process*.  The
engines' per-evaluation resource caps bound each evaluation's term volume,
but a long-lived :class:`~repro.db.session.DatabaseSession` churning over
ever-fresh constants (timestamps, ids) accretes interned terms even after
the facts are retracted.  Monitor with :func:`intern_table_sizes`; weak
intern tables (or generation-scoped eviction) are a known follow-up for
long-running serving processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple, Union

#: Global intern (hash-consing) tables, one per constructor.  Num gets its
#: own table so ``Num(1)`` and ``Sym("1")`` stay distinct objects.
_VAR_INTERN = {}
_SYM_INTERN = {}
_NUM_INTERN = {}
_APP_INTERN = {}


def intern_table_sizes():
    """Diagnostic: the number of live interned terms per constructor."""
    return {
        "var": len(_VAR_INTERN),
        "sym": len(_SYM_INTERN),
        "num": len(_NUM_INTERN),
        "app": len(_APP_INTERN),
    }


class Term:
    """Abstract base class for HiLog terms.

    Concrete subclasses are :class:`Var`, :class:`Sym`, :class:`Num` and
    :class:`App`.  All of them are immutable and hashable so they can be used
    freely as dictionary keys and set members, which the grounding and
    fixpoint engines rely on heavily.
    """

    __slots__ = ()

    def is_ground(self):
        """Return ``True`` when the term contains no variables."""
        raise NotImplementedError

    def variables(self):
        """Return the set of :class:`Var` objects occurring in the term."""
        raise NotImplementedError

    def symbols(self):
        """Return the set of symbol names (strings) occurring in the term."""
        raise NotImplementedError

    def depth(self):
        """Return the nesting depth of the term (symbols and variables are 0)."""
        raise NotImplementedError

    def size(self):
        """Return the number of nodes in the term tree."""
        raise NotImplementedError

    # The pretty printer lives in repro.hilog.pretty; __repr__ delegates to it
    # lazily to avoid an import cycle.
    def __repr__(self):
        from repro.hilog.pretty import format_term

        return format_term(self)


class Var(Term):
    """A logical variable.

    Variables are interned by name: two ``Var('X')`` calls return the same
    object, so equality is identity.  The parser produces names starting
    with an upper-case letter or underscore; programmatically constructed
    variables may use any string.
    """

    __slots__ = ("name", "_hash")

    def __new__(cls, name):
        self = _VAR_INTERN.get(name)
        if self is not None:
            return self
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))
        _VAR_INTERN[name] = self
        return self

    def __setattr__(self, key, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return False

    def variables(self):
        return {self}

    def symbols(self):
        return set()

    def depth(self):
        return 0

    def size(self):
        return 1


class Sym(Term):
    """An atomic HiLog symbol.

    The same symbol may be used as a constant, as a function name, or as a
    predicate name — possibly all three in one program — because HiLog does
    not distinguish these roles.
    """

    __slots__ = ("name", "_hash")

    def __new__(cls, name):
        self = _SYM_INTERN.get(name)
        if self is not None:
            return self
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("sym", name)))
        _SYM_INTERN[name] = self
        return self

    def __setattr__(self, key, value):
        raise AttributeError("Sym is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return True

    def variables(self):
        return set()

    def symbols(self):
        return {self.name}

    def depth(self):
        return 0

    def size(self):
        return 1


class Num(Sym):
    """An integer literal.

    Numbers behave exactly like symbols for unification, grounding and the
    semantics; the attached :attr:`value` is only consulted by arithmetic and
    comparison builtins and by aggregates.
    """

    __slots__ = ("value",)

    def __new__(cls, value):
        value = int(value)
        self = _NUM_INTERN.get(value)
        if self is not None:
            return self
        self = object.__new__(cls)
        object.__setattr__(self, "name", str(value))
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("num", value)))
        _NUM_INTERN[value] = self
        return self

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash


class App(Term):
    """Application of a term to a tuple of argument terms: ``name(args...)``.

    ``name`` is itself an arbitrary term (usually a :class:`Sym` or another
    :class:`App`, but a :class:`Var` is legal — that is what gives HiLog its
    higher-order flavour, e.g. ``G(X, Y)`` or ``winning(M)(X)``).

    Hashing and groundness are the hot inner loops of every set/dict the
    engines use, so both are memoized in slots at construction, and the
    application itself is hash-consed: since children are already interned,
    the intern key ``(name,) + args`` hashes with cached child hashes and
    compares by identity, so re-building an existing application is a single
    dictionary probe that returns the canonical object.
    """

    __slots__ = ("name", "args", "_hash", "_ground", "_depth")

    def __new__(cls, name, args=()):
        if not isinstance(name, Term):
            raise TypeError("App name must be a Term, got %r" % (name,))
        args = tuple(args)
        key = (name,) + args
        try:
            self = _APP_INTERN.get(key)
        except TypeError:
            self = None  # unhashable non-Term argument; diagnosed below
        if self is not None:
            return self
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError("App argument must be a Term, got %r" % (arg,))
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("app", name, args)))
        object.__setattr__(
            self, "_ground", name.is_ground() and all(arg.is_ground() for arg in args)
        )
        # Children are already interned (hence their depths cached), so the
        # nesting depth memoizes bottom-up in O(arity) at construction.
        depth = name.depth()
        for arg in args:
            arg_depth = arg.depth()
            if arg_depth > depth:
                depth = arg_depth
        object.__setattr__(self, "_depth", depth + 1)
        _APP_INTERN[key] = self
        return self

    def __setattr__(self, key, value):
        raise AttributeError("App is immutable")

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return self._hash

    @property
    def arity(self):
        """Number of arguments of the application."""
        return len(self.args)

    def is_ground(self):
        return self._ground

    # The traversals below are iterative (explicit stacks) so that deeply
    # nested terms — which arise when saturating non-strongly-range-restricted
    # programs such as Example 5.2's unguarded tc(G) — never hit Python's
    # recursion limit.
    def variables(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(node)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def symbols(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sym):
                result.add(node.name)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def depth(self):
        return self._depth

    def size(self):
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return count


# ---------------------------------------------------------------------------
# Convenience constructors and helpers
# ---------------------------------------------------------------------------

# The list constructor symbols used by the parser's [H|T] sugar.
CONS = Sym("$cons")
NIL = Sym("$nil")


def intern_app(name, args):
    """Hot-path :class:`App` construction: one intern probe, no validation.

    ``name`` and every element of ``args`` (a tuple) must already be
    :class:`Term`\\ s; the register executor's builders guarantee this.
    """
    cached = _APP_INTERN.get((name,) + args)
    if cached is not None:
        return cached
    return App(name, args)


def sym(name):
    """Build a :class:`Sym` (or :class:`Num` when given an ``int``)."""
    if isinstance(name, Term):
        return name
    if isinstance(name, bool):
        raise TypeError("booleans are not HiLog symbols")
    if isinstance(name, int):
        return Num(name)
    return Sym(str(name))


def var(name):
    """Build a :class:`Var`."""
    if isinstance(name, Var):
        return name
    return Var(str(name))


def app(name, *args):
    """Build an application ``name(args...)``.

    ``name`` may be a string (converted to a :class:`Sym`), and arguments may
    be strings/ints which are converted with :func:`sym`.  Strings beginning
    with an upper-case letter or ``_`` are *not* auto-converted to variables;
    use :func:`var` or :class:`Var` explicitly for programmatic construction.
    """
    name_term = sym(name) if not isinstance(name, Term) else name
    converted = tuple(arg if isinstance(arg, Term) else sym(arg) for arg in args)
    return App(name_term, converted)


def make_list(items, tail=NIL):
    """Build a HiLog list term out of ``items`` using the ``$cons``/``$nil``
    constructors used by the parser's ``[a, b | T]`` sugar."""
    result = tail
    for item in reversed(list(items)):
        result = App(CONS, (item, result))
    return result


def list_items(term):
    """Inverse of :func:`make_list` for proper lists.

    Returns a list of element terms, or ``None`` when ``term`` is not a
    proper ``$cons``/``$nil`` list.
    """
    items = []
    node = term
    while True:
        if node == NIL:
            return items
        if isinstance(node, App) and node.name == CONS and len(node.args) == 2:
            items.append(node.args[0])
            node = node.args[1]
            continue
        return None


def is_ground(term):
    """Module-level alias for :meth:`Term.is_ground`."""
    return term.is_ground()


def variables_of(term):
    """Module-level alias for :meth:`Term.variables`."""
    return term.variables()


def term_depth(term):
    """Module-level alias for :meth:`Term.depth`."""
    return term.depth()


def term_size(term):
    """Module-level alias for :meth:`Term.size`."""
    return term.size()


def subterms(term):
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, App):
            stack.append(current.name)
            stack.extend(reversed(current.args))


def functor(term):
    """Return the outermost *name* of an atom.

    For ``p(a)(X)`` this is the term ``p(a)``; for ``p(a)`` it is the symbol
    ``p``; for a bare symbol it is the symbol itself.  Used when building
    predicate-name dependency graphs.
    """
    if isinstance(term, App):
        return term.name
    return term


def outermost_symbol(term):
    """Return the left-most, inner-most symbol of an atom's name, or ``None``.

    For ``winning(M)(X)`` this is the symbol ``winning``; for ``G(X, Y)``
    (variable name) it is ``None``.  This is the "outermost functor" used in
    Section 6 of the paper when assigning levels to predicate names.
    """
    node = term
    while isinstance(node, App):
        node = node.name
    if isinstance(node, Sym):
        return node
    return None


def predicate_name(atom):
    """Return the predicate-name term of an atom.

    An atom in a rule is either an application (its name is the predicate
    name, which may itself be a complex term such as ``tc(G)``) or a bare
    symbol / variable (a 0-argument proposition, its own name).
    """
    if isinstance(atom, App):
        return atom.name
    return atom


def atom_arguments(atom):
    """Return the tuple of argument terms of an atom (empty for symbols)."""
    if isinstance(atom, App):
        return atom.args
    return ()


def rename_variables(term, mapping, counter):
    """Rename variables in ``term`` apart using ``mapping`` (a dict that is
    updated in place) and ``counter`` (a one-element list used as a mutable
    integer).  Returns the renamed term.  Used to standardize rules apart."""
    if isinstance(term, Var):
        if term not in mapping:
            counter[0] += 1
            mapping[term] = Var("_R%d" % counter[0])
        return mapping[term]
    if isinstance(term, App):
        new_name = rename_variables(term.name, mapping, counter)
        new_args = tuple(rename_variables(arg, mapping, counter) for arg in term.args)
        return App(new_name, new_args)
    return term
