"""HiLog terms.

In HiLog there is no distinction between predicate, function and constant
symbols (paper, Section 2): every symbol is a term, every variable is a term,
and if ``t, t1, ..., tn`` are terms then so is the application ``t(t1,...,tn)``
for every ``n >= 0``.  Terms and atoms coincide; the Herbrand base and the
Herbrand universe are the same set.

Terms are immutable, hashable and interned-friendly.  Three constructors:

* :class:`Var` — a logical variable (``X``, ``Y``, ``Rest``).
* :class:`Sym` — an atomic symbol (``p``, ``move``, ``a``); :class:`Num` is a
  subclass carrying an integer value so arithmetic builtins can work, but it
  behaves exactly like a symbol for unification and grounding.
* :class:`App` — the application of a term (the *name*) to a tuple of
  argument terms; ``p(a)(X, b)`` is ``App(App(Sym('p'), (Sym('a'),)),
  (Var('X'), Sym('b')))``.  Zero-ary applications ``p()`` are permitted and
  distinct from the bare symbol ``p`` (footnote 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple, Union


class Term:
    """Abstract base class for HiLog terms.

    Concrete subclasses are :class:`Var`, :class:`Sym`, :class:`Num` and
    :class:`App`.  All of them are immutable and hashable so they can be used
    freely as dictionary keys and set members, which the grounding and
    fixpoint engines rely on heavily.
    """

    __slots__ = ()

    def is_ground(self):
        """Return ``True`` when the term contains no variables."""
        raise NotImplementedError

    def variables(self):
        """Return the set of :class:`Var` objects occurring in the term."""
        raise NotImplementedError

    def symbols(self):
        """Return the set of symbol names (strings) occurring in the term."""
        raise NotImplementedError

    def depth(self):
        """Return the nesting depth of the term (symbols and variables are 0)."""
        raise NotImplementedError

    def size(self):
        """Return the number of nodes in the term tree."""
        raise NotImplementedError

    # The pretty printer lives in repro.hilog.pretty; __repr__ delegates to it
    # lazily to avoid an import cycle.
    def __repr__(self):
        from repro.hilog.pretty import format_term

        return format_term(self)


class Var(Term):
    """A logical variable.

    Variables compare by name: two ``Var('X')`` objects are equal.  The
    parser produces names starting with an upper-case letter or underscore;
    programmatically constructed variables may use any string.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))

    def __setattr__(self, key, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return False

    def variables(self):
        return {self}

    def symbols(self):
        return set()

    def depth(self):
        return 0

    def size(self):
        return 1


class Sym(Term):
    """An atomic HiLog symbol.

    The same symbol may be used as a constant, as a function name, or as a
    predicate name — possibly all three in one program — because HiLog does
    not distinguish these roles.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("sym", name)))

    def __setattr__(self, key, value):
        raise AttributeError("Sym is immutable")

    def __eq__(self, other):
        return isinstance(other, Sym) and other.name == self.name and type(other) is type(self)

    def __hash__(self):
        return self._hash

    def is_ground(self):
        return True

    def variables(self):
        return set()

    def symbols(self):
        return {self.name}

    def depth(self):
        return 0

    def size(self):
        return 1


class Num(Sym):
    """An integer literal.

    Numbers behave exactly like symbols for unification, grounding and the
    semantics; the attached :attr:`value` is only consulted by arithmetic and
    comparison builtins and by aggregates.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__(str(int(value)))
        object.__setattr__(self, "value", int(value))

    def __eq__(self, other):
        return isinstance(other, Num) and other.value == self.value

    def __hash__(self):
        return hash(("num", self.value))


class App(Term):
    """Application of a term to a tuple of argument terms: ``name(args...)``.

    ``name`` is itself an arbitrary term (usually a :class:`Sym` or another
    :class:`App`, but a :class:`Var` is legal — that is what gives HiLog its
    higher-order flavour, e.g. ``G(X, Y)`` or ``winning(M)(X)``).

    Hashing and groundness are the hot inner loops of every set/dict the
    engines use, so both are memoized in slots at construction.  Because
    terms are built bottom-up, each construction only consults the (already
    cached) values of its immediate children, making ``hash`` and
    ``is_ground`` O(1) after construction instead of O(term size) per call.
    """

    __slots__ = ("name", "args", "_hash", "_ground")

    def __init__(self, name, args=()):
        if not isinstance(name, Term):
            raise TypeError("App name must be a Term, got %r" % (name,))
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError("App argument must be a Term, got %r" % (arg,))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("app", name, args)))
        object.__setattr__(
            self, "_ground", name.is_ground() and all(arg.is_ground() for arg in args)
        )

    def __setattr__(self, key, value):
        raise AttributeError("App is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, App)
            and other._hash == self._hash
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self):
        return self._hash

    @property
    def arity(self):
        """Number of arguments of the application."""
        return len(self.args)

    def is_ground(self):
        return self._ground

    # The traversals below are iterative (explicit stacks) so that deeply
    # nested terms — which arise when saturating non-strongly-range-restricted
    # programs such as Example 5.2's unguarded tc(G) — never hit Python's
    # recursion limit.
    def variables(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(node)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def symbols(self):
        result = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sym):
                result.add(node.name)
            elif isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return result

    def depth(self):
        max_depth = 0
        stack = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            if isinstance(node, App):
                stack.append((node.name, depth + 1))
                for arg in node.args:
                    stack.append((arg, depth + 1))
            else:
                if depth > max_depth:
                    max_depth = depth
        # An App with no children pushed still contributes its own level.
        if isinstance(self, App) and max_depth == 0:
            return 1
        return max_depth

    def size(self):
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, App):
                stack.append(node.name)
                stack.extend(node.args)
        return count


# ---------------------------------------------------------------------------
# Convenience constructors and helpers
# ---------------------------------------------------------------------------

# The list constructor symbols used by the parser's [H|T] sugar.
CONS = Sym("$cons")
NIL = Sym("$nil")


def sym(name):
    """Build a :class:`Sym` (or :class:`Num` when given an ``int``)."""
    if isinstance(name, Term):
        return name
    if isinstance(name, bool):
        raise TypeError("booleans are not HiLog symbols")
    if isinstance(name, int):
        return Num(name)
    return Sym(str(name))


def var(name):
    """Build a :class:`Var`."""
    if isinstance(name, Var):
        return name
    return Var(str(name))


def app(name, *args):
    """Build an application ``name(args...)``.

    ``name`` may be a string (converted to a :class:`Sym`), and arguments may
    be strings/ints which are converted with :func:`sym`.  Strings beginning
    with an upper-case letter or ``_`` are *not* auto-converted to variables;
    use :func:`var` or :class:`Var` explicitly for programmatic construction.
    """
    name_term = sym(name) if not isinstance(name, Term) else name
    converted = tuple(arg if isinstance(arg, Term) else sym(arg) for arg in args)
    return App(name_term, converted)


def make_list(items, tail=NIL):
    """Build a HiLog list term out of ``items`` using the ``$cons``/``$nil``
    constructors used by the parser's ``[a, b | T]`` sugar."""
    result = tail
    for item in reversed(list(items)):
        result = App(CONS, (item, result))
    return result


def list_items(term):
    """Inverse of :func:`make_list` for proper lists.

    Returns a list of element terms, or ``None`` when ``term`` is not a
    proper ``$cons``/``$nil`` list.
    """
    items = []
    node = term
    while True:
        if node == NIL:
            return items
        if isinstance(node, App) and node.name == CONS and len(node.args) == 2:
            items.append(node.args[0])
            node = node.args[1]
            continue
        return None


def is_ground(term):
    """Module-level alias for :meth:`Term.is_ground`."""
    return term.is_ground()


def variables_of(term):
    """Module-level alias for :meth:`Term.variables`."""
    return term.variables()


def term_depth(term):
    """Module-level alias for :meth:`Term.depth`."""
    return term.depth()


def term_size(term):
    """Module-level alias for :meth:`Term.size`."""
    return term.size()


def subterms(term):
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, App):
            stack.append(current.name)
            stack.extend(reversed(current.args))


def functor(term):
    """Return the outermost *name* of an atom.

    For ``p(a)(X)`` this is the term ``p(a)``; for ``p(a)`` it is the symbol
    ``p``; for a bare symbol it is the symbol itself.  Used when building
    predicate-name dependency graphs.
    """
    if isinstance(term, App):
        return term.name
    return term


def outermost_symbol(term):
    """Return the left-most, inner-most symbol of an atom's name, or ``None``.

    For ``winning(M)(X)`` this is the symbol ``winning``; for ``G(X, Y)``
    (variable name) it is ``None``.  This is the "outermost functor" used in
    Section 6 of the paper when assigning levels to predicate names.
    """
    node = term
    while isinstance(node, App):
        node = node.name
    if isinstance(node, Sym):
        return node
    return None


def predicate_name(atom):
    """Return the predicate-name term of an atom.

    An atom in a rule is either an application (its name is the predicate
    name, which may itself be a complex term such as ``tc(G)``) or a bare
    symbol / variable (a 0-argument proposition, its own name).
    """
    if isinstance(atom, App):
        return atom.name
    return atom


def atom_arguments(atom):
    """Return the tuple of argument terms of an atom (empty for symbols)."""
    if isinstance(atom, App):
        return atom.args
    return ()


def rename_variables(term, mapping, counter):
    """Rename variables in ``term`` apart using ``mapping`` (a dict that is
    updated in place) and ``counter`` (a one-element list used as a mutable
    integer).  Returns the renamed term.  Used to standardize rules apart."""
    if isinstance(term, Var):
        if term not in mapping:
            counter[0] += 1
            mapping[term] = Var("_R%d" % counter[0])
        return mapping[term]
    if isinstance(term, App):
        new_name = rename_variables(term.name, mapping, counter)
        new_args = tuple(rename_variables(arg, mapping, counter) for arg in term.args)
        return App(new_name, new_args)
    return term
