"""Substitutions over HiLog terms.

A substitution maps variables to terms.  It is represented immutably (a thin
wrapper around a dict) so substitutions can be shared between choice points
in the unification and grounding code without defensive copying.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from repro.hilog.terms import App, Term, Var


class Substitution:
    """An immutable mapping from :class:`Var` to :class:`Term`.

    ``apply`` walks bindings transitively, so a triangular substitution such
    as ``{X: Y, Y: a}`` applies to ``X`` as ``a``.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings=None):
        if bindings is None:
            bindings = {}
        clean = {}
        for variable, value in dict(bindings).items():
            if not isinstance(variable, Var):
                raise TypeError("substitution keys must be Var, got %r" % (variable,))
            if not isinstance(value, Term):
                raise TypeError("substitution values must be Term, got %r" % (value,))
            if value is not variable:
                clean[variable] = value
        self._bindings = clean

    @classmethod
    def _trusted(cls, bindings):
        """Wrap an already-validated ``{Var: Term}`` dict without copying.

        Internal fast path for the matching/joining hot loops (the dict must
        not be mutated afterwards and must not bind a variable to itself).
        """
        subst = cls.__new__(cls)
        subst._bindings = bindings
        return subst

    # -- mapping protocol ---------------------------------------------------
    def __contains__(self, variable):
        return variable in self._bindings

    def __getitem__(self, variable):
        return self._bindings[variable]

    def get(self, variable, default=None):
        return self._bindings.get(variable, default)

    def __len__(self):
        return len(self._bindings)

    def __iter__(self):
        return iter(self._bindings)

    def items(self):
        return self._bindings.items()

    def keys(self):
        return self._bindings.keys()

    def values(self):
        return self._bindings.values()

    def __eq__(self, other):
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self):
        return hash(frozenset(self._bindings.items()))

    def __repr__(self):
        pairs = ", ".join("%s/%r" % (variable.name, value) for variable, value in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return "{%s}" % pairs

    def is_empty(self):
        """Return ``True`` when the substitution binds no variables."""
        return not self._bindings

    # -- application --------------------------------------------------------
    def resolve(self, variable):
        """Follow bindings starting at ``variable`` until a non-variable term
        or an unbound variable is reached."""
        seen = set()
        current = variable
        while isinstance(current, Var) and current in self._bindings:
            if current in seen:
                break
            seen.add(current)
            current = self._bindings[current]
        return current

    def _deref(self, term):
        """Follow variable bindings without allocating a seen-set; bounded by
        the binding count so accidental cycles terminate (like ``resolve``)."""
        bindings = self._bindings
        hops = len(bindings)
        while type(term) is Var:
            value = bindings.get(term)
            if value is None or hops < 0:
                break
            term = value
            hops -= 1
        return term

    def apply(self, term):
        """Apply the substitution to ``term``, producing a new term.

        Implemented with an explicit stack (no recursion) so the deeply
        nested terms of non-strongly-range-restricted programs — which the
        ``terms.py`` traversals already handle iteratively — cannot hit
        Python's recursion limit here either.  Ground subterms are returned
        as-is via the cached groundness bit, without being traversed.
        """
        bindings = self._bindings
        if not bindings or term.is_ground():
            return term
        term = self._deref(term)
        if type(term) is not App:
            return term
        if term.is_ground():
            return term
        # Post-order rebuild: VISIT pushes children, BUILD pops their results.
        out = []
        work = [(term, False)]
        while work:
            node, build = work.pop()
            if build:
                count = len(node.args)
                name = out.pop()
                args = tuple(out.pop() for _ in range(count))
                if name is node.name and args == node.args:
                    out.append(node)
                else:
                    out.append(App(name, args))
                continue
            if type(node) is Var:
                node = self._deref(node)
            if type(node) is App and not node.is_ground():
                work.append((node, True))
                work.append((node.name, False))
                for arg in node.args:
                    work.append((arg, False))
            else:
                out.append(node)
        return out[0]

    # -- construction -------------------------------------------------------
    def bind(self, variable, value):
        """Return a new substitution extending this one with ``variable -> value``."""
        new_bindings = dict(self._bindings)
        new_bindings[variable] = value
        return Substitution(new_bindings)

    def compose(self, other):
        """Return the composition ``self ∘ other``.

        Applying the result is equivalent to applying ``self`` first and then
        ``other``:  ``(self.compose(other)).apply(t) == other.apply(self.apply(t))``.
        """
        new_bindings = {}
        for variable, value in self._bindings.items():
            new_bindings[variable] = other.apply(value)
        for variable, value in other.items():
            if variable not in new_bindings:
                new_bindings[variable] = value
        return Substitution(new_bindings)

    def restrict(self, variables):
        """Return the restriction of the substitution to ``variables``."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._bindings.items() if v in keep})

    def as_dict(self):
        """Return a plain ``dict`` copy of the bindings."""
        return dict(self._bindings)

    def pin_roots(self):
        """The terms this substitution retains (variables and values), for
        intern-generation pin sets.  Callers holding substitutions across a
        :func:`repro.hilog.terms.collect_generation` — magic-sets bindings,
        saved unifiers — pass these as explicit pins so the bound terms
        keep their canonical identity::

            binding = match(pattern, atom)
            collect_generation(pins=binding.pin_roots())
        """
        for variable, value in self._bindings.items():
            yield variable
            yield value


def empty_substitution():
    """Return the empty substitution."""
    return Substitution()


def compose(first, second):
    """Module-level alias for :meth:`Substitution.compose`."""
    return first.compose(second)
