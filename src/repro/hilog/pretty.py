"""Pretty printing of HiLog terms, literals, rules and programs.

The output round-trips through the parser (``parse_term(format_term(t)) == t``)
for every term the parser can produce, which the property-based tests verify.
"""

from __future__ import annotations

from repro.hilog.program import AggregateSpec, Literal, Program, Rule
from repro.hilog.terms import App, CONS, NIL, Num, Sym, Term, Var, list_items

#: Symbols that need quoting when printed (they would not re-lex as one IDENT).
def _needs_quoting(name):
    if not name:
        return True
    if name[0].isdigit():
        return False
    if not (name[0].islower()):
        return True
    return not all(ch.isalnum() or ch == "_" for ch in name)


_INFIX_NAMES = {"+", "-", "*", "/", "=", "\\=", "<", ">", "=<", ">=", "is", "=:=", "=\\="}


def format_term(term):
    """Render a term in concrete HiLog syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Num):
        return str(term.value)
    if isinstance(term, Sym):
        if term == NIL:
            return "[]"
        if _needs_quoting(term.name):
            return "'%s'" % term.name.replace("'", "''")
        return term.name
    if isinstance(term, App):
        if term.name == CONS and len(term.args) == 2:
            return _format_list(term)
        if (
            isinstance(term.name, Sym)
            and term.name.name in _INFIX_NAMES
            and len(term.args) == 2
        ):
            left, right = term.args
            return "%s %s %s" % (_format_operand(left), term.name.name, _format_operand(right))
        name = format_term(term.name)
        if isinstance(term.name, App) and list_items(term.name) is None:
            # Applications of applications print naturally: tc(G)(X, Y).
            pass
        args = ", ".join(format_term(arg) for arg in term.args)
        return "%s(%s)" % (name, args)
    raise TypeError("not a Term: %r" % (term,))


def _format_list(term):
    """Render a ``$cons``/``$nil`` chain using list syntax, including partial
    lists such as ``[X | Rest]``."""
    items = []
    node = term
    while isinstance(node, App) and node.name == CONS and len(node.args) == 2:
        items.append(format_term(node.args[0]))
        node = node.args[1]
    if node == NIL:
        return "[%s]" % ", ".join(items)
    return "[%s | %s]" % (", ".join(items), format_term(node))


def _format_operand(term):
    text = format_term(term)
    if isinstance(term, App) and isinstance(term.name, Sym) and term.name.name in _INFIX_NAMES:
        return "(%s)" % text
    return text


def format_literal(literal):
    """Render a literal; negation uses the ``not`` keyword."""
    if isinstance(literal, AggregateSpec):
        return format_aggregate(literal)
    body = format_term(literal.atom)
    if literal.positive:
        return body
    return "not %s" % body


def format_aggregate(aggregate):
    """Render an aggregate subgoal ``Result = op(Value : Condition)``."""
    return "%s = %s(%s : %s)" % (
        format_term(aggregate.result),
        aggregate.op,
        format_term(aggregate.value),
        format_term(aggregate.condition),
    )


def format_rule(rule):
    """Render a rule, with the trailing full stop."""
    head = format_term(rule.head)
    items = [format_literal(literal) for literal in rule.body]
    items.extend(format_aggregate(aggregate) for aggregate in rule.aggregates)
    if not items:
        return "%s." % head
    return "%s :- %s." % (head, ", ".join(items))


def format_program(program):
    """Render a whole program, one clause per line."""
    return "\n".join(format_rule(rule) for rule in program.rules)


def format_interpretation(true_atoms, undefined_atoms=()):
    """Render a three-valued interpretation compactly (used by examples)."""
    true_part = sorted(format_term(atom) for atom in true_atoms)
    undef_part = sorted(format_term(atom) for atom in undefined_atoms)
    lines = ["true: {%s}" % ", ".join(true_part)]
    if undef_part:
        lines.append("undefined: {%s}" % ", ".join(undef_part))
    return "\n".join(lines)
