"""Pretty printing of HiLog terms, literals, rules and programs.

The output round-trips through the parser (``parse_term(format_term(t)) == t``)
for every term the parser can produce, which the property-based tests verify.
"""

from __future__ import annotations

from repro.hilog.program import AggregateSpec, Literal, Program, Rule
from repro.hilog.terms import App, CONS, NIL, Num, Sym, Term, Var

#: Names the parser treats as keywords/operators in clause positions; a
#: bare symbol spelled like one must be quoted to survive the round trip
#: (``a :- not.`` is a syntax error, ``a :- 'not'.`` is the symbol).
_KEYWORD_NAMES = frozenset({"not", "is"})


#: Symbols that need quoting when printed (they would not re-lex as one
#: IDENT).  Digit-leading names need quotes too: a bare ``0A`` fails to lex
#: and a bare ``123`` re-lexes as the *number* 123, which is a different
#: term than the symbol ``'123'`` (``Num`` prints through its own branch).
def _needs_quoting(name):
    if not name:
        return True
    if name in _KEYWORD_NAMES:
        return True
    if not name[0].islower():
        return True
    return not all(ch.isalnum() or ch == "_" for ch in name)


#: All names the printer may render infix somewhere.
_INFIX_NAMES = {"+", "-", "*", "/", "=", "\\=", "<", ">", "=<", ">=", "is", "=:=", "=\\="}
#: Arithmetic operators parse as infix in *any* term position (the parser's
#: additive/multiplicative levels), so ``format_term`` prints them infix.
_ARITHMETIC_INFIX = frozenset({"+", "-", "*", "/"})
#: Comparisons (and ``is``) parse infix only at the body-literal level; in
#: ordinary term positions they must print functionally with a quoted name
#: (``'<'(a, b)``) or the output would not re-parse.
_COMPARISON_INFIX = frozenset(_INFIX_NAMES) - _ARITHMETIC_INFIX


def format_term(term):
    """Render a term in concrete HiLog syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Num):
        return str(term.value)
    if isinstance(term, Sym):
        if term == NIL:
            return "[]"
        if _needs_quoting(term.name):
            return "'%s'" % term.name.replace("'", "''")
        return term.name
    if isinstance(term, App):
        if term.name == CONS and len(term.args) == 2:
            return _format_list(term)
        if (
            isinstance(term.name, Sym)
            and term.name.name in _ARITHMETIC_INFIX
            and len(term.args) == 2
        ):
            left, right = term.args
            return "%s %s %s" % (_format_operand(left), term.name.name, _format_operand(right))
        # Comparison-named applications fall through to the generic path:
        # their Sym names always need quoting (non-alphanumeric, or the
        # keywords ``is``/``=<``/...), so they print as ``'<'(a, b)``.
        name = format_term(term.name)
        if (
            isinstance(term.name, App)
            and isinstance(term.name.name, Sym)
            and term.name.name.name in _ARITHMETIC_INFIX
            and len(term.name.args) == 2
        ):
            # An infix-printed name in application position must be
            # parenthesized: (a * b)(x), not a * b(x) — the latter re-parses
            # with the argument list bound to the right operand.
            name = "(%s)" % name
        args = ", ".join(format_term(arg) for arg in term.args)
        return "%s(%s)" % (name, args)
    raise TypeError("not a Term: %r" % (term,))


def _format_list(term):
    """Render a ``$cons``/``$nil`` chain using list syntax, including partial
    lists such as ``[X | Rest]``."""
    items = []
    node = term
    while isinstance(node, App) and node.name == CONS and len(node.args) == 2:
        items.append(format_term(node.args[0]))
        node = node.args[1]
    if node == NIL:
        return "[%s]" % ", ".join(items)
    return "[%s | %s]" % (", ".join(items), format_term(node))


def _format_operand(term):
    text = format_term(term)
    if isinstance(term, App) and isinstance(term.name, Sym) \
            and term.name.name in _ARITHMETIC_INFIX:
        return "(%s)" % text
    return text


def format_literal(literal):
    """Render a literal; negation uses the ``not`` keyword.

    A *positive* builtin comparison prints infix (``N is M * 2``) — the
    body-item grammar parses that form.  A *negated* one keeps the
    functional spelling ``format_term`` produces (``not \'<\'(a, b)``),
    because the grammar has no negated-infix production.  An atom that
    prints with a leading parenthesis is negated with the ``\\+`` operator:
    ``not (...)`` would re-lex as the application ``not(...)`` (the
    parser's lookahead that keeps Example 5.3's ``not(X)`` an ordinary
    symbol), whereas ``\\+`` is unambiguous.
    """
    if isinstance(literal, AggregateSpec):
        return format_aggregate(literal)
    atom = literal.atom
    if (
        literal.positive
        and isinstance(atom, App)
        and isinstance(atom.name, Sym)
        and atom.name.name in _COMPARISON_INFIX
        and len(atom.args) == 2
    ):
        left, right = atom.args
        return "%s %s %s" % (_format_operand(left), atom.name.name,
                             _format_operand(right))
    body = format_term(atom)
    if literal.positive:
        return body
    if body.startswith("("):
        return "\\+ %s" % body
    return "not %s" % body


def format_aggregate(aggregate):
    """Render an aggregate subgoal ``Result = op(Value : Condition)``."""
    return "%s = %s(%s : %s)" % (
        format_term(aggregate.result),
        aggregate.op,
        format_term(aggregate.value),
        format_term(aggregate.condition),
    )


def format_rule(rule):
    """Render a rule, with the trailing full stop."""
    head = format_term(rule.head)
    items = [format_literal(literal) for literal in rule.body]
    items.extend(format_aggregate(aggregate) for aggregate in rule.aggregates)
    if not items:
        return "%s." % head
    return "%s :- %s." % (head, ", ".join(items))


def format_program(program):
    """Render a whole program, one clause per line."""
    return "\n".join(format_rule(rule) for rule in program.rules)


def format_interpretation(true_atoms, undefined_atoms=()):
    """Render a three-valued interpretation compactly (used by examples)."""
    true_part = sorted(format_term(atom) for atom in true_atoms)
    undef_part = sorted(format_term(atom) for atom in undefined_atoms)
    lines = ["true: {%s}" % ", ".join(true_part)]
    if undef_part:
        lines.append("undefined: {%s}" % ", ".join(undef_part))
    return "\n".join(lines)
