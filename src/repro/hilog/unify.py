"""Unification and matching of HiLog terms.

Chen, Kifer and Warren show that HiLog unification is decidable and can be
performed by treating an application ``t(t1, ..., tn)`` as a compound with
``n + 1`` components (the name and the arguments): two applications unify when
their names unify, their arities agree and their arguments unify pairwise.
This module implements most-general unification with the occurs check, and
one-sided matching (used when grounding rules against ground atoms, where it
is considerably faster than full unification).
"""

from __future__ import annotations

from typing import Optional

from repro.hilog.errors import UnificationError
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Sym, Term, Var


def _occurs(variable, term, bindings):
    """Return True when ``variable`` occurs in ``term`` under ``bindings``."""
    stack = [term]
    while stack:
        current = stack.pop()
        while isinstance(current, Var) and current in bindings:
            current = bindings[current]
        if isinstance(current, Var):
            if current is variable:
                return True
        elif isinstance(current, App):
            stack.append(current.name)
            stack.extend(current.args)
    return False


def _walk(term, bindings):
    """Dereference a variable through ``bindings`` (non-recursively on Apps)."""
    while isinstance(term, Var) and term in bindings:
        term = bindings[term]
    return term


def unify(left, right, subst=None, occurs_check=True):
    """Unify two HiLog terms.

    Returns the most general unifier extending ``subst`` as a
    :class:`Substitution`, or ``None`` when the terms do not unify.
    """
    bindings = dict(subst.items()) if subst is not None else {}
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = _walk(a, bindings)
        b = _walk(b, bindings)
        if a is b:  # interned terms: structural equality is identity
            continue
        if isinstance(a, Var):
            if occurs_check and _occurs(a, b, bindings):
                return None
            bindings[a] = b
            continue
        if isinstance(b, Var):
            if occurs_check and _occurs(b, a, bindings):
                return None
            bindings[b] = a
            continue
        if isinstance(a, App) and isinstance(b, App):
            if len(a.args) != len(b.args):
                return None
            stack.append((a.name, b.name))
            stack.extend(zip(a.args, b.args))
            continue
        # Distinct symbols, or a symbol against an application.
        return None
    return Substitution(bindings)


def mgu(left, right, occurs_check=True):
    """Return the most general unifier of two terms, raising on failure."""
    result = unify(left, right, occurs_check=occurs_check)
    if result is None:
        raise UnificationError("terms do not unify: %r and %r" % (left, right))
    return result


def unifiable(left, right, occurs_check=True):
    """Return True when the two terms unify."""
    return unify(left, right, occurs_check=occurs_check) is not None


def match(pattern, ground, subst=None):
    """One-sided matching: bind variables of ``pattern`` to make it equal to
    ``ground``.

    ``ground`` is treated as containing no bindable variables (it is usually a
    ground atom from a database).  Returns an extending substitution or
    ``None``.  This is the workhorse of the relevance-driven grounder and the
    semi-naive engine, where the right-hand side is always ground.
    """
    bindings = dict(subst.items()) if subst is not None else {}
    stack = [(pattern, ground)]
    while stack:
        a, b = stack.pop()
        a = _walk(a, bindings)
        if isinstance(a, Var):
            bindings[a] = b
            continue
        if a is b:  # interned terms: structural equality is identity
            continue
        if isinstance(a, App) and isinstance(b, App):
            if len(a.args) != len(b.args):
                return None
            stack.append((a.name, b.name))
            stack.extend(zip(a.args, b.args))
            continue
        return None
    # The ground side contributes only Term values and never binds a
    # variable to itself, so the validating constructor can be skipped.
    return Substitution._trusted(bindings)


def variant(left, right):
    """Return True when two terms are equal up to a renaming of variables."""
    forward = {}
    backward = {}
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        if isinstance(a, Var) and isinstance(b, Var):
            if forward.setdefault(a, b) != b:
                return False
            if backward.setdefault(b, a) != a:
                return False
            continue
        if isinstance(a, App) and isinstance(b, App):
            if len(a.args) != len(b.args):
                return False
            stack.append((a.name, b.name))
            stack.extend(zip(a.args, b.args))
            continue
        if a is not b:
            return False
    return True
