"""The universal-relation ("call"/"apply") encoding of HiLog programs.

Section 2 of the paper explains HiLog's first-order semantics through a
transformation into a normal program with one generic unary predicate
``call`` and one generic function ``apply_i`` ("u_i" in the paper) for each
arity ``i``: an ``n``-ary HiLog atom ``t(t1, ..., tn)`` becomes
``call(apply_{n+1}(t', t1', ..., tn'))`` where the primes denote recursive
encoding of nested applications (nested ones without the ``call`` wrapper).

For example (paper, Section 2)::

    p(X, a)(Z)            -->  call(apply_1(apply_2(p, X, a), Z))
    p(a, X)(Y)(b, f(c)(d)) -->  call(apply_2(apply_1(apply_2(p, a, X), Y), b,
                                              apply_1(apply_1(f, c), d)))

The least model of the encoded (negation-free) program gives the HiLog
semantics.  The encoding is also the vehicle for the paper's observation that
preservation under extensions cannot be reduced to domain independence: two
HiLog programs sharing no symbols still share ``call`` and the ``apply_i``
after encoding.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Num, Sym, Term, Var

#: The universal relation name (the paper writes ``call``).
CALL = Sym("call")

#: Prefix of the generic function names; ``apply_3`` plays the role of the
#: paper's ``u_3``.
APPLY_PREFIX = "apply_"


def apply_symbol(arity):
    """The generic function symbol of the given arity (``apply_<n>``)."""
    return Sym("%s%d" % (APPLY_PREFIX, int(arity)))


def _is_apply(symbol):
    return (
        isinstance(symbol, Sym)
        and not isinstance(symbol, Num)
        and symbol.name.startswith(APPLY_PREFIX)
        and symbol.name[len(APPLY_PREFIX):].isdigit()
    )


def encode_term(term):
    """Encode a HiLog term as a first-order term over ``apply_i`` functions.

    Symbols and variables encode as themselves; an application
    ``t(t1,...,tn)`` encodes as ``apply_{n+1}(enc(t), enc(t1), ..., enc(tn))``.
    """
    if isinstance(term, (Var, Sym)):
        return term
    if isinstance(term, App):
        encoded_name = encode_term(term.name)
        encoded_args = tuple(encode_term(arg) for arg in term.args)
        return App(apply_symbol(len(term.args) + 1), (encoded_name,) + encoded_args)
    raise TypeError("not a Term: %r" % (term,))


def encode_atom(atom):
    """Encode a HiLog atom as a ``call(...)`` atom of the universal program."""
    return App(CALL, (encode_term(atom),))


def encode_literal(literal):
    """Encode a literal (preserving its sign).  Builtins are left unchanged."""
    if literal.is_builtin():
        return literal
    return Literal(encode_atom(literal.atom), literal.positive)


def encode_rule(rule):
    """Encode one HiLog rule into the universal-relation form."""
    if rule.aggregates:
        raise ValueError("the universal-relation encoding does not cover aggregates")
    return Rule(
        encode_atom(rule.head),
        tuple(encode_literal(literal) for literal in rule.body),
    )


def encode_program(program):
    """Encode a whole HiLog program into its universal-relation form.

    The result is a *normal* program: every atom is ``call(t)`` for a
    first-order term ``t`` over the original symbols plus the ``apply_i``.
    """
    return Program(tuple(encode_rule(rule) for rule in program.rules))


def decode_term(term):
    """Invert :func:`encode_term` (strict: raises on malformed encodings)."""
    if isinstance(term, (Var, Sym)) and not (isinstance(term, Sym) and _is_apply(term)):
        return term
    if isinstance(term, App) and _is_apply(term.name):
        expected = int(term.name.name[len(APPLY_PREFIX):])
        if len(term.args) != expected:
            raise ValueError("malformed apply term: %r" % (term,))
        decoded_name = decode_term(term.args[0])
        decoded_args = tuple(decode_term(arg) for arg in term.args[1:])
        return App(decoded_name, decoded_args)
    if isinstance(term, Sym):
        return term
    raise ValueError("cannot decode %r" % (term,))


def decode_atom(atom):
    """Invert :func:`encode_atom`: ``call(t)`` back to the HiLog atom."""
    if isinstance(atom, App) and atom.name == CALL and len(atom.args) == 1:
        return decode_term(atom.args[0])
    raise ValueError("not a call/1 atom: %r" % (atom,))


def is_call_atom(atom):
    """True when ``atom`` has the shape ``call(t)``."""
    return isinstance(atom, App) and atom.name == CALL and len(atom.args) == 1


def bridge_rule(predicate_symbol, arity):
    """The explicit conversion rule the paper mentions for applying encoded
    generic programs to relations stored as ordinary atoms::

        call(apply_{n+1}(f, X1, ..., Xn)) :- f(X1, ..., Xn)

    One such rule is needed per concrete predicate ``f`` — which is exactly
    the redundancy HiLog avoids (Section 2 of the paper).
    """
    variables = tuple(Var("X%d" % i) for i in range(1, arity + 1))
    head = App(CALL, (App(apply_symbol(arity + 1), (Sym(str(predicate_symbol)),) + variables),))
    body_atom = App(Sym(str(predicate_symbol)), variables)
    return Rule(head, (Literal(body_atom),))
