"""Recursive-descent parser for the concrete HiLog syntax.

Grammar (informally)::

    program   ::=  clause*
    clause    ::=  rule "."
    rule      ::=  term [ ":-" body ]
    query     ::=  [ "?-" ] body "."?
    body      ::=  bodyitem ("," bodyitem)*
    bodyitem  ::=  ("not" | "\\+" | "~") atom
                |  term ":-"-free infix-comparison term      (builtin literal)
                |  term "=" aggop "(" term ":" atom ")"       (aggregate)
                |  atom
    term      ::=  additive arithmetic expression over applications
    application ::= primary ( "(" [ term ("," term)* ] ")" )*
    primary   ::=  VAR | NUMBER | IDENT | "(" term ")" | list

Negation: ``not`` is treated as the negation operator unless it is directly
followed by ``(`` with no space carrying semantic weight — i.e. ``not(X)`` is
the application of the symbol ``not`` (as in Example 5.3 of the paper) while
``not p(X)`` is the negative literal ``¬ p(X)``.  The unambiguous forms
``\\+`` and ``~`` are always negation.
"""

from __future__ import annotations

import itertools

from typing import List, Optional, Sequence, Tuple

from repro.hilog.errors import ParseError
from repro.hilog.lexer import (
    KIND_EOF,
    KIND_IDENT,
    KIND_NUMBER,
    KIND_PUNCT,
    KIND_VAR,
    Token,
    tokenize,
)
from repro.hilog.program import AggregateSpec, Literal, Program, Rule, Span
from repro.hilog.terms import App, Num, Sym, Term, Var, fresh_var, make_list

_COMPARISON_OPS = ("=", "\\=", "<", ">", "=<", ">=", "=:=", "=\\=")
_AGG_OPS = ("sum", "count", "min", "max")

#: Process-wide parse counter: anonymous-variable display names embed it so
#: printed output never shows two anons from different parses under one
#: name.  Distinctness itself does not depend on the names: every ``_``
#: becomes a *fresh, uninterned* :class:`Var` (see
#: :func:`repro.hilog.terms.fresh_var`).  A per-parser-only counter with
#: interned variables used to make ``_Anon1`` of every parse the *same
#: object* — silently aliasing anonymous variables across parsed fragments
#: combined into one rule — while globally unique interned names would
#: leak one immortal variable per ``_`` per parse.
_PARSE_IDS = itertools.count(1)


class _Parser:
    """Stateful token-stream parser.  One instance per parse call."""

    def __init__(self, text):
        self._tokens = tokenize(text)
        self._pos = 0
        self._anon_prefix = "_Anon%d_" % next(_PARSE_IDS)
        self._anon_counter = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != KIND_EOF:
            self._pos += 1
        return token

    def _check(self, kind, value=None):
        token = self._peek()
        if token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        return True

    def _accept(self, kind, value=None):
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._peek()
        if not self._check(kind, value):
            expected = value if value is not None else kind
            raise ParseError(
                "expected %r but found %r" % (expected, token.value or token.kind),
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _at_eof(self):
        return self._peek().kind == KIND_EOF

    # -- terms --------------------------------------------------------------
    def parse_term(self):
        """Parse a term, including infix arithmetic expressions."""
        return self._additive()

    def _additive(self):
        left = self._multiplicative()
        while self._check(KIND_PUNCT, "+") or self._check(KIND_PUNCT, "-"):
            op = self._advance().value
            right = self._multiplicative()
            left = App(Sym(op), (left, right))
        return left

    def _multiplicative(self):
        left = self._application()
        while self._check(KIND_PUNCT, "*") or self._check(KIND_PUNCT, "/"):
            op = self._advance().value
            right = self._application()
            left = App(Sym(op), (left, right))
        return left

    def _application(self):
        term = self._primary()
        while self._check(KIND_PUNCT, "("):
            self._advance()
            args = []
            if not self._check(KIND_PUNCT, ")"):
                args.append(self.parse_term())
                while self._accept(KIND_PUNCT, ","):
                    args.append(self.parse_term())
            self._expect(KIND_PUNCT, ")")
            term = App(term, tuple(args))
        return term

    def _primary(self):
        token = self._peek()
        if token.kind == KIND_VAR:
            self._advance()
            if token.value == "_":
                self._anon_counter += 1
                return fresh_var("%s%d" % (self._anon_prefix, self._anon_counter))
            return Var(token.value)
        if token.kind == KIND_NUMBER:
            self._advance()
            return Num(int(token.value))
        if token.kind == KIND_IDENT:
            self._advance()
            return Sym(token.value)
        if token.kind == KIND_PUNCT and token.value == "(":
            self._advance()
            inner = self.parse_term()
            self._expect(KIND_PUNCT, ")")
            return inner
        if token.kind == KIND_PUNCT and token.value == "[":
            return self._list()
        raise ParseError(
            "expected a term but found %r" % (token.value or token.kind),
            line=token.line,
            column=token.column,
        )

    def _list(self):
        self._expect(KIND_PUNCT, "[")
        if self._accept(KIND_PUNCT, "]"):
            return make_list([])
        items = [self.parse_term()]
        while self._accept(KIND_PUNCT, ","):
            items.append(self.parse_term())
        tail = None
        if self._accept(KIND_PUNCT, "|"):
            tail = self.parse_term()
        self._expect(KIND_PUNCT, "]")
        if tail is None:
            return make_list(items)
        return make_list(items, tail=tail)

    # -- body items ----------------------------------------------------------
    def _is_negation_keyword(self):
        """``not`` acts as negation unless used as an ordinary symbol ``not(...)``."""
        token = self._peek()
        if token.kind != KIND_IDENT or token.value != "not" or token.quoted:
            return False
        following = self._peek(1)
        if following.kind == KIND_PUNCT and following.value == "(":
            # ``not(X)`` — the application of the symbol `not` (Example 5.3).
            return False
        return True

    def _parse_body_item(self):
        """Parse one body item: literal, builtin comparison, or aggregate.

        Returns either a :class:`Literal` or an :class:`AggregateSpec`,
        carrying the :class:`Span` of its first token.
        """
        start = self._peek()
        span = Span(start.line, start.column)
        if (
            self._accept(KIND_PUNCT, "\\+") is not None
            or self._accept(KIND_PUNCT, "~") is not None
        ):
            atom = self.parse_term()
            return Literal(atom, positive=False, span=span)
        if self._is_negation_keyword():
            self._advance()
            atom = self.parse_term()
            return Literal(atom, positive=False, span=span)

        left = self.parse_term()
        token = self._peek()
        if token.kind == KIND_PUNCT and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "=":
                aggregate = self._try_parse_aggregate(left, span)
                if aggregate is not None:
                    return aggregate
            right = self.parse_term()
            return Literal(App(Sym(op), (left, right)), span=span)
        if token.kind == KIND_IDENT and token.value == "is" and not token.quoted:
            self._advance()
            right = self.parse_term()
            return Literal(App(Sym("is"), (left, right)), span=span)
        return Literal(left, span=span)

    def _try_parse_aggregate(self, result, span=None):
        """After seeing ``result =``, try to parse ``op(Value : Condition)``.

        Returns an :class:`AggregateSpec` or ``None`` (with the token
        position restored) when the text is not an aggregate.
        """
        saved = self._pos
        token = self._peek()
        if token.kind != KIND_IDENT or token.quoted or token.value not in _AGG_OPS:
            return None
        op = token.value
        if not (self._peek(1).kind == KIND_PUNCT and self._peek(1).value == "("):
            return None
        self._advance()  # op
        self._advance()  # "("
        try:
            value = self.parse_term()
            if not self._accept(KIND_PUNCT, ":"):
                self._pos = saved
                return None
            condition = self.parse_term()
            self._expect(KIND_PUNCT, ")")
        except ParseError:
            self._pos = saved
            return None
        return AggregateSpec(op, value, condition, result, span=span)

    # -- rules, programs, queries ---------------------------------------------
    def parse_rule(self):
        """Parse one rule (without the trailing full stop)."""
        start = self._peek()
        span = Span(start.line, start.column)
        head = self.parse_term()
        body = []
        aggregates = []
        if self._accept(KIND_PUNCT, ":-"):
            items = [self._parse_body_item()]
            while self._accept(KIND_PUNCT, ","):
                items.append(self._parse_body_item())
            for item in items:
                if isinstance(item, AggregateSpec):
                    aggregates.append(item)
                else:
                    body.append(item)
        return Rule(head, tuple(body), tuple(aggregates), span=span)

    def parse_program(self):
        """Parse a whole program (a sequence of clauses terminated by '.')."""
        rules = []
        while not self._at_eof():
            rule = self.parse_rule()
            self._expect(KIND_PUNCT, ".")
            rules.append(rule)
        return Program(tuple(rules))

    def parse_query(self):
        """Parse a query: optional ``?-`` prefix, body, optional trailing '.'."""
        self._accept(KIND_PUNCT, "?-")
        items = [self._parse_body_item()]
        while self._accept(KIND_PUNCT, ","):
            items.append(self._parse_body_item())
        self._accept(KIND_PUNCT, ".")
        if not self._at_eof():
            token = self._peek()
            raise ParseError(
                "unexpected trailing input %r" % (token.value or token.kind),
                line=token.line,
                column=token.column,
            )
        for item in items:
            if isinstance(item, AggregateSpec):
                span = item.span
                raise ParseError(
                    "aggregates are not allowed in queries",
                    line=span.line if span is not None else None,
                    column=span.column if span is not None else None,
                )
        return tuple(items)


def parse_term(text):
    """Parse a single HiLog term from ``text``."""
    parser = _Parser(text)
    term = parser.parse_term()
    parser._accept(KIND_PUNCT, ".")
    if not parser._at_eof():
        token = parser._peek()
        raise ParseError(
            "unexpected trailing input %r" % (token.value or token.kind),
            line=token.line,
            column=token.column,
        )
    return term


def parse_rule(text):
    """Parse a single HiLog rule from ``text`` (trailing '.' optional)."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    parser._accept(KIND_PUNCT, ".")
    if not parser._at_eof():
        token = parser._peek()
        raise ParseError(
            "unexpected trailing input %r" % (token.value or token.kind),
            line=token.line,
            column=token.column,
        )
    return rule


def parse_program(text):
    """Parse a HiLog program (a sequence of '.'-terminated clauses)."""
    return _Parser(text).parse_program()


def parse_query(text):
    """Parse a query (with or without the leading ``?-``) into a tuple of literals."""
    return _Parser(text).parse_query()
