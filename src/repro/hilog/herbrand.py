"""Herbrand universe enumeration for HiLog programs.

In HiLog the Herbrand universe is *generated* by the symbols appearing in a
program: from those symbols all terms of all arities can be built, so the
universe is countably infinite whenever it is nonempty (paper, Section 2).
Because the paper's constructions instantiate programs over this infinite
universe, a practical reproduction needs finite approximations:

* :class:`HerbrandUniverse` enumerates all HiLog terms over a symbol set up
  to a configurable application depth and maximum arity.  This exhaustive
  enumeration is what the semantics experiments use on small vocabularies
  (Example 4.1, Example 5.1, the preservation-under-extensions checks).

* For the program classes the paper's algorithms target (strongly
  range-restricted programs, Datahilog programs) the relevance-driven
  grounder in :mod:`repro.engine.grounding` never needs the full universe:
  every atom outside the finitely many relevant ones is unfounded, hence
  false (Observation 5.1 and Lemma 6.3), so restricting attention to the
  materialized atoms is sound.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.hilog.program import Program
from repro.hilog.terms import App, Sym, Term


def herbrand_symbols(program, extra_symbols=()):
    """The vocabulary generating the Herbrand universe of ``program``.

    ``extra_symbols`` supports the domain-independence experiments, where the
    language is enlarged with symbols that do not occur in the program.
    A program with no symbols at all still gets a universe: like the paper's
    treatment of empty vocabularies, we add a single fresh constant so that
    the universe is nonempty.
    """
    names = set(program.symbols()) | {str(s) for s in extra_symbols}
    if not names:
        names = {"$c0"}
    return frozenset(names)


class HerbrandUniverse:
    """A finite, depth-bounded fragment of a HiLog Herbrand universe.

    Parameters:
        symbols: iterable of symbol names (strings) generating the universe.
        max_depth: maximum application-nesting depth of enumerated terms
            (0 enumerates only the bare symbols).
        max_arity: maximum number of arguments used when building
            applications.
        include_zero_arity: whether to build 0-ary applications ``p()``
            distinct from the symbol ``p``.

    The full HiLog universe is the limit ``max_depth -> infinity``; the class
    exposes :meth:`terms` (the finite fragment) plus helpers used by the
    exhaustive grounder and by the experiments of Sections 4 and 5.
    """

    def __init__(self, symbols, max_depth=1, max_arity=2, include_zero_arity=False):
        self._symbols = tuple(sorted({str(name) for name in symbols}))
        if not self._symbols:
            self._symbols = ("$c0",)
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if max_arity < 1:
            raise ValueError("max_arity must be >= 1")
        self._max_depth = int(max_depth)
        self._max_arity = int(max_arity)
        self._include_zero_arity = bool(include_zero_arity)
        self._levels = None

    # -- properties -----------------------------------------------------------
    @property
    def symbols(self):
        """The generating symbol names, sorted."""
        return self._symbols

    @property
    def max_depth(self):
        return self._max_depth

    @property
    def max_arity(self):
        return self._max_arity

    @classmethod
    def of_program(cls, program, max_depth=1, max_arity=None, extra_symbols=(),
                   include_zero_arity=False):
        """Build a universe from a program's vocabulary.

        When ``max_arity`` is ``None`` it defaults to the largest arity
        appearing in the program (at least 1).
        """
        if max_arity is None:
            max_arity = max(_arities_of_program(program), default=1)
            max_arity = max(max_arity, 1)
        return cls(
            herbrand_symbols(program, extra_symbols=extra_symbols),
            max_depth=max_depth,
            max_arity=max_arity,
            include_zero_arity=include_zero_arity,
        )

    # -- enumeration ----------------------------------------------------------
    def _build_levels(self):
        """Compute terms grouped by depth, memoized."""
        if self._levels is not None:
            return self._levels
        level0 = [Sym(name) for name in self._symbols]
        levels = [list(level0)]
        all_terms = list(level0)
        for depth in range(1, self._max_depth + 1):
            new_terms = []
            # Names can be anything of depth < current; arguments anything of
            # depth < current.  To keep the enumeration finite but faithful we
            # use every previously built term in both roles.
            candidates = list(all_terms)
            arities = range(0 if self._include_zero_arity else 1, self._max_arity + 1)
            for name in candidates:
                for arity in arities:
                    for args in product(candidates, repeat=arity):
                        term = App(name, args)
                        if term.depth() == depth:
                            new_terms.append(term)
            levels.append(new_terms)
            all_terms.extend(new_terms)
        self._levels = levels
        return levels

    def terms(self):
        """All terms of the bounded universe (symbols first, then by depth)."""
        result = []
        for level in self._build_levels():
            result.extend(level)
        return result

    def terms_at_depth(self, depth):
        """Terms whose depth is exactly ``depth``."""
        levels = self._build_levels()
        if depth >= len(levels):
            return []
        return list(levels[depth])

    def constants(self):
        """The depth-0 terms, i.e. the bare symbols."""
        return [Sym(name) for name in self._symbols]

    def __iter__(self):
        return iter(self.terms())

    def __len__(self):
        return len(self.terms())

    def __contains__(self, term):
        if not isinstance(term, Term) or not term.is_ground():
            return False
        if term.depth() > self._max_depth:
            return False
        return set(term.symbols()) <= set(self._symbols)

    def size_estimate(self):
        """Number of terms in the bounded fragment (forces enumeration)."""
        return len(self)


def _arities_of_program(program):
    """All application arities appearing anywhere in a program."""
    arities = set()

    def visit(term):
        if isinstance(term, App):
            arities.add(len(term.args))
            visit(term.name)
            for arg in term.args:
                visit(arg)

    for rule in program.rules:
        visit(rule.head)
        for literal in rule.body:
            visit(literal.atom)
        for aggregate in rule.aggregates:
            visit(aggregate.value)
            visit(aggregate.condition)
            visit(aggregate.result)
    return arities


def normal_herbrand_universe(program):
    """The *normal* Herbrand universe of a normal program.

    For a function-free normal program this is just its set of constants:
    the symbols that appear in argument positions.  (Function symbols are
    handled by the depth-bounded :class:`HerbrandUniverse`; the normal
    experiments in this reproduction are Datalog-like, matching the paper's
    examples.)  If the program has no constants, a single fresh constant is
    invented, mirroring footnote 3 of the paper.
    """
    constants = set()

    def visit_argument(term):
        if isinstance(term, Sym):
            constants.add(term)
        elif isinstance(term, App):
            # Function application in an argument position: collect symbols.
            visit_argument(term.name)
            for arg in term.args:
                visit_argument(arg)

    for rule in program.rules:
        atoms = [rule.head] + [lit.atom for lit in rule.body]
        for atom in atoms:
            if isinstance(atom, App):
                for arg in atom.args:
                    visit_argument(arg)
        for aggregate in rule.aggregates:
            if isinstance(aggregate.condition, App):
                for arg in aggregate.condition.args:
                    visit_argument(arg)
    if not constants:
        constants = {Sym("$c0")}
    return sorted(constants, key=lambda s: s.name)
