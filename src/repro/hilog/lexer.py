"""Tokenizer for the concrete HiLog syntax.

The syntax is Prolog-like.  Examples accepted by the parser built on top of
this lexer::

    tc(G)(X, Y) :- G(X, Y).
    tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).
    winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
    maplist(F)([], []).
    maplist(F)([X|R], [Y|Z]) :- F(X, Y), maplist(F)(R, Z).
    contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, _, P)).
    ?- w(m)(a).

Comments run from ``%`` to the end of the line, or between ``/*`` and ``*/``.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.hilog.errors import ParseError


class Token(NamedTuple):
    """A single lexical token."""

    kind: str
    value: str
    line: int
    column: int
    #: True for identifiers produced by a quoted atom (``'not'``), which
    #: must never be mistaken for the bare keyword/operator spelling.
    quoted: bool = False


#: Multi-character punctuation, longest first so greedy matching is correct.
_MULTI_PUNCT = (
    ":-",
    "?-",
    "=<",
    ">=",
    "=:=",
    "=\\=",
    "\\=",
    "\\+",
)

_SINGLE_PUNCT = "()[]|,.:<>=~+-*/"

#: Token kinds produced by the lexer.
KIND_IDENT = "IDENT"
KIND_VAR = "VAR"
KIND_NUMBER = "NUMBER"
KIND_PUNCT = "PUNCT"
KIND_EOF = "EOF"


def _is_ident_start(char):
    return char.islower()


def _is_var_start(char):
    return char.isupper() or char == "_"


def _is_name_char(char):
    return char.isalnum() or char == "_"


def tokenize(text):
    """Tokenize HiLog source text into a list of :class:`Token`.

    Raises :class:`ParseError` on illegal characters or unterminated quoted
    atoms / block comments.
    """
    tokens = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message):
        raise ParseError(message, line=line, column=column)

    while index < length:
        char = text[index]

        # -- whitespace -----------------------------------------------------
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue

        # -- comments -------------------------------------------------------
        if char == "%":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = text[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        # -- quoted atoms ---------------------------------------------------
        if char == "'":
            end = index + 1
            pieces = []
            while True:
                if end >= length:
                    error("unterminated quoted atom")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        pieces.append("'")
                        end += 2
                        continue
                    break
                pieces.append(text[end])
                end += 1
            value = "".join(pieces)
            tokens.append(Token(KIND_IDENT, value, line, column, quoted=True))
            column += end + 1 - index
            index = end + 1
            continue

        # -- numbers ----------------------------------------------------------
        if char.isdigit():
            end = index
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token(KIND_NUMBER, text[index:end], line, column))
            column += end - index
            index = end
            continue

        # -- identifiers and variables ----------------------------------------
        if _is_ident_start(char):
            end = index
            while end < length and _is_name_char(text[end]):
                end += 1
            tokens.append(Token(KIND_IDENT, text[index:end], line, column))
            column += end - index
            index = end
            continue
        if _is_var_start(char):
            end = index
            while end < length and _is_name_char(text[end]):
                end += 1
            tokens.append(Token(KIND_VAR, text[index:end], line, column))
            column += end - index
            index = end
            continue

        # -- punctuation ------------------------------------------------------
        matched = None
        for punct in _MULTI_PUNCT:
            if text.startswith(punct, index):
                matched = punct
                break
        if matched is None and char in _SINGLE_PUNCT:
            matched = char
        if matched is not None:
            tokens.append(Token(KIND_PUNCT, matched, line, column))
            column += len(matched)
            index += len(matched)
            continue

        error("unexpected character %r" % char)

    tokens.append(Token(KIND_EOF, "", line, column))
    return tokens
