"""Exception hierarchy for the HiLog substrate."""


class HiLogError(Exception):
    """Base class for all errors raised by the HiLog reproduction library."""


class ParseError(HiLogError):
    """Raised when HiLog source text cannot be parsed.

    Attributes:
        message: human readable description of the problem.
        line: 1-based line number of the offending token, when known.
        column: 1-based column number of the offending token, when known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = " at line %d" % line
            if column is not None:
                location += ", column %d" % column
        super().__init__(message + location)
        self.message = message
        self.line = line
        self.column = column


class DiagnosticError(HiLogError):
    """Raised when static analysis rejects a program (strict validation).

    Attributes:
        diagnostics: the :class:`repro.lint.Diagnostics` report that caused
            the rejection.  The message embeds its human-readable rendering
            so uncaught errors still cite codes and source spans.
    """

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = diagnostics


class UnificationError(HiLogError):
    """Raised when two terms cannot be unified and the caller asked to raise."""


class GroundingError(HiLogError):
    """Raised when a program cannot be grounded under the requested policy.

    The usual cause is an unsafe rule: a variable in the head or in a negative
    literal that never becomes bound by a positive body literal, so the set of
    relevant instances is not finite.
    """


class EvaluationError(HiLogError):
    """Raised when evaluation of a (ground) program fails.

    Examples include arithmetic builtins applied to non-numeric arguments and
    aggregate groups over undefined subgoals.
    """


class StratificationError(HiLogError):
    """Raised when a program fails a stratification condition that the caller
    required (for example when asking for the perfect-model evaluation of a
    program that is not modularly stratified)."""


class GenerationError(HiLogError):
    """Raised on intern-generation misuse: closing a generation that is not
    open, or collecting (:func:`repro.hilog.terms.collect_generation`) while
    a generation is still open — in-flight computations hold terms in
    places no pin provider can see, so sweeping then could split a live
    term's identity."""


class FrozenStoreError(HiLogError):
    """Raised when a mutator is invoked on a frozen relation store.

    Snapshot epochs (:mod:`repro.serve`) freeze the stores concurrent
    readers see; any attempt to add or remove facts through a frozen view
    is a bug in the caller, not a recoverable condition."""


class DurabilityError(HiLogError):
    """Base class for the durability subsystem (:mod:`repro.durable`):
    write-ahead log, snapshot checkpoints and crash recovery."""


class CorruptWal(DurabilityError):
    """A write-ahead log frame failed validation (bad CRC, impossible
    length, truncated payload).  Recovery does not *raise* this for a torn
    tail — it truncates at the first bad frame and reports the damage in
    the recovery details — but direct frame reads and mid-file corruption
    surface it.

    Attributes:
        path: the WAL file.
        offset: byte offset of the first bad frame.
    """

    def __init__(self, message, path=None, offset=None):
        super().__init__(message)
        self.path = path
        self.offset = offset


class CorruptSnapshot(DurabilityError):
    """A snapshot file failed validation (bad magic, CRC mismatch,
    undecodable body).  Recovery falls back past corrupt snapshots to the
    newest valid one and reports each casualty in the recovery details.

    Attributes:
        path: the snapshot file.
    """

    def __init__(self, message, path=None):
        super().__init__(message)
        self.path = path


class LockHeld(DurabilityError):
    """Another live session holds the data directory's single-writer
    lockfile.  Two writers interleaving WAL appends would corrupt the log,
    so opening fails fast instead.

    Attributes:
        path: the lockfile.
        holder: pid recorded by the holding process, when readable.
    """

    def __init__(self, message, path=None, holder=None):
        super().__init__(message)
        self.path = path
        self.holder = holder
