"""HiLog literals, rules and programs.

A HiLog rule is ``A <- L1, ..., Ln`` where ``A`` is a HiLog term (the head)
and each ``Li`` is a HiLog literal: a term or a negated term (paper,
Definition 2.1).  A HiLog program is a finite set of such rules.

The classes here are deliberately simple, immutable containers; all semantic
machinery lives in :mod:`repro.engine`, :mod:`repro.normal` and
:mod:`repro.core`.

Rules may additionally carry *aggregate specifications* (used by the
parts-explosion program of Section 6 of the paper) and may use builtin
comparison / arithmetic literals such as ``N = P * M``; those literals are
ordinary :class:`Literal` objects whose predicate name is one of
:data:`BUILTIN_PREDICATES`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.hilog.terms import (
    App,
    Sym,
    Term,
    Var,
    functor,
    outermost_symbol,
    predicate_name,
    rename_variables,
)

#: Predicate names treated as builtins by the evaluation engine.  ``is`` and
#: ``=`` evaluate their right-hand side arithmetically when it is an
#: arithmetic expression.
BUILTIN_PREDICATES = frozenset({"=", "\\=", "<", ">", "=<", ">=", "is", "=:=", "=\\="})

#: Function symbols understood by the arithmetic evaluator.
ARITHMETIC_FUNCTORS = frozenset({"+", "-", "*", "/", "mod", "min", "max"})


class Span(NamedTuple):
    """1-based source position of a parsed construct's first token.

    Parsed rules, literals and aggregate specifications carry a ``span``
    so downstream tooling (the :mod:`repro.lint` static analyzer above
    all) can cite ``file:line:column`` instead of pretty-printing the
    offending object.  Spans are *provenance*, not identity: two
    alpha-equal rules parsed from different lines compare (and hash)
    equal, and programmatically built objects simply have ``span=None``.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return "%d:%d" % (self.line, self.column)


class Literal:
    """A HiLog literal: an atom or a negated atom."""

    __slots__ = ("atom", "positive", "_hash", "span")

    def __init__(self, atom, positive=True, span=None):
        if not isinstance(atom, Term):
            raise TypeError("literal atom must be a Term, got %r" % (atom,))
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "positive", bool(positive))
        object.__setattr__(self, "_hash", hash(("lit", atom, bool(positive))))
        object.__setattr__(self, "span", span)

    def __setattr__(self, key, value):
        raise AttributeError("Literal is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.positive == self.positive
            and other.atom == self.atom
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        from repro.hilog.pretty import format_literal

        return format_literal(self)

    @property
    def negative(self):
        """True when the literal is a negated atom."""
        return not self.positive

    def negate(self):
        """Return the complementary literal."""
        return Literal(self.atom, not self.positive, span=self.span)

    def substitute(self, subst):
        """Apply a substitution to the literal's atom."""
        return Literal(subst.apply(self.atom), self.positive, span=self.span)

    def variables(self):
        """Variables occurring anywhere in the literal."""
        return self.atom.variables()

    def is_ground(self):
        return self.atom.is_ground()

    def is_builtin(self):
        """True for comparison/arithmetic builtins such as ``X < Y`` / ``N is E``."""
        name = predicate_name(self.atom)
        return isinstance(name, Sym) and name.name in BUILTIN_PREDICATES

    def predicate(self):
        """The predicate-name term of the literal's atom."""
        return predicate_name(self.atom)


class AggregateSpec:
    """An aggregate subgoal of the form ``Result = op(Value : Condition)``.

    This models the paper's parts-explosion rule
    ``contains(Mach,X,Y,N) <- N = sum P : in(Mach,X,Y,_,P)``.  ``group_by``
    (implicitly, the variables shared between the condition and the rest of
    the rule) is determined at evaluation time.
    """

    __slots__ = ("op", "value", "condition", "result", "_hash", "span")

    SUPPORTED_OPS = ("sum", "count", "min", "max")

    def __init__(self, op, value, condition, result, span=None):
        if op not in self.SUPPORTED_OPS:
            raise ValueError("unsupported aggregate %r" % (op,))
        if not isinstance(value, Term) or not isinstance(condition, Term) or not isinstance(result, Term):
            raise TypeError("aggregate components must be Terms")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "_hash", hash(("agg", op, value, condition, result)))
        object.__setattr__(self, "span", span)

    def __setattr__(self, key, value):
        raise AttributeError("AggregateSpec is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, AggregateSpec)
            and other.op == self.op
            and other.value == self.value
            and other.condition == self.condition
            and other.result == self.result
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        from repro.hilog.pretty import format_term

        return "%s = %s(%s : %s)" % (
            format_term(self.result),
            self.op,
            format_term(self.value),
            format_term(self.condition),
        )

    def variables(self):
        result = set(self.value.variables())
        result |= self.condition.variables()
        result |= self.result.variables()
        return result

    def substitute(self, subst):
        return AggregateSpec(
            self.op,
            subst.apply(self.value),
            subst.apply(self.condition),
            subst.apply(self.result),
            span=self.span,
        )


class Rule:
    """A HiLog rule ``head <- body`` (with optional aggregate subgoals)."""

    __slots__ = ("head", "body", "aggregates", "_hash", "span")

    def __init__(self, head, body=(), aggregates=(), span=None):
        if not isinstance(head, Term):
            raise TypeError("rule head must be a Term, got %r" % (head,))
        body = tuple(body)
        for literal in body:
            if not isinstance(literal, Literal):
                raise TypeError("rule body items must be Literals, got %r" % (literal,))
        aggregates = tuple(aggregates)
        for aggregate in aggregates:
            if not isinstance(aggregate, AggregateSpec):
                raise TypeError("rule aggregates must be AggregateSpecs, got %r" % (aggregate,))
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "aggregates", aggregates)
        object.__setattr__(self, "_hash", hash(("rule", head, body, aggregates)))
        object.__setattr__(self, "span", span)

    def __setattr__(self, key, value):
        raise AttributeError("Rule is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and other.head == self.head
            and other.body == self.body
            and other.aggregates == self.aggregates
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        from repro.hilog.pretty import format_rule

        return format_rule(self)

    # -- structure ----------------------------------------------------------
    def is_fact(self):
        """True for a rule with an empty body and no aggregates."""
        return not self.body and not self.aggregates

    def is_ground(self):
        if not self.head.is_ground():
            return False
        if any(not literal.is_ground() for literal in self.body):
            return False
        return all(
            aggregate.value.is_ground()
            and aggregate.condition.is_ground()
            and aggregate.result.is_ground()
            for aggregate in self.aggregates
        )

    def positive_literals(self):
        """The positive, non-builtin body literals (as a tuple, in order)."""
        return tuple(lit for lit in self.body if lit.positive and not lit.is_builtin())

    def negative_literals(self):
        """The negative body literals (as a tuple, in order)."""
        return tuple(lit for lit in self.body if lit.negative)

    def builtin_literals(self):
        """The builtin body literals (comparisons / arithmetic)."""
        return tuple(lit for lit in self.body if lit.is_builtin())

    def variables(self):
        result = set(self.head.variables())
        for literal in self.body:
            result |= literal.variables()
        for aggregate in self.aggregates:
            result |= aggregate.variables()
        return result

    def symbols(self):
        result = set(self.head.symbols())
        for literal in self.body:
            result |= literal.atom.symbols()
        for aggregate in self.aggregates:
            result |= aggregate.value.symbols()
            result |= aggregate.condition.symbols()
            result |= aggregate.result.symbols()
        return result

    def head_predicate(self):
        """The predicate-name term of the head."""
        return predicate_name(self.head)

    def pin_roots(self):
        """The rule's term roots, for intern-generation pin sets
        (:func:`repro.hilog.terms.collect_generation`): the head, every body
        atom and every aggregate term.  Pinning these keeps all of the
        rule's subterms — including the constants compiled into its join
        plans — interned across collections."""
        yield self.head
        for literal in self.body:
            yield literal.atom
        for aggregate in self.aggregates:
            yield aggregate.value
            yield aggregate.condition
            yield aggregate.result

    def substitute(self, subst):
        """Apply a substitution to the whole rule."""
        return Rule(
            subst.apply(self.head),
            tuple(literal.substitute(subst) for literal in self.body),
            tuple(aggregate.substitute(subst) for aggregate in self.aggregates),
            span=self.span,
        )

    def rename_apart(self, counter):
        """Return a copy of the rule with fresh variable names.

        ``counter`` is a one-element list acting as a mutable integer so
        successive calls produce globally distinct names.
        """
        mapping = {}
        new_head = rename_variables(self.head, mapping, counter)
        new_body = []
        for literal in self.body:
            new_body.append(
                Literal(
                    rename_variables(literal.atom, mapping, counter),
                    literal.positive,
                    span=literal.span,
                )
            )
        new_aggregates = []
        for aggregate in self.aggregates:
            new_aggregates.append(
                AggregateSpec(
                    aggregate.op,
                    rename_variables(aggregate.value, mapping, counter),
                    rename_variables(aggregate.condition, mapping, counter),
                    rename_variables(aggregate.result, mapping, counter),
                    span=aggregate.span,
                )
            )
        return Rule(new_head, tuple(new_body), tuple(new_aggregates), span=self.span)


class Program:
    """A finite set of HiLog rules (kept in source order)."""

    __slots__ = ("rules",)

    def __init__(self, rules=()):
        rules = tuple(rules)
        for rule in rules:
            if not isinstance(rule, Rule):
                raise TypeError("program members must be Rules, got %r" % (rule,))
        object.__setattr__(self, "rules", rules)

    def __setattr__(self, key, value):
        raise AttributeError("Program is immutable")

    def __eq__(self, other):
        return isinstance(other, Program) and other.rules == self.rules

    def __hash__(self):
        return hash(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __repr__(self):
        from repro.hilog.pretty import format_program

        return format_program(self)

    def __add__(self, other):
        """Union (concatenation, duplicates removed, order preserved)."""
        if isinstance(other, Program):
            other_rules = other.rules
        else:
            other_rules = tuple(other)
        seen = set()
        merged = []
        for rule in self.rules + tuple(other_rules):
            if rule not in seen:
                seen.add(rule)
                merged.append(rule)
        return Program(merged)

    # -- structure ----------------------------------------------------------
    def facts(self):
        """All fact rules of the program."""
        return tuple(rule for rule in self.rules if rule.is_fact())

    def proper_rules(self):
        """All non-fact rules of the program."""
        return tuple(rule for rule in self.rules if not rule.is_fact())

    def pin_roots(self):
        """Every rule's term roots (see :meth:`Rule.pin_roots`), for intern
        generation pin sets."""
        for rule in self.rules:
            yield from rule.pin_roots()

    def symbols(self):
        """The set of symbol names used anywhere in the program.

        This is the vocabulary that *generates* the program's HiLog Herbrand
        universe (paper, Section 2).  Builtin predicate names are excluded.
        """
        result = set()
        for rule in self.rules:
            result |= rule.symbols()
        return result - set(BUILTIN_PREDICATES)

    def variables(self):
        result = set()
        for rule in self.rules:
            result |= rule.variables()
        return result

    def head_predicates(self):
        """The set of predicate-name terms appearing in rule heads."""
        return {rule.head_predicate() for rule in self.rules}

    def ground_predicate_names(self):
        """Predicate-name terms of heads and body atoms that are ground."""
        names = set()
        for rule in self.rules:
            head_name = rule.head_predicate()
            if head_name.is_ground():
                names.add(head_name)
            for literal in rule.body:
                if literal.is_builtin():
                    continue
                name = literal.predicate()
                if name.is_ground():
                    names.add(name)
        return names

    def has_negation(self):
        """True when some rule body contains a negative literal."""
        return any(rule.negative_literals() for rule in self.rules)

    def has_aggregates(self):
        return any(rule.aggregates for rule in self.rules)

    def is_ground(self):
        return all(rule.is_ground() for rule in self.rules)

    def is_normal(self):
        """True when the program is a *normal* logic program.

        In a normal program every atom has a symbol as its predicate name
        (never a variable or a compound term) and predicate names never
        appear nested inside argument positions as applications.  Constants
        and function applications are allowed in argument positions.
        """
        for rule in self.rules:
            atoms = [rule.head] + [lit.atom for lit in rule.body if not lit.is_builtin()]
            for atom in atoms:
                if not isinstance(atom, App):
                    # A bare symbol is a propositional atom: fine.
                    if isinstance(atom, Var):
                        return False
                    continue
                if not isinstance(atom.name, Sym):
                    return False
        return True

    def rules_for(self, predicate):
        """Rules whose head predicate-name term equals ``predicate``."""
        return tuple(rule for rule in self.rules if rule.head_predicate() == predicate)

    def shares_symbols_with(self, other):
        """True when the two programs have a common (non-builtin) symbol."""
        return bool(self.symbols() & other.symbols())
