"""repro — a reproduction of "On Negation in HiLog" (Ross, PODS 1991 / JLP 1994).

The package implements HiLog programs with negative body literals and the
paper's semantic toolkit around them:

* the HiLog language (terms, unification, parser) and its universal-relation
  encoding (:mod:`repro.hilog`),
* the ground evaluation engine: three-valued interpretations, the ``W_P``
  operator, well-founded and stable semantics (:mod:`repro.engine`),
* the classical normal-program notions the paper compares against
  (:mod:`repro.normal`),
* the paper's contributions: HiLog well-founded/stable semantics, range
  restriction, preservation under extensions, modular stratification for
  HiLog and magic sets (:mod:`repro.core`),
* incremental deductive-database sessions maintaining materialized perfect
  models under fact insertion/retraction by counting and delete-rederive
  (:mod:`repro.db`),
* workload generators and analysis helpers for the experiments
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import parse_program, hilog_well_founded_model

    program = parse_program('''
        winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
        game(move1).
        move1(a, b). move1(b, c).
    ''')
    model = hilog_well_founded_model(program)
    print(sorted(map(repr, model.true)))
"""

from repro.hilog import (
    App,
    HerbrandUniverse,
    Literal,
    Num,
    Program,
    Rule,
    Sym,
    Term,
    Var,
    format_program,
    format_rule,
    format_term,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from repro.engine import Interpretation, conservatively_extends, well_founded_model, stable_models
from repro.db import DatabaseSession, Transaction, UpdateSummary, open_session
from repro.core import (
    answer_query,
    check_domain_independence,
    check_preservation_under_extensions,
    classify_rule,
    hilog_stable_models,
    hilog_well_founded_model,
    well_founded_for_hilog,
    is_datahilog,
    is_range_restricted,
    is_strongly_range_restricted,
    magic_evaluate,
    magic_rewrite,
    modularly_stratified_for_hilog,
    normal_stable_models,
    normal_well_founded_model,
    perfect_model_for_hilog,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # language
    "Term", "Var", "Sym", "Num", "App", "Literal", "Rule", "Program",
    "parse_term", "parse_rule", "parse_program", "parse_query",
    "format_term", "format_rule", "format_program",
    "HerbrandUniverse",
    # engine
    "Interpretation", "conservatively_extends", "well_founded_model", "stable_models",
    # incremental database sessions
    "DatabaseSession", "Transaction", "UpdateSummary", "open_session",
    # core
    "hilog_well_founded_model", "well_founded_for_hilog", "hilog_stable_models",
    "normal_well_founded_model", "normal_stable_models",
    "is_range_restricted", "is_strongly_range_restricted", "classify_rule",
    "check_preservation_under_extensions", "check_domain_independence",
    "modularly_stratified_for_hilog", "perfect_model_for_hilog",
    "is_datahilog",
    "magic_rewrite", "magic_evaluate", "answer_query",
]
