"""CI self-lint: the repository's own programs must stay clean.

``python -m repro.lint.selflint`` lints every HiLog program the repository
ships — the program strings embedded in ``examples/*.py`` and the output
of every :mod:`repro.workloads` program builder — and holds the result to
two gates:

* **errors always fail**: no shipped program may trip an ``E...`` code;
* **warnings are snapshotted**: the exact set of warnings (source, code,
  line, column) must match ``tests/lint/expected_warnings.json``.  Known,
  deliberate warnings — the win/move family's negation cycles (``W501``),
  the parts-explosion aggregate cycle (``W503``) — are recorded there;
  anything new (or newly fixed) fails the gate until the snapshot is
  regenerated with ``--update``.

Example programs are discovered syntactically: every string constant in an
``examples/*.py`` module that parses as a HiLog program with at least one
proper rule is linted under the name ``examples/<file>:<lineno>``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

from repro.hilog.errors import ParseError
from repro.hilog.parser import parse_program
from repro.lint.linter import lint_program

#: Repository root (this file lives at src/repro/lint/selflint.py).
REPO_ROOT = Path(__file__).resolve().parents[3]
EXAMPLES_DIR = REPO_ROOT / "examples"
SNAPSHOT_PATH = REPO_ROOT / "tests" / "lint" / "expected_warnings.json"

#: Fixed small inputs so the builders (and hence the snapshot) are
#: deterministic.
_EDGES = [("a", "b"), ("b", "c"), ("c", "d")]
_CYCLE = [("a", "b"), ("b", "c"), ("c", "a")]

#: Errors that are the *point* of an example, not defects: the semantics
#: demo exhibits non-range-restricted programs (paper Examples 4.1 and
#: 5.1) precisely to show what Definition 5.5 rules out.  Keyed by example
#: file name (line numbers shift too easily) → allowed error codes.
DELIBERATE_ERRORS = {
    "examples/preservation_and_semantics.py": {"E102", "E103"},
    # The linter demo lints a deliberately defective program.
    "examples/lint_demo.py": {"E101"},
}


def _deliberate(source, code):
    base = source.split(":", 1)[0]
    return code in DELIBERATE_ERRORS.get(base, ())


def _workload_programs():
    """``(name, program)`` for every workloads program builder, on small
    deterministic inputs."""
    from repro import workloads as w

    graphs = {"g1": _EDGES, "g2": _CYCLE}
    triples = {"m": {"assembly": [("whole", "part", 2), ("part", "bolt", 3)]}}
    yield "workloads:transitive_closure_program", \
        w.transitive_closure_program(_EDGES)
    yield "workloads:datahilog_closure_program", \
        w.datahilog_closure_program(graphs)
    yield "workloads:hilog_closure_program", w.hilog_closure_program(graphs)
    yield "workloads:normal_game_program", w.normal_game_program(_CYCLE)
    yield "workloads:hilog_game_program", w.hilog_game_program(graphs)
    yield "workloads:datahilog_game_program", w.datahilog_game_program(graphs)
    yield "workloads:multi_game_program", \
        w.multi_game_program([_EDGES, _CYCLE])[0]
    yield "workloads:cycle_game_program", w.cycle_game_program(4)[0]
    yield "workloads:line_into_cycle_game_program", \
        w.line_into_cycle_game_program(2, 3)[0]
    yield "workloads:cycle_with_escape_game_program", \
        w.cycle_with_escape_game_program(4)[0]
    yield "workloads:composed_move_game_program", \
        w.composed_move_game_program(_EDGES)
    yield "workloads:parts_explosion_program", \
        w.parts_explosion_program(triples)
    yield "workloads:bicycle_parts_program", w.bicycle_parts_program()
    yield "workloads:random_range_restricted_program", \
        w.random_range_restricted_program(seed=7)
    yield "workloads:random_nonstratified_program", \
        w.random_nonstratified_program(seed=7)


def _example_programs():
    """``(name, program)`` for every HiLog program string embedded in
    ``examples/*.py``."""
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and ":-" in node.value):
                continue
            try:
                program = parse_program(node.value)
            except ParseError:
                continue
            if not any(True for _ in program.proper_rules()):
                continue
            yield "examples/%s:%d" % (path.name, node.lineno), program


def iter_programs():
    """Every program the self-lint covers, as ``(name, Program)``."""
    yield from _example_programs()
    yield from _workload_programs()


def collect():
    """Lint everything; returns ``(errors, warnings)`` as sorted lists of
    ``{source, code, line, column}`` dicts."""
    errors, warnings = [], []
    for name, program in iter_programs():
        report = lint_program(program, file=name)
        for diagnostic in report:
            entry = {
                "source": name,
                "code": diagnostic.code,
                "line": diagnostic.span.line if diagnostic.span else None,
                "column": diagnostic.span.column if diagnostic.span else None,
            }
            if diagnostic.severity == "error":
                if _deliberate(name, diagnostic.code):
                    continue
                entry["message"] = diagnostic.message
                errors.append(entry)
            else:
                warnings.append(entry)
    key = lambda e: (e["source"], e["code"], e["line"] or 0, e["column"] or 0)
    return sorted(errors, key=key), sorted(warnings, key=key)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.selflint",
        description="Lint the repository's own example and workload "
                    "programs against the committed warning snapshot.",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite tests/lint/expected_warnings.json with the current "
             "warnings (errors still fail)",
    )
    args = parser.parse_args(argv)

    errors, warnings = collect()
    if errors:
        print("self-lint FAILED: shipped programs have lint errors:")
        for entry in errors:
            print("  %s: %s at %s:%s — %s" % (
                entry["source"], entry["code"],
                entry["line"], entry["column"], entry["message"],
            ))
        return 1

    if args.update:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps({"warnings": warnings}, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print("wrote %d expected warning(s) to %s"
              % (len(warnings), SNAPSHOT_PATH))
        return 0

    if not SNAPSHOT_PATH.exists():
        print("self-lint FAILED: no snapshot at %s (run with --update)"
              % SNAPSHOT_PATH)
        return 1
    expected = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))["warnings"]

    def fmt(entry):
        return "%s: %s at %s:%s" % (
            entry["source"], entry["code"], entry["line"], entry["column"],
        )

    expected_set = {fmt(e) for e in expected}
    actual_set = {fmt(e) for e in warnings}
    unexpected = sorted(actual_set - expected_set)
    missing = sorted(expected_set - actual_set)
    if unexpected or missing:
        print("self-lint FAILED: warnings diverge from the snapshot "
              "(%s):" % SNAPSHOT_PATH)
        for line in unexpected:
            print("  + %s" % line)
        for line in missing:
            print("  - %s" % line)
        print("(regenerate deliberately with --update)")
        return 1

    print("self-lint OK: 0 errors, %d expected warning(s) across %d "
          "program(s)" % (len(warnings), sum(1 for _ in iter_programs())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
