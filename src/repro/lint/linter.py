"""Lint entry points: programs, source text, files.

The three entry points produce a :class:`repro.lint.diagnostics.Diagnostics`
report and record ``repro_lint_*`` metrics (family ``"lint"``) on the
ambient registry:

* ``repro_lint_runs_total`` — lint invocations;
* ``repro_lint_errors_total`` / ``repro_lint_warnings_total`` — findings
  by severity (after ``select``/``ignore`` filtering, i.e. what the caller
  actually saw);
* ``repro_lint_seconds`` — wall time per run.
"""

from __future__ import annotations

from time import perf_counter

from repro.hilog.errors import ParseError
from repro.hilog.parser import parse_program
from repro.hilog.program import Program, Span
from repro.lint.checks import run_checks
from repro.lint.diagnostics import Diagnostics, make_diagnostic
from repro.obs.metrics import get_registry


def _record(registry, report, elapsed):
    registry.counter(
        "repro_lint_runs", "Lint runs.", family="lint",
    ).inc()
    registry.counter(
        "repro_lint_errors", "Error diagnostics reported.", family="lint",
    ).inc(len(report.errors))
    registry.counter(
        "repro_lint_warnings", "Warning diagnostics reported.", family="lint",
    ).inc(len(report.warnings))
    registry.histogram(
        "repro_lint_seconds", "Lint run wall time.", family="lint",
    ).observe(elapsed)


def lint_program(program, file=None, select=None, ignore=None):
    """Lint a parsed :class:`~repro.hilog.program.Program`.

    ``file`` stamps every diagnostic's location; ``select``/``ignore`` are
    iterables of codes, slugs or prefixes (``"E"``, ``"W3"``) filtering the
    report.  Returns :class:`Diagnostics`.
    """
    registry = get_registry()
    start = perf_counter()
    findings = run_checks(program)
    if file is not None:
        findings = [d._replace(file=file) for d in findings]
    report = Diagnostics(findings, file=file).filter(select, ignore)
    _record(registry, report, perf_counter() - start)
    return report


def lint_source(text, file=None, select=None, ignore=None):
    """Lint HiLog source text.

    A :class:`ParseError` becomes a single ``E001`` diagnostic (carrying
    the error's line/column) instead of propagating: the CLI and the CI
    self-lint treat unparsable input as a findable defect, not a crash.
    """
    try:
        program = parse_program(text)
    except ParseError as error:
        span = None
        if error.line is not None:
            span = Span(error.line, error.column if error.column is not None else 1)
        registry = get_registry()
        start = perf_counter()
        report = Diagnostics(
            [make_diagnostic("E001", error.message, span=span, file=file)],
            file=file,
        ).filter(select, ignore)
        _record(registry, report, perf_counter() - start)
        return report
    return lint_program(program, file=file, select=select, ignore=ignore)


def lint_file(path, select=None, ignore=None):
    """Lint a HiLog source file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_source(text, file=str(path), select=select, ignore=ignore)
