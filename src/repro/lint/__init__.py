"""Static analysis for HiLog programs.

The linter turns the paper's checkable conditions — range restriction
(Definitions 5.5/5.6), stratification (Section 6), plus plan-level and
hygiene checks — into structured :class:`Diagnostic` findings with stable
codes, source spans and fix hints, instead of engine-time exceptions.

Entry points:

* :func:`lint_program` / :func:`lint_source` / :func:`lint_file` — produce
  a :class:`Diagnostics` report;
* ``python -m repro.lint`` — the CLI (text/JSON output, code filters,
  conventional exit codes);
* ``DatabaseSession(..., validate="strict"|"warn"|"off")`` — load-time
  validation before materialization (:mod:`repro.db.session`);
* ``python -m repro.serve lint`` — the serving CLI's subcommand.
"""

from repro.lint.diagnostics import (
    CODES,
    Code,
    Diagnostic,
    Diagnostics,
    REPORT_SCHEMA,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    make_diagnostic,
    validate_report,
)
from repro.lint.linter import lint_file, lint_program, lint_source

__all__ = [
    "CODES",
    "Code",
    "Diagnostic",
    "Diagnostics",
    "REPORT_SCHEMA",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "make_diagnostic",
    "validate_report",
    "lint_file",
    "lint_program",
    "lint_source",
]
