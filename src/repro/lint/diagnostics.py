"""Diagnostic codes, records and renderers for the HiLog linter.

Every finding the linter can produce has a *stable* code (``E...`` for
errors, ``W...`` for warnings — see :data:`CODES`), so CI gates and
``--select``/``--ignore`` filters keep working as messages are reworded.
A :class:`Diagnostic` is one finding; a :class:`Diagnostics` is the report
for one lint run, renderable as human text (:meth:`Diagnostics.to_text`)
or as a JSON document (:meth:`Diagnostics.to_json`) matching
:data:`REPORT_SCHEMA`.

Severity semantics mirror the engine's: an **error** means some evaluation
path will reject the program (unsafe rules, recursion through aggregation,
floundering plans), a **warning** means the program evaluates but is
suspicious (negation cycles the well-founded mode resolves, dead
predicates, duplicate or subsumed rules, hygiene issues, cross-product
joins).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.hilog.program import Span

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


class Code(NamedTuple):
    """A registered diagnostic code."""

    code: str
    slug: str
    severity: str
    summary: str


#: The stable code registry.  Codes are append-only: never renumber.
CODES = {
    c.code: c
    for c in (
        Code("E001", "syntax-error", SEVERITY_ERROR,
             "the source text does not parse"),
        Code("E101", "unsafe-rule", SEVERITY_ERROR,
             "a head argument variable is not bound by any positive body "
             "argument (Definition 5.5, condition 1)"),
        Code("E102", "unsafe-negation", SEVERITY_ERROR,
             "a negated literal uses a variable bound neither by positive "
             "body arguments nor by the head name (Definition 5.5, "
             "condition 2)"),
        Code("E103", "unbound-predicate-name", SEVERITY_ERROR,
             "no ordering of the positive body literals binds a predicate-"
             "name variable before its literal runs (Definition 5.5, "
             "condition 3)"),
        Code("E104", "aggregate-recursion", SEVERITY_ERROR,
             "recursion through aggregation; no evaluation mode supports "
             "three-valued aggregation"),
        Code("E105", "nonground-fact", SEVERITY_ERROR,
             "a fact contains variables, so it denotes no finite set of "
             "ground facts"),
        Code("E106", "no-safe-plan", SEVERITY_ERROR,
             "the join planner cannot order the rule body without "
             "floundering"),
        Code("E107", "nonground-aggregate-name", SEVERITY_ERROR,
             "an aggregate condition's predicate name is not ground"),
        Code("W201", "singleton-var", SEVERITY_WARNING,
             "a named variable occurs exactly once in the rule (use _ or "
             "an _-prefixed name if intentional)"),
        Code("W301", "duplicate-rule", SEVERITY_WARNING,
             "the rule is alpha-equivalent to an earlier rule"),
        Code("W302", "subsumed-rule", SEVERITY_WARNING,
             "the rule is subsumed by a more general rule, so it derives "
             "nothing new"),
        Code("W303", "arity-mismatch", SEVERITY_WARNING,
             "a predicate symbol is used with more than one arity"),
        Code("W401", "undefined-predicate", SEVERITY_WARNING,
             "a body literal refers to a predicate with no rules and no "
             "facts"),
        Code("W402", "unused-edb-relation", SEVERITY_WARNING,
             "a fact-only relation is never referenced by any rule"),
        Code("W403", "underivable-idb", SEVERITY_WARNING,
             "every rule defining the predicate depends on an undefined "
             "predicate, so it can never derive a fact"),
        Code("W501", "negation-cycle", SEVERITY_WARNING,
             "recursion through negation; perfect-model evaluation rejects "
             "this, well-founded mode handles it"),
        Code("W502", "cross-product-join", SEVERITY_WARNING,
             "a body literal shares no bound variable with the literals "
             "joined before it, forcing a cross product"),
        Code("W503", "aggregate-cycle", SEVERITY_WARNING,
             "recursion through aggregation at the predicate level; "
             "evaluation succeeds only if the data keeps the ground "
             "instance acyclic (modular stratification, Theorem 6.1)"),
    )
}

#: The JSON document shape emitted by ``Diagnostics.to_json`` /
#: ``python -m repro.lint --format json``, checked by
#: :func:`validate_report`.  (Described as a JSON-Schema-like dict purely
#: for documentation; validation is hand-rolled to avoid a dependency.)
REPORT_SCHEMA = {
    "type": "object",
    "required": ["version", "errors", "warnings", "diagnostics"],
    "properties": {
        "version": {"const": 1},
        "errors": {"type": "integer", "minimum": 0},
        "warnings": {"type": "integer", "minimum": 0},
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "slug", "severity", "message"],
                "properties": {
                    "code": {"type": "string", "pattern": "^[EW][0-9]{3}$"},
                    "slug": {"type": "string"},
                    "severity": {"enum": ["error", "warning"]},
                    "message": {"type": "string"},
                    "file": {"type": ["string", "null"]},
                    "line": {"type": ["integer", "null"]},
                    "column": {"type": ["integer", "null"]},
                    "rule": {"type": ["string", "null"]},
                    "hint": {"type": ["string", "null"]},
                },
            },
        },
    },
}


def validate_report(report):
    """Check a JSON report against :data:`REPORT_SCHEMA`.

    Raises :class:`ValueError` naming the first offending field; returns
    the report unchanged when valid.  Hand-rolled so the library needs no
    jsonschema dependency; the schema dict above is the documentation.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be an object, got %r" % type(report).__name__)
    for key in ("version", "errors", "warnings", "diagnostics"):
        if key not in report:
            raise ValueError("report is missing %r" % key)
    if report["version"] != 1:
        raise ValueError("report version must be 1, got %r" % (report["version"],))
    for key in ("errors", "warnings"):
        if not isinstance(report[key], int) or report[key] < 0:
            raise ValueError("report[%r] must be a non-negative integer" % key)
    if not isinstance(report["diagnostics"], list):
        raise ValueError("report['diagnostics'] must be an array")
    errors = warnings = 0
    for index, item in enumerate(report["diagnostics"]):
        where = "diagnostics[%d]" % index
        if not isinstance(item, dict):
            raise ValueError("%s must be an object" % where)
        for key in ("code", "slug", "severity", "message"):
            if not isinstance(item.get(key), str):
                raise ValueError("%s[%r] must be a string" % (where, key))
        code = item["code"]
        if code not in CODES:
            raise ValueError("%s has unknown code %r" % (where, code))
        if item["severity"] not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError("%s has bad severity %r" % (where, item["severity"]))
        if item["severity"] != CODES[code].severity:
            raise ValueError(
                "%s severity %r does not match code %s"
                % (where, item["severity"], code)
            )
        if item["slug"] != CODES[code].slug:
            raise ValueError("%s slug %r does not match code %s" % (where, item["slug"], code))
        for key in ("line", "column"):
            value = item.get(key)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError("%s[%r] must be a positive integer or null" % (where, key))
        for key in ("file", "rule", "hint"):
            value = item.get(key)
            if value is not None and not isinstance(value, str):
                raise ValueError("%s[%r] must be a string or null" % (where, key))
        if item["severity"] == SEVERITY_ERROR:
            errors += 1
        else:
            warnings += 1
    if report["errors"] != errors:
        raise ValueError(
            "report['errors'] is %d but %d error diagnostics are listed"
            % (report["errors"], errors)
        )
    if report["warnings"] != warnings:
        raise ValueError(
            "report['warnings'] is %d but %d warning diagnostics are listed"
            % (report["warnings"], warnings)
        )
    return report


class Diagnostic(NamedTuple):
    """One linter finding."""

    code: str
    severity: str
    message: str
    span: Optional[Span] = None
    file: Optional[str] = None
    rule: Optional[str] = None
    hint: Optional[str] = None

    @property
    def slug(self):
        return CODES[self.code].slug

    def location(self):
        """``file:line:col`` (with ``<program>`` standing in for no file)."""
        name = self.file if self.file is not None else "<program>"
        if self.span is not None:
            return "%s:%s" % (name, self.span)
        return name

    def to_text(self):
        parts = ["%s: %s %s [%s]" % (self.location(), self.code, self.message, self.slug)]
        if self.rule:
            parts.append("    rule: %s" % self.rule)
        if self.hint:
            parts.append("    hint: %s" % self.hint)
        return "\n".join(parts)

    def to_json(self):
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.span.line if self.span is not None else None,
            "column": self.span.column if self.span is not None else None,
            "rule": self.rule,
            "hint": self.hint,
        }


def make_diagnostic(code, message, span=None, file=None, rule=None, hint=None):
    """Build a :class:`Diagnostic`, deriving the severity from the code."""
    return Diagnostic(code, CODES[code].severity, message, span, file, rule, hint)


class Diagnostics:
    """The report of one lint run: an ordered collection of findings.

    Iterable (in source order: by span, errors and warnings interleaved),
    truthy when non-empty, with :attr:`errors`/:attr:`warnings` splits and
    the two renderers.
    """

    __slots__ = ("_items", "file")

    def __init__(self, diagnostics=(), file=None):
        items = list(diagnostics)
        items.sort(key=lambda d: (
            d.file or "",
            d.span.line if d.span is not None else 0,
            d.span.column if d.span is not None else 0,
            d.code,
        ))
        self._items = tuple(items)
        self.file = file

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)

    def __repr__(self):
        return "<Diagnostics: %d error(s), %d warning(s)>" % (
            len(self.errors),
            len(self.warnings),
        )

    @property
    def errors(self):
        return tuple(d for d in self._items if d.severity == SEVERITY_ERROR)

    @property
    def warnings(self):
        return tuple(d for d in self._items if d.severity == SEVERITY_WARNING)

    def has_errors(self):
        return any(d.severity == SEVERITY_ERROR for d in self._items)

    def __add__(self, other):
        return Diagnostics(tuple(self) + tuple(other), file=self.file)

    def filter(self, select=None, ignore=None):
        """A new report keeping codes in ``select`` (all when ``None``) and
        dropping codes in ``ignore``."""
        select_set = _expand_codes(select) if select is not None else None
        ignore_set = _expand_codes(ignore) if ignore is not None else frozenset()
        kept = [
            d for d in self._items
            if (select_set is None or d.code in select_set) and d.code not in ignore_set
        ]
        return Diagnostics(kept, file=self.file)

    def to_text(self):
        if not self._items:
            return "no issues found"
        lines = [d.to_text() for d in self._items]
        lines.append(
            "%d error(s), %d warning(s)" % (len(self.errors), len(self.warnings))
        )
        return "\n".join(lines)

    def to_json(self):
        return {
            "version": 1,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_json() for d in self._items],
        }


def _expand_codes(codes):
    """Expand a code filter: exact codes, slugs, or prefixes (``E``, ``W3``)."""
    expanded = set()
    for entry in codes:
        entry = entry.strip()
        if not entry:
            continue
        if entry in CODES:
            expanded.add(entry)
            continue
        by_slug = [c.code for c in CODES.values() if c.slug == entry]
        if by_slug:
            expanded.update(by_slug)
            continue
        by_prefix = [code for code in CODES if code.startswith(entry)]
        if not by_prefix:
            raise ValueError("unknown diagnostic code or prefix %r" % entry)
        expanded.update(by_prefix)
    return frozenset(expanded)
