"""``python -m repro.lint`` — lint HiLog source files.

Usage::

    python -m repro.lint prog.hilog [more.hilog ...] [--format text|json]
                         [--select CODES] [--ignore CODES]

``-`` reads a program from stdin.  ``--select``/``--ignore`` accept
comma-separated codes, slugs, or prefixes (``E``, ``W3``, ``W501``,
``singleton-var``).  Exit codes follow convention: ``0`` when no *errors*
were found (warnings alone stay green), ``1`` when at least one error was
found (including ``E001`` parse failures), ``2`` on usage problems
(unknown codes, unreadable files).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.diagnostics import CODES, Diagnostics
from repro.lint.linter import lint_source


def _split_codes(values):
    if not values:
        return None
    codes = []
    for value in values:
        codes.extend(part for part in value.split(",") if part.strip())
    return codes or None


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically analyze HiLog programs: safety, "
                    "stratification, plan quality, hygiene.",
        epilog="Codes: " + " ".join(
            "%s=%s" % (c.code, c.slug) for c in sorted(CODES.values())
        ),
    )
    parser.add_argument(
        "paths", nargs="+", metavar="FILE",
        help="HiLog source files to lint ('-' reads stdin)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report renderer (default: text)",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODES",
        help="only report these codes/slugs/prefixes (comma-separated, "
             "repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="CODES",
        help="suppress these codes/slugs/prefixes (comma-separated, "
             "repeatable)",
    )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        select = _split_codes(args.select)
        ignore = _split_codes(args.ignore)
        findings = []
        for path in args.paths:
            if path == "-":
                text, name = sys.stdin.read(), "<stdin>"
            else:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        text = handle.read()
                except OSError as error:
                    print("error: cannot read %s: %s" % (path, error), file=sys.stderr)
                    return 2
                name = path
            findings.extend(lint_source(text, file=name, select=select, ignore=ignore))
    except ValueError as error:  # unknown code in --select/--ignore
        print("error: %s" % (error,), file=sys.stderr)
        return 2
    combined = Diagnostics(findings)
    if args.format == "json":
        print(json.dumps(combined.to_json(), indent=2, sort_keys=True))
    else:
        print(combined.to_text())
    return 1 if combined.has_errors() else 0


if __name__ == "__main__":
    sys.exit(main())
