"""The individual static-analysis passes of the HiLog linter.

Each pass reuses the repo's existing semantic machinery instead of
reimplementing it:

* safety (``E101``/``E102``/``E103``) comes from
  :func:`repro.core.range_restriction.range_restriction_violations` — the
  paper's Definition 5.5, condition by condition;
* stratification (``W501``/``E104``) mirrors the semi-naive engine's
  indicator dependency graph (:mod:`repro.normal.depgraph`), including its
  "aggregation behaves like negation" edge labelling, and reports a
  minimal negation-cycle witness;
* plan quality (``E106``/``W502``) compiles every rule through the real
  join planner (:func:`repro.engine.seminaive.plan.compile_rule`) and
  inspects the resulting fetch steps;
* the remaining passes (duplicates, subsumption, arity and liveness
  hygiene) are purely syntactic.

Entry point: :func:`run_checks`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.range_restriction import range_restriction_violations
from repro.engine.seminaive.plan import FETCH, PlanError, compile_rule
from repro.hilog.errors import HiLogError
from repro.hilog.pretty import format_literal, format_term
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Sym, Var, atom_arguments, predicate_name
from repro.hilog.unify import match
from repro.lint.diagnostics import Diagnostic, make_diagnostic
from repro.normal.depgraph import DependencyGraph

#: Body-size cap for the (worst-case exponential) subsumption search.
_SUBSUMPTION_MAX_BODY = 8


def _indicator(atom):
    """The ``(name, arity)`` indicator of an atom, or ``None`` when the
    predicate name is not ground (mirrors the semi-naive engine)."""
    name = predicate_name(atom)
    if not name.is_ground():
        return None
    if isinstance(atom, App):
        return (name, len(atom.args))
    return (atom, -1)


def _arity(atom):
    return len(atom.args) if isinstance(atom, App) else -1


def _format_indicator(indicator):
    name, arity = indicator
    if arity < 0:
        return format_term(name)
    return "%s/%d" % (format_term(name), arity)


def _var_names(variables):
    return ", ".join(v.name for v in variables)


def _count_variables(term, counts):
    if isinstance(term, Var):
        counts[term] = counts.get(term, 0) + 1
        return
    if isinstance(term, App):
        _count_variables(term.name, counts)
        for arg in term.args:
            _count_variables(arg, counts)


# ---------------------------------------------------------------------------
# Safety (E101, E102, E103, E105, E107)
# ---------------------------------------------------------------------------

def check_safety(program):
    """Range restriction per rule, plus ground-fact and aggregate-name checks.

    Returns ``(diagnostics, error_rule_indices)`` so later passes can
    suppress follow-on findings (a rule that is already unsafe should not
    additionally flounder-error or singleton-warn on the same variable).
    """
    diagnostics = []
    error_rules = set()
    for index, rule in enumerate(program.rules):
        if rule.is_fact():
            if not rule.head.is_ground():
                variables = sorted(rule.head.variables(), key=lambda v: v.name)
                diagnostics.append(make_diagnostic(
                    "E105",
                    "fact %s contains variable(s) %s"
                    % (format_term(rule.head), _var_names(variables)),
                    span=rule.span,
                    rule=repr(rule),
                    hint="facts must be ground; bind the variables or make "
                         "this a rule with a body",
                ))
                error_rules.add(index)
            continue
        for violation in range_restriction_violations(rule):
            error_rules.add(index)
            if violation.condition == "head-argument":
                diagnostics.append(make_diagnostic(
                    "E101",
                    "head variable(s) %s not bound by any positive body "
                    "argument" % _var_names(violation.variables),
                    span=rule.span,
                    rule=repr(rule),
                    hint="add a positive body literal whose arguments bind %s"
                         % _var_names(violation.variables),
                ))
            elif violation.condition == "negation":
                literal = violation.literal
                diagnostics.append(make_diagnostic(
                    "E102",
                    "variable(s) %s in negated literal %s not bound by a "
                    "positive body argument"
                    % (_var_names(violation.variables), format_literal(literal)),
                    span=literal.span or rule.span,
                    rule=repr(rule),
                    hint="bind %s with a positive literal before the negation"
                         % _var_names(violation.variables),
                ))
            else:  # name-ordering
                literal = violation.literal
                diagnostics.append(make_diagnostic(
                    "E103",
                    "predicate-name variable(s) %s of %s cannot be bound by "
                    "any ordering of the positive body literals"
                    % (_var_names(violation.variables), format_literal(literal)),
                    span=(literal.span if literal is not None else None) or rule.span,
                    rule=repr(rule),
                    hint="add a positive literal that binds the predicate "
                         "name in an argument position",
                ))
        for spec in rule.aggregates:
            if not predicate_name(spec.condition).is_ground():
                error_rules.add(index)
                diagnostics.append(make_diagnostic(
                    "E107",
                    "aggregate condition %s has a non-ground predicate name"
                    % format_term(spec.condition),
                    span=spec.span or rule.span,
                    rule=repr(rule),
                    hint="aggregates fold a fixed relation; use a ground "
                         "predicate name in the condition",
                ))
    return diagnostics, error_rules


# ---------------------------------------------------------------------------
# Stratification (W501 warning, E104 error)
# ---------------------------------------------------------------------------

def check_stratification(program):
    """Negation/aggregation cycles over the ground-indicator graph.

    Mirrors the semi-naive engine's stratification: aggregate edges are
    labelled negative, and a negative edge inside a strongly connected
    component means recursion through negation (``W501`` — the well-founded
    mode evaluates it) or through aggregation (``E104`` — no engine does).
    Rules whose indicators are non-ground (higher-order HiLog) contribute
    no edges: their stratification is a runtime property of the ground
    names, which static analysis cannot enumerate.
    """
    graph = DependencyGraph()
    negation_sites = {}   # (head, body) indicator pair -> (rule, literal)
    aggregate_sites = {}  # (head, condition) indicator pair -> (rule, spec)
    for rule in program.rules:
        head = _indicator(rule.head)
        if head is None:
            continue
        graph.add_node(head)
        if rule.is_fact():
            continue
        for literal in rule.body:
            if literal.is_builtin():
                continue
            target = _indicator(literal.atom)
            if target is None:
                continue
            graph.add_edge(head, target, negative=literal.negative)
            if literal.negative:
                negation_sites.setdefault((head, target), (rule, literal))
        for spec in rule.aggregates:
            target = _indicator(spec.condition)
            if target is None:
                continue
            # Aggregation behaves like negation for stratification: the
            # condition's extension must be complete before the fold runs.
            graph.add_edge(head, target, negative=True)
            aggregate_sites.setdefault((head, target), (rule, spec))

    components, component_of, _edges = graph.condensation()
    diagnostics = []
    warned_components = set()
    for source, target in graph.edges():
        if not graph.is_negative_edge(source, target):
            continue
        if component_of[source] != component_of[target]:
            continue
        witness = _cycle_witness(graph, components[component_of[source]], source, target)
        if (source, target) in aggregate_sites:
            rule, spec = aggregate_sites[(source, target)]
            if source == target and _certain_aggregate_self_loop(rule, spec):
                # The condition provably covers the rule's own head, so the
                # ground dependency graph has a self-loop whatever the data:
                # never modularly stratified, every evaluation path rejects.
                diagnostics.append(make_diagnostic(
                    "E104",
                    "recursion through aggregation at %s: the aggregate "
                    "condition %s covers the rule's own head, so the ground "
                    "instance always cycles; no evaluation mode supports "
                    "three-valued aggregation"
                    % (_format_indicator(source), format_term(spec.condition)),
                    span=spec.span or rule.span,
                    rule=repr(rule),
                    hint="break the cycle: aggregate a lower stratum into a "
                         "separate predicate",
                ))
            else:
                # Indicator-level cycle only: the paper's parts explosion is
                # exactly this shape, and evaluates whenever the part data
                # is acyclic (modular stratification is checked against the
                # data at load time; the semi-naive engine falls back to the
                # grounding oracle).
                diagnostics.append(make_diagnostic(
                    "W503",
                    "recursion through aggregation at the predicate level "
                    "(cycle: %s); evaluation succeeds only while the data "
                    "keeps the ground instance acyclic (modular "
                    "stratification, Theorem 6.1)" % witness,
                    span=spec.span or rule.span,
                    rule=repr(rule),
                    hint="the fast semi-naive engine cannot run this; "
                         "strategy=\"auto\" falls back to the grounding "
                         "oracle",
                ))
            continue
        component = component_of[source]
        if component in warned_components:
            continue
        warned_components.add(component)
        rule, literal = negation_sites[(source, target)]
        diagnostics.append(make_diagnostic(
            "W501",
            "recursion through negation at %s (cycle: %s); stratified "
            "perfect-model evaluation rejects this"
            % (_format_indicator(source), witness),
            span=(literal.span if literal is not None else None) or rule.span,
            rule=repr(rule),
            hint="evaluate with mode=\"wellfounded\" (three-valued), or "
                 "restructure to remove the negative cycle",
        ))
    return diagnostics


def _certain_aggregate_self_loop(rule, spec):
    """Does the ground dependency graph *provably* self-loop at this rule?

    True when the aggregate condition pattern matches the rule's own
    (skolemized) head and every condition variable outside the head is free
    (bound by no body literal): the condition's instance set then contains
    the head atom itself for every ground head instance, so no data can
    make the program modularly stratified.  Variables bound by the body to
    values unrelated to the head (``s(X, N) :- next(X, W), N = sum(V :
    s(W, V))``) make the loop data-dependent, not certain.
    """
    mapping = {}

    def walk(term):
        if isinstance(term, Var):
            if term not in mapping:
                mapping[term] = Sym("$lint_head_%d" % len(mapping))
            return mapping[term]
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(arg) for arg in term.args))
        return term

    if match(spec.condition, walk(rule.head)) is None:
        return False
    head_vars = rule.head.variables()
    body_vars = set()
    for literal in rule.body:
        body_vars |= literal.atom.variables()
    return not ((spec.condition.variables() - head_vars) & body_vars)


def _cycle_witness(graph, component, source, target):
    """A minimal cycle through the negative edge ``source -> target``:
    BFS the shortest ``target ~> source`` path inside the component."""
    if source == target:
        return "%s -[not]-> %s" % (_format_indicator(source), _format_indicator(source))
    parents = {target: None}
    frontier = [target]
    while frontier and source not in parents:
        next_frontier = []
        for node in frontier:
            for successor in graph.successors(node):
                if successor in component and successor not in parents:
                    parents[successor] = node
                    next_frontier.append(successor)
        frontier = next_frontier
    path = []
    node = source if source in parents else target
    while node is not None:
        path.append(node)
        node = parents[node]
    path.reverse()  # target ... source, closing the cycle back at source
    return "%s -[not]-> %s" % (
        _format_indicator(source),
        " -> ".join(_format_indicator(n) for n in path),
    )


# ---------------------------------------------------------------------------
# Planner-backed checks (E106, W502)
# ---------------------------------------------------------------------------

def check_plans(program, error_rules):
    """Compile every proper rule through the real join planner.

    ``PlanError`` becomes ``E106`` unless the rule already carries a safety
    error explaining the flounder; a successful plan is scanned for fetches
    that share no bound variable with the join built so far (``W502``).
    """
    diagnostics = []
    for index, rule in enumerate(program.rules):
        if rule.is_fact():
            continue
        try:
            plan = compile_rule(rule)
        except PlanError as error:
            if index not in error_rules:
                diagnostics.append(make_diagnostic(
                    "E106",
                    "no safe join plan: %s" % (error,),
                    span=rule.span,
                    rule=repr(rule),
                    hint="reorder is impossible for the planner too — bind "
                         "the offending variables with positive literals",
                ))
            continue
        except HiLogError:
            continue
        for step in plan.steps:
            if step.kind != FETCH:
                continue
            atom = step.literal.atom
            if not isinstance(atom, App) or not atom.args:
                continue
            if not step.bound_before:
                continue  # the leading fetch necessarily scans unbounded
            if step.index_positions:
                continue
            if atom.variables() & step.bound_before:
                continue  # partially connected through a compound argument
            diagnostics.append(make_diagnostic(
                "W502",
                "fetch of %s shares no bound variable with the join built "
                "before it (cross product)" % format_literal(step.literal),
                span=step.literal.span or rule.span,
                rule=repr(rule),
                hint="link %s to the rest of the body through a shared "
                     "variable, or split the rule"
                     % format_literal(step.literal),
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Hygiene (W201)
# ---------------------------------------------------------------------------

def check_singletons(program, error_rules):
    """Named variables occurring exactly once in a rule (W201).

    Underscore-prefixed names (including the parser's anonymous ``_``
    variables) are the conventional opt-out and never warn; rules already
    carrying safety errors are skipped — the unbound variable *is* usually
    the singleton, and E10x already names it.
    """
    diagnostics = []
    for index, rule in enumerate(program.rules):
        if index in error_rules or rule.is_ground():
            continue
        counts = {}
        _count_variables(rule.head, counts)
        for literal in rule.body:
            _count_variables(literal.atom, counts)
        for spec in rule.aggregates:
            _count_variables(spec.value, counts)
            _count_variables(spec.condition, counts)
            _count_variables(spec.result, counts)
        singletons = sorted(
            (v for v, n in counts.items() if n == 1 and not v.name.startswith("_")),
            key=lambda v: v.name,
        )
        if singletons:
            diagnostics.append(make_diagnostic(
                "W201",
                "singleton variable(s) %s" % _var_names(singletons),
                span=rule.span,
                rule=repr(rule),
                hint="use _ (or an _-prefixed name) for variables that are "
                     "intentionally unused",
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Duplicate / subsumed rules (W301, W302)
# ---------------------------------------------------------------------------

def _canonical(rule):
    """Alpha-equivalence canonical form: variables renamed to ``_R1..`` in
    traversal order, so two alpha-equal rules become the identical Rule.
    A ground rule is its own canonical form (nothing to rename) — the
    common case for fact-heavy programs, where renaming would dominate
    the whole lint run."""
    if rule.is_ground():
        return rule
    return rule.rename_apart([0])


def check_duplicates(program):
    diagnostics = []
    first_seen = {}
    for index, rule in enumerate(program.rules):
        key = _canonical(rule)
        if key in first_seen:
            original = program.rules[first_seen[key]]
            where = ("at %s" % (original.span,)) if original.span is not None \
                else ("#%d" % (first_seen[key] + 1,))
            diagnostics.append(make_diagnostic(
                "W301",
                "rule is identical (up to variable renaming) to the earlier "
                "rule %s" % where,
                span=rule.span,
                rule=repr(rule),
                hint="delete one of the copies",
            ))
        else:
            first_seen[key] = index
    return diagnostics


def _skolemize(rule):
    """Replace every variable of ``rule`` with a fresh constant.

    Theta-subsumption binds only the *general* rule's variables; the
    specific rule's variables are constants of the comparison.  One-sided
    :func:`match` would happily bind any variable it walks into, so the
    specific side is made literally variable-free first.  (The skolem
    symbol names restart at 0 per call, so the interned symbols are reused
    across checks rather than accumulating.)
    """
    mapping = {}

    def walk(term):
        if isinstance(term, Var):
            if term not in mapping:
                mapping[term] = Sym("$lint_skolem_%d" % len(mapping))
            return mapping[term]
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(arg) for arg in term.args))
        return term

    return Rule(
        walk(rule.head),
        tuple(Literal(walk(lit.atom), lit.positive) for lit in rule.body),
    )


def _subsumes(general, specific):
    """Theta-subsumption: is there a substitution making ``general``'s head
    equal ``specific``'s head and mapping every ``general`` body literal
    onto *some* ``specific`` body literal of the same sign?

    ``specific`` must already be skolemized (see :func:`_skolemize`).
    """
    theta = match(general.head, specific.head)
    if theta is None:
        return False

    def extend(literals, theta):
        if not literals:
            return True
        first, rest = literals[0], literals[1:]
        for candidate in specific.body:
            if candidate.positive != first.positive:
                continue
            extended = match(first.atom, candidate.atom, theta)
            if extended is not None and extend(rest, extended):
                return True
        return False

    return extend(list(general.body), theta)


def check_subsumption(program, error_rules):
    """Proper rules made redundant by a more general rule or fact (W302).

    Pairs are restricted to the same ground head indicator; alpha-equal
    pairs are left to W301; aggregates opt a rule out (an aggregate rule's
    meaning is not captured by clause subsumption); oversized bodies are
    skipped to bound the search.
    """
    groups = {}
    for index, rule in enumerate(program.rules):
        head = _indicator(rule.head)
        if head is not None:
            groups.setdefault(head, []).append(index)

    diagnostics = []
    canonical = {}
    for indicator, indices in groups.items():
        if len(indices) < 2:
            continue
        for j in indices:
            specific = program.rules[j]
            if specific.is_fact() or specific.aggregates or j in error_rules:
                continue
            if len(specific.body) > _SUBSUMPTION_MAX_BODY:
                continue
            skolemized = _skolemize(specific)
            for i in indices:
                if i == j:
                    continue
                general = program.rules[i]
                if general.aggregates or i in error_rules:
                    continue
                if len(general.body) > len(specific.body):
                    continue
                if canonical.setdefault(i, _canonical(general)) == \
                        canonical.setdefault(j, _canonical(specific)):
                    continue  # exact duplicate: W301's business
                if _subsumes(general, skolemized):
                    where = ("at %s" % (general.span,)) if general.span is not None \
                        else ("#%d" % (i + 1,))
                    diagnostics.append(make_diagnostic(
                        "W302",
                        "rule is subsumed by the more general rule %s and "
                        "derives nothing new" % where,
                        span=specific.span,
                        rule=repr(specific),
                        hint="delete this rule, or strengthen the general one",
                    ))
                    break
    return diagnostics


# ---------------------------------------------------------------------------
# Arity consistency (W303)
# ---------------------------------------------------------------------------

def check_arities(program):
    """Ground predicate names used at more than one arity.

    HiLog *permits* arity polymorphism, so this is hygiene (a warning):
    the minority arity is usually a typo'd call site.  Non-ground names
    are exempt (higher-order rules are genuinely polymorphic).
    """
    uses = {}  # name term -> arity -> [count, first span, sample atom]
    for rule in program.rules:
        atoms = [(rule.head, rule.span)]
        for literal in rule.body:
            if not literal.is_builtin():
                atoms.append((literal.atom, literal.span or rule.span))
        for spec in rule.aggregates:
            atoms.append((spec.condition, spec.span or rule.span))
        for atom, span in atoms:
            name = predicate_name(atom)
            if not name.is_ground():
                continue
            per_name = uses.setdefault(name, {})
            entry = per_name.setdefault(_arity(atom), [0, span, atom])
            entry[0] += 1

    diagnostics = []
    for name, per_name in uses.items():
        if len(per_name) < 2:
            continue
        majority = max(per_name, key=lambda arity: (per_name[arity][0], arity))
        for arity, (count, span, atom) in sorted(per_name.items()):
            if arity == majority:
                continue
            described = "as a bare proposition" if arity < 0 \
                else "with arity %d" % arity
            majority_described = "a bare proposition" if majority < 0 \
                else "arity %d" % majority
            diagnostics.append(make_diagnostic(
                "W303",
                "predicate %s used %s here (%d use(s)) but as %s elsewhere "
                "(%d use(s))"
                % (format_term(name), described, count,
                   majority_described, per_name[majority][0]),
                span=span,
                rule=format_term(atom),
                hint="HiLog allows arity polymorphism; if this is not "
                     "deliberate, fix the odd call site",
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Liveness (W401, W402, W403)
# ---------------------------------------------------------------------------

def check_liveness(program):
    """Undefined references, unused fact-only relations, underivable IDB."""
    defined = set()
    has_fact = {}
    proper_by_head = {}
    wildcard_head_arities = set()
    referenced = {}
    wildcard_reference_arities = set()

    for rule in program.rules:
        head = _indicator(rule.head)
        if head is None:
            # `X(A, B) :- ...` can define any arity-2 relation at runtime.
            wildcard_head_arities.add(_arity(rule.head))
        else:
            defined.add(head)
            if rule.is_fact():
                has_fact.setdefault(head, rule)
            else:
                proper_by_head.setdefault(head, []).append(rule)
        for literal in rule.body:
            if literal.is_builtin():
                continue
            target = _indicator(literal.atom)
            if target is None:
                # `G(X, Y)` may read any arity-2 relation at runtime.
                wildcard_reference_arities.add(_arity(literal.atom))
            else:
                referenced.setdefault(target, (rule, literal))
        for spec in rule.aggregates:
            target = _indicator(spec.condition)
            if target is None:
                wildcard_reference_arities.add(_arity(spec.condition))
            else:
                referenced.setdefault(target, (rule, spec))

    diagnostics = []
    undefined = set()
    for target in sorted(referenced, key=_format_indicator):
        if target in defined or target[1] in wildcard_head_arities:
            continue
        undefined.add(target)
        rule, site = referenced[target]
        diagnostics.append(make_diagnostic(
            "W401",
            "predicate %s is referenced but has no rules and no facts"
            % _format_indicator(target),
            span=(site.span if site.span is not None else None) or rule.span,
            rule=repr(rule),
            hint="add facts or rules for %s, or fix the spelling"
                 % _format_indicator(target),
        ))

    if any(not rule.is_fact() for rule in program.rules):
        for target, rule in sorted(has_fact.items(), key=lambda kv: _format_indicator(kv[0])):
            if target in proper_by_head or target in referenced:
                continue
            if target[1] in wildcard_reference_arities:
                continue
            diagnostics.append(make_diagnostic(
                "W402",
                "fact-only relation %s is never referenced by any rule"
                % _format_indicator(target),
                span=rule.span,
                rule=repr(rule),
                hint="drop the facts or reference the relation",
            ))

    for target, rules in sorted(proper_by_head.items(), key=lambda kv: _format_indicator(kv[0])):
        if target in has_fact:
            continue
        blocked = []
        for rule in rules:
            dead = None
            for literal in rule.body:
                if literal.is_builtin() or not literal.positive:
                    continue
                body_target = _indicator(literal.atom)
                if body_target is not None and body_target in undefined:
                    dead = body_target
                    break
            if dead is None:
                blocked = None
                break
            blocked.append(dead)
        if blocked:
            diagnostics.append(make_diagnostic(
                "W403",
                "predicate %s can never derive a fact: every defining rule "
                "depends on an undefined predicate (%s)"
                % (_format_indicator(target),
                   ", ".join(sorted({_format_indicator(b) for b in blocked}))),
                span=rules[0].span,
                rule=repr(rules[0]),
                hint="define the missing dependencies or remove the dead "
                     "rules",
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

def run_checks(program):
    """Run every pass over ``program`` and return the combined findings."""
    diagnostics, error_rules = check_safety(program)
    diagnostics.extend(check_stratification(program))
    diagnostics.extend(check_plans(program, error_rules))
    diagnostics.extend(check_singletons(program, error_rules))
    diagnostics.extend(check_duplicates(program))
    diagnostics.extend(check_subsumption(program, error_rules))
    diagnostics.extend(check_arities(program))
    diagnostics.extend(check_liveness(program))
    return diagnostics
