"""Derivation-provenance explain: *why* is this atom true (or undefined)?

``explain_atom`` reconstructs a derivation tree for a ground atom against a
materialized model:

* a **true** atom gets a proof tree — a rule instance whose body facts are
  themselves recursively explained down to EDB leaves.  The search matches
  the atom against each rule head (one-sided ``match``: the model side is
  ground) and enumerates body solutions against the store's indexes, with
  a path-visited set rejecting cyclic justifications; a least fixpoint
  always contains an acyclic proof, so backtracking over rule instances is
  complete.  When the session's incremental maintenance plans are
  available, their head-bound rederivation plans (``db/plans.py``)
  pre-filter rules by ``plan_satisfiable`` before any enumeration, and
  the store's support counts are recorded on each node.

* an **undefined** atom (well-founded mode) gets a negation-loop witness:
  a chain of rule instances, each valid in the *overestimate* (positive
  subgoals true-or-undefined, negated subgoals not true) and each hinging
  on an undefined subgoal, followed until an atom on the chain repeats —
  the unfounded/negation SCC the alternating fixpoint could never resolve.
  Such a chain always exists: every overestimate instance of an undefined
  atom must cite at least one undefined subgoal (else the underestimate
  would have promoted the atom to true).

* a **false** atom gets a one-node "false" tree.

``verify_derivation`` independently re-checks a tree against the store —
every cited rule instance must actually fire (head and body literals
re-match, positives present, negated subgoals absent, builtins re-solve) —
which is both the test-suite contract and a debugging cross-check.

Aggregate rules are not explained (their group-valued justifications are
not single instances); atoms derivable only through an aggregate raise
:class:`ExplainError`.
"""

from __future__ import annotations

import sys

from repro.engine.builtins import solve_builtin
from repro.engine.seminaive.engine import PlanSources, plan_satisfiable
from repro.hilog.errors import EvaluationError
from repro.hilog.pretty import format_rule, format_term
from repro.hilog.subst import Substitution
from repro.hilog.unify import match

__all__ = ["Derivation", "ExplainError", "explain_atom", "verify_derivation"]

_EMPTY = Substitution._trusted({})


class ExplainError(Exception):
    """No derivation could be reconstructed (or a tree failed to verify)."""


class Derivation(object):
    """One node of a derivation tree.

    ``kind`` is one of:

    ``edb``        an asserted base fact (leaf)
    ``rule``       derived by ``rule``; ``children`` explain the body
                   literals in source order
    ``builtin``    a satisfied builtin body literal (leaf)
    ``negation``   a negated body literal whose atom is false (leaf)
    ``true``       a true atom cited inside an undefined-loop witness,
                   not expanded further (leaf)
    ``undefined``  an undefined atom; with ``rule`` set, the overestimate
                   instance it hinges on; without, an unexpanded undefined
                   subgoal reference (leaf)
    ``loop``       the closure of an undefined cycle: this atom already
                   appears on the chain above (leaf; ``meta["cycle"]``)
    ``false``      the queried atom is simply false (root leaf)
    """

    __slots__ = ("atom", "kind", "rule", "children", "meta")

    def __init__(self, atom, kind, rule=None, children=(), meta=None):
        self.atom = atom
        self.kind = kind
        self.rule = rule
        self.children = tuple(children)
        self.meta = dict(meta) if meta else {}

    def size(self):
        return 1 + sum(child.size() for child in self.children)

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self):
        """JSON-ready plain-data view (atoms/rules pretty-printed)."""
        out = {"atom": format_term(self.atom), "kind": self.kind}
        if self.rule is not None:
            out["rule"] = format_rule(self.rule)
        if self.meta:
            out.update(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self):
        return "Derivation(%s, %r, children=%d)" % (
            format_term(self.atom), self.kind, len(self.children))


def _proper_rules(rules):
    """Accept a Program or any iterable of rules; drop facts."""
    rules = getattr(rules, "rules", rules)
    return [rule for rule in rules if not rule.is_fact()]


class _Explainer(object):
    def __init__(self, rules, store, edb, undefined, plans=None):
        self.rules = _proper_rules(rules)
        self.store = store
        self.edb = edb
        self.undefined = undefined
        self.memo = {}
        self.support = getattr(store, "support", None)
        # Head-bound rederivation plans from the session's maintenance
        # bundles: a sound, complete satisfiability pre-filter when the
        # model is two-valued (the plans resolve negation against the
        # store alone, which matches the true-search exactly iff nothing
        # is undefined).
        self.prefilter = {}
        if plans is not None and not undefined:
            self.sources = PlanSources(store)
            for bundle in plans:
                if bundle is None:
                    continue
                for entry in bundle.rederive_plans:
                    rule, plan = entry[0], entry[1]
                    if plan is not None:
                        self.prefilter[rule] = plan

    # -- membership --------------------------------------------------------

    def _neg_holds_true(self, atom):
        """``not atom`` in the (well-founded) model: atom neither true nor
        undefined."""
        return atom not in self.store and atom not in self.undefined

    def _neg_holds_over(self, atom):
        """``not atom`` in the overestimate phase: atom not proven true."""
        return atom not in self.store

    def _candidates_true(self, pattern, subst):
        return self.store.candidates(pattern, subst)

    def _candidates_over(self, pattern, subst):
        out = list(self.store.candidates(pattern, subst))
        out.extend(self.undefined)  # match() filters non-candidates
        return out

    # -- instance enumeration ----------------------------------------------

    def _solutions(self, rule, subst, candidates, neg_holds):
        """Ground solutions of ``rule.body`` extending ``subst``.

        Backtracking with deferral: positive literals resolve against the
        store indexes immediately; builtins run as soon as their inputs are
        bound (floundering defers them); negated literals wait until
        ground.  Yields full substitutions.
        """
        literals = list(rule.body)

        def solve(remaining, subst):
            if not remaining:
                yield subst
                return
            for index, literal in enumerate(remaining):
                rest = remaining[:index] + remaining[index + 1:]
                if literal.is_builtin():
                    try:
                        extensions = solve_builtin(literal.atom, subst)
                    except EvaluationError:
                        continue  # not ready: defer behind a binder
                    for extension in extensions:
                        for solution in solve(rest, extension):
                            yield solution
                    return
                if literal.positive:
                    pattern = literal.atom
                    for candidate in candidates(pattern, subst):
                        extension = match(pattern, candidate, subst)
                        if extension is not None:
                            for solution in solve(rest, extension):
                                yield solution
                    return
                atom = subst.apply(literal.atom)
                if not atom.is_ground():
                    continue  # defer until the positives bind it
                if not neg_holds(atom):
                    return  # instance dead, no later binding can revive it
                for solution in solve(rest, subst):
                    yield solution
                return
            return  # floundered: nothing ready (non-range-restricted body)

        return solve(literals, subst)

    # -- true atoms --------------------------------------------------------

    def explain_true(self, atom, path):
        memo = self.memo.get(atom)
        if memo is not None:
            return memo
        if atom in self.edb:
            node = Derivation(atom, "edb", meta=self._support_meta(atom))
            self.memo[atom] = node
            return node
        path = path | {atom}
        skipped_aggregate = False
        for rule in self.rules:
            head_subst = match(rule.head, atom)
            if head_subst is None:
                continue
            if rule.aggregates:
                skipped_aggregate = True
                continue
            plan = self.prefilter.get(rule)
            if plan is not None and not plan_satisfiable(
                    plan, self.sources, initial=dict(head_subst.items())):
                continue
            for solution in self._solutions(
                    rule, head_subst, self._candidates_true,
                    self._neg_holds_true):
                children = self._true_children(rule, solution, path)
                if children is not None:
                    node = Derivation(
                        atom, "rule", rule=rule, children=children,
                        meta=self._support_meta(atom))
                    self.memo[atom] = node
                    return node
        if skipped_aggregate:
            raise ExplainError(
                "%s is only derivable through an aggregate rule, which "
                "explain does not reconstruct" % format_term(atom))
        return None

    def _true_children(self, rule, solution, path):
        children = []
        for literal in rule.body:
            atom = solution.apply(literal.atom)
            if literal.is_builtin():
                children.append(Derivation(atom, "builtin"))
            elif literal.positive:
                if atom in path:
                    return None  # cyclic justification: backtrack
                child = self.explain_true(atom, path)
                if child is None:
                    return None
                children.append(child)
            else:
                children.append(Derivation(atom, "negation"))
        return children

    def _support_meta(self, atom):
        if self.support is None:
            return None
        try:
            return {"support": self.support(atom)}
        except Exception:
            return None

    # -- undefined atoms ---------------------------------------------------

    def explain_undefined(self, atom, chain):
        if atom in chain:
            cycle = chain[chain.index(atom):] + [atom]
            return Derivation(atom, "loop", meta={
                "cycle": [format_term(a) for a in cycle]})
        for rule in self.rules:
            if rule.aggregates:
                continue
            head_subst = match(rule.head, atom)
            if head_subst is None:
                continue
            for solution in self._solutions(
                    rule, head_subst, self._candidates_over,
                    self._neg_holds_over):
                children = self._undefined_children(rule, solution, chain + [atom])
                if children is not None:
                    return Derivation(atom, "undefined", rule=rule,
                                      children=children)
        raise ExplainError(
            "no overestimate instance with an undefined subgoal found for "
            "%s — is the model current?" % format_term(atom))

    def _undefined_children(self, rule, solution, chain):
        """Children of one overestimate instance, following the first
        undefined subgoal deeper; None when the instance has no undefined
        subgoal (it cannot witness undefinedness)."""
        children = []
        followed = False
        for literal in rule.body:
            atom = solution.apply(literal.atom)
            if literal.is_builtin():
                children.append(Derivation(atom, "builtin"))
            elif literal.positive:
                if atom in self.store:
                    children.append(Derivation(atom, "true",
                                               meta=self._support_meta(atom)))
                elif not followed:
                    followed = True
                    children.append(self.explain_undefined(atom, chain))
                else:
                    children.append(Derivation(atom, "undefined"))
            else:
                if atom in self.undefined:
                    if not followed:
                        followed = True
                        child = self.explain_undefined(atom, chain)
                        child.meta["negated"] = True
                        children.append(child)
                    else:
                        children.append(Derivation(
                            atom, "undefined", meta={"negated": True}))
                else:
                    children.append(Derivation(atom, "negation"))
        return children if followed else None


def explain_atom(atom, rules, store, edb=frozenset(), undefined=frozenset(),
                 plans=None):
    """Reconstruct a derivation tree for ``atom`` (see module docstring)."""
    if not atom.is_ground():
        raise ExplainError("explain needs a ground atom, got %s"
                           % format_term(atom))
    explainer = _Explainer(rules, store, edb, undefined, plans=plans)
    # Deep chains (chain-200 transitive closure) recurse one search level
    # per fact; give the proof search headroom beyond the default limit.
    limit = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(max(limit, 100000))
        if atom in store:
            node = explainer.explain_true(atom, frozenset())
            if node is None:
                raise ExplainError(
                    "no acyclic derivation found for the true atom %s — is "
                    "the model current?" % format_term(atom))
            return node
        if atom in undefined:
            return explainer.explain_undefined(atom, [])
        return Derivation(atom, "false")
    finally:
        sys.setrecursionlimit(limit)


def verify_derivation(node, store, edb=frozenset(), undefined=frozenset()):
    """Re-check a derivation tree against the model; True or ExplainError.

    Every cited rule instance must fire for real: the head re-matches the
    node's atom, each body literal re-matches its child's atom under the
    accumulated bindings, positive children are present (in the
    overestimate for undefined nodes), negated subgoals are absent, and
    builtins re-solve.
    """
    limit = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(max(limit, 100000))
        _verify(node, store, edb, undefined, frozenset())
    finally:
        sys.setrecursionlimit(limit)
    return True


def _fail(message, *args):
    raise ExplainError(message % args)


def _verify(node, store, edb, undefined, ancestors):
    kind = node.kind
    atom = node.atom
    if kind == "edb":
        if atom not in edb:
            _fail("%s cited as EDB but not asserted", format_term(atom))
        if atom not in store:
            _fail("EDB atom %s missing from the store", format_term(atom))
    elif kind == "false":
        if atom in store or atom in undefined:
            _fail("%s cited as false but present in the model",
                  format_term(atom))
    elif kind == "true":
        if atom not in store:
            _fail("%s cited as true but absent", format_term(atom))
    elif kind == "builtin":
        if not atom.is_ground() or not solve_builtin(atom, _EMPTY):
            _fail("cited builtin %s does not hold", format_term(atom))
    elif kind == "negation":
        if atom in store or atom in undefined:
            _fail("negated subgoal %s is not false", format_term(atom))
    elif kind == "loop":
        if atom not in undefined:
            _fail("loop atom %s is not undefined", format_term(atom))
        if atom not in ancestors:
            _fail("loop atom %s does not close a cycle on its chain",
                  format_term(atom))
    elif kind == "undefined":
        if atom in store or atom not in undefined:
            _fail("%s cited as undefined but is not", format_term(atom))
        if node.rule is not None:
            _verify_instance(node, store, edb, undefined,
                             ancestors | {atom}, overestimate=True)
    elif kind == "rule":
        if atom not in store:
            _fail("%s cited as derived but absent from the store",
                  format_term(atom))
        _verify_instance(node, store, edb, undefined, ancestors,
                         overestimate=False)
    else:
        _fail("unknown derivation node kind %r", kind)
    return True


def _verify_instance(node, store, edb, undefined, ancestors, overestimate):
    rule = node.rule
    subst = match(rule.head, node.atom)
    if subst is None:
        _fail("rule head of %s does not match %s",
              format_rule(rule), format_term(node.atom))
    if len(node.children) != len(rule.body):
        _fail("instance of %s cites %d body facts for %d literals",
              format_rule(rule), len(node.children), len(rule.body))
    for literal, child in zip(rule.body, node.children):
        subst = match(literal.atom, child.atom, subst)
        if subst is None:
            _fail("body literal %s of %s does not match cited %s",
                  format_term(literal.atom), format_rule(rule),
                  format_term(child.atom))
        if literal.is_builtin():
            if child.kind != "builtin":
                _fail("builtin literal cited by a %r node", child.kind)
        elif literal.positive:
            if overestimate:
                if child.atom not in store and child.atom not in undefined:
                    _fail("overestimate subgoal %s is false",
                          format_term(child.atom))
            elif child.atom not in store:
                _fail("positive subgoal %s is absent", format_term(child.atom))
        else:
            if child.atom in store:
                _fail("negated subgoal %s is true", format_term(child.atom))
            if not overestimate and child.atom in undefined:
                _fail("negated subgoal %s is undefined in a two-valued "
                      "context", format_term(child.atom))
    for child in node.children:
        _verify(child, store, edb, undefined, ancestors)
