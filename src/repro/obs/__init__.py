"""Observability: metrics registry, evaluation tracing, derivation explain.

``repro.obs.metrics`` and ``repro.obs.trace`` are dependency-free and
imported eagerly (the engine's span hooks import them, so they must not
import the engine back).  ``repro.obs.explain`` *does* import the engine —
it replays rule instances against the store — and is loaded lazily via
PEP 562 so ``repro.engine`` can import this package mid-initialization
without a cycle.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    get_registry,
    parse_prometheus_text,
    render_prometheus,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import (
    EvaluationTracer,
    current_tracer,
    set_global_tracer,
    tracing,
)

_EXPLAIN_NAMES = ("Derivation", "ExplainError", "explain_atom",
                  "verify_derivation")

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "get_registry",
    "parse_prometheus_text",
    "render_prometheus",
    "set_default_registry",
    "use_registry",
    "EvaluationTracer",
    "current_tracer",
    "set_global_tracer",
    "tracing",
] + list(_EXPLAIN_NAMES)


def __getattr__(name):
    if name in _EXPLAIN_NAMES:
        from repro.obs import explain as _explain
        value = getattr(_explain, name)
        globals()[name] = value
        return value
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
