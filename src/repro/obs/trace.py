"""Opt-in structured tracing of evaluation, maintenance, and serving.

A tracer is an in-memory ring buffer of structured events (plain dicts:
``{"kind": ..., "seq": ..., "ts": ..., **fields}``) plus an optional JSON
Lines sink.  The engine, the well-founded alternation, the session update
path, and the HTTP server all emit through :func:`current_tracer`; when no
tracer is installed (the default), each hook costs a single contextvar read
per *operation* — never per candidate fact — so the hot loops stay exactly
as fast as before this layer existed.

Event kinds currently emitted:

``iteration``    one semi-naive fixpoint round (delta size)
``stratum``      one stratum evaluated to fixpoint (iterations, added,
                 duration, register fetch/candidate deltas)
``evaluate``     a full program evaluation (strata, total facts)
``alternation``  one alternating-fixpoint round (overestimate/underestimate
                 layer sizes, removals reseeded)
``wellfounded``  a full well-founded computation summary
``maintenance``  one session update batch (mode, op counts, delta sizes,
                 duration, register stats)
``collect``      an intern-table sweep (swept/kept sizes, duration)
``rebase``       an epoch-manager overlay rebase into a fresh base snapshot
``slow_request`` an HTTP request slower than the server's slow-query bar

Install a tracer for a scope with ``tracing(tracer)`` (contextvar, test
friendly) or process-wide with ``set_global_tracer`` (what the serving CLI
``--trace-log`` flag does — contextvars set in the main thread are not
visible to the already-running writer thread, so the global fallback is
what makes writer-side maintenance spans reach the sink).
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import threading
import time
from collections import deque

__all__ = [
    "EvaluationTracer",
    "current_tracer",
    "set_global_tracer",
    "tracing",
]


class EvaluationTracer(object):
    """Ring buffer of structured events with an optional JSONL sink."""

    def __init__(self, capacity=4096, sink=None):
        self._events = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._owns_sink = False
        if isinstance(sink, str):
            sink = io.open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        self._sink = sink

    # -- emission ----------------------------------------------------------

    def emit(self, kind, **fields):
        event = dict(fields)
        event["kind"] = kind
        event["ts"] = time.time()
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            self._events.append(event)
            sink = self._sink
            if sink is not None:
                try:
                    sink.write(json.dumps(event, sort_keys=True, default=str))
                    sink.write("\n")
                    sink.flush()
                except (OSError, ValueError):
                    self._sink = None  # dead sink: keep the ring alive
        return event

    @contextlib.contextmanager
    def span(self, kind, **fields):
        """Timed event: yields a mutable field dict the caller may extend;
        on exit the event is emitted with a measured ``duration_s``."""
        span_fields = dict(fields)
        started = time.perf_counter()
        try:
            yield span_fields
        finally:
            span_fields["duration_s"] = time.perf_counter() - started
            self.emit(kind, **span_fields)

    # -- read side ---------------------------------------------------------

    def events(self, kind=None):
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [event for event in snapshot if event["kind"] == kind]

    def __len__(self):
        return len(self._events)

    def clear(self):
        with self._lock:
            self._events.clear()

    def close(self):
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None and self._owns_sink:
            try:
                sink.close()
            except OSError:
                pass


_GLOBAL_TRACER = None
_TRACER_VAR = contextvars.ContextVar("repro_tracer", default=None)


def current_tracer():
    """The installed tracer, or None (the fast default).

    Contextvar override first — ``tracing(...)`` scopes — then the process
    global set by ``set_global_tracer`` (which background threads see)."""
    tracer = _TRACER_VAR.get()
    if tracer is not None:
        return tracer
    return _GLOBAL_TRACER


def set_global_tracer(tracer):
    """Install ``tracer`` process-wide; returns the previous global."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


@contextlib.contextmanager
def tracing(tracer):
    """Scope ``current_tracer()`` to ``tracer`` inside the with-block."""
    token = _TRACER_VAR.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER_VAR.reset(token)
