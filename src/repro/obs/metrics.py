"""Process-wide metrics: counters, gauges, and bounded-memory histograms.

The registry is the numeric half of the observability layer (the event half
is :mod:`repro.obs.trace`).  Design constraints, in order:

* **Bounded memory.**  Histograms never store samples: observations land in
  a fixed array of log-scaled buckets (quarter-decades from 1µs to ~178s by
  default), from which p50/p99 are estimated by cumulative scan with linear
  interpolation inside the winning bucket.  A histogram is ~40 machine
  words forever, no matter how many requests it absorbs.

* **Near-zero disabled overhead.**  Metric *families* ("http", "session",
  "serve", ...) can be disabled on a registry; every accessor for a metric
  of a disabled family returns the shared :data:`NULL_METRIC`, whose
  ``inc``/``observe``/``set`` are empty methods — call sites need no
  ``if enabled`` guards and pay one no-op call when switched off.

* **Contextvar-safe defaults.**  ``get_registry()`` resolves a contextvar
  override first and falls back to the process-global default registry —
  the same pattern as the engine's ``EXECUTION_STATS`` — so tests isolate
  with ``use_registry(MetricsRegistry())`` while production code and
  background threads (which do *not* inherit later ``ContextVar`` sets)
  share the global one.

* **Standard exposition.**  ``render_prometheus()`` emits the Prometheus
  text format (``# HELP``/``# TYPE``, ``_total`` counters, cumulative
  ``_bucket{le="..."}`` histogram series with ``_sum``/``_count``), and
  ``parse_prometheus_text()`` validates/parses it back — used by the
  serving tests and the e15 scrape-format gate.
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "COUNT_BUCKETS",
    "DEFAULT_BUCKETS",
    "get_registry",
    "use_registry",
    "set_default_registry",
    "render_prometheus",
    "parse_prometheus_text",
]

#: Default histogram boundaries: quarter-decade log-scaled seconds covering
#: 1µs .. ~178s (34 finite buckets + overflow).  Wide enough for anything
#: from a register-machine iteration to a disastrous full rebuild.
DEFAULT_BUCKETS = tuple(10.0 ** (exponent / 4.0) for exponent in range(-24, 10))

#: Power-of-two boundaries for size/count-valued histograms (batch sizes,
#: delta cardinalities): 1 .. 65536 + overflow.
COUNT_BUCKETS = tuple(float(2 ** exponent) for exponent in range(0, 17))


class _NullMetric(object):
    """Shared no-op stand-in returned for metrics of a disabled family.

    Implements the full ``Counter``/``Gauge``/``Histogram`` mutation surface
    as empty methods, so instrumented call sites run unconditionally and
    cost one attribute lookup plus an empty call when the family is off.
    """

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


NULL_METRIC = _NullMetric()


class _Metric(object):
    """Common identity/bookkeeping for registered metrics."""

    kind = "untyped"

    __slots__ = ("name", "help", "family", "labels", "_lock")

    def __init__(self, name, help="", family=None, labels=None):
        self.name = name
        self.help = help
        self.family = family
        self.labels = tuple(sorted((labels or {}).items()))
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotonically increasing count (requests served, batches applied)."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, name, help="", family=None, labels=None):
        _Metric.__init__(self, name, help, family, labels)
        self._value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value


class Gauge(_Metric):
    """Point-in-time value; either set directly or read from a callback.

    A callback gauge re-evaluates its zero-argument callable at snapshot
    and scrape time (queue depths, thread aliveness); re-registering the
    same gauge name with a new callback *replaces* the callback, so a
    fresh ``ServingSession`` repoints the process gauges instead of
    leaving a closure over the dead one.  Callback failures degrade to the
    last directly-set value instead of poisoning the scrape.
    """

    kind = "gauge"

    __slots__ = ("_value", "_callback")

    def __init__(self, name, help="", family=None, labels=None, callback=None):
        _Metric.__init__(self, name, help, family, labels)
        self._value = 0.0
        self._callback = callback

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    def set_callback(self, callback):
        with self._lock:
            self._callback = callback

    @property
    def value(self):
        callback = self._callback
        if callback is not None:
            try:
                return callback()
            except Exception:
                pass
        return self._value


class Histogram(_Metric):
    """Fixed-bucket latency/size distribution with quantile estimation."""

    kind = "histogram"

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, name, help="", family=None, labels=None, buckets=None):
        _Metric.__init__(self, name, help, family, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted: %r" % (bounds,))
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        counts = self._counts
        bounds = self.buckets
        # Linear scan beats bisect for the short, front-loaded default
        # layout only at the very low end; bisect is branch-free enough
        # and O(log 34) always.
        low, high = 0, len(bounds)
        while low < high:
            mid = (low + high) // 2
            if value <= bounds[mid]:
                high = mid
            else:
                low = mid + 1
        with self._lock:
            counts[low] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def quantile(self, q):
        """Estimated q-quantile (0 <= q <= 1) by cumulative bucket scan with
        linear interpolation inside the containing bucket; None when empty."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if not total:
            return None
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if index >= len(self.buckets):
                    return self.buckets[-1]  # overflow bucket: clamp
                upper = self.buckets[index]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def summary(self):
        return {
            "count": self._count,
            "sum": round(self._sum, 9),
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry(object):
    """Named metrics with get-or-create accessors and family switches."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}  # (name, labels-tuple) -> metric
        self._disabled = set()

    # -- family switches ---------------------------------------------------

    def disable(self, family):
        with self._lock:
            self._disabled.add(family)

    def enable(self, family):
        with self._lock:
            self._disabled.discard(family)

    def enabled(self, family):
        return family not in self._disabled

    # -- accessors ---------------------------------------------------------

    def _get(self, cls, name, help, family, labels, **kwargs):
        if family is not None and family in self._disabled:
            return NULL_METRIC
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, family=family, labels=labels,
                             **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    "metric %r is a %s, not a %s"
                    % (name, metric.kind, cls.kind)
                )
        return metric

    def counter(self, name, help="", family=None, labels=None):
        return self._get(Counter, name, help, family, labels)

    def gauge(self, name, help="", family=None, labels=None, callback=None):
        metric = self._get(Gauge, name, help, family, labels)
        if callback is not None and metric is not NULL_METRIC:
            metric.set_callback(callback)
        return metric

    def histogram(self, name, help="", family=None, labels=None, buckets=None):
        return self._get(Histogram, name, help, family, labels,
                         buckets=buckets)

    # -- read side ---------------------------------------------------------

    def _live_metrics(self):
        with self._lock:
            metrics = list(self._metrics.values())
            disabled = set(self._disabled)
        return [m for m in metrics
                if m.family is None or m.family not in disabled]

    def snapshot(self):
        """Plain-data view: ``{exposed_name: number-or-summary-dict}``."""
        out = {}
        for metric in self._live_metrics():
            name = metric.name
            if metric.labels:
                name += "{%s}" % ",".join(
                    '%s="%s"' % pair for pair in metric.labels
                )
            if metric.kind == "histogram":
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render_prometheus(self):
        """The registry in Prometheus text exposition format (0.0.4)."""
        by_name = {}
        for metric in self._live_metrics():
            by_name.setdefault(metric.name, []).append(metric)
        lines = []
        for name in sorted(by_name):
            group = by_name[name]
            kind = group[0].kind
            exposed = name
            if kind == "counter" and not exposed.endswith("_total"):
                exposed += "_total"
            help_text = next((m.help for m in group if m.help), "")
            if help_text:
                lines.append("# HELP %s %s" % (exposed, _escape_help(help_text)))
            lines.append("# TYPE %s %s" % (exposed, kind))
            for metric in group:
                base_labels = list(metric.labels)
                if kind == "histogram":
                    with metric._lock:
                        counts = list(metric._counts)
                        total = metric._count
                        value_sum = metric._sum
                    cumulative = 0
                    for bound, bucket_count in zip(metric.buckets, counts):
                        cumulative += bucket_count
                        lines.append("%s_bucket%s %d" % (
                            name,
                            _labels(base_labels + [("le", _format(bound))]),
                            cumulative,
                        ))
                    lines.append("%s_bucket%s %d" % (
                        name, _labels(base_labels + [("le", "+Inf")]), total))
                    lines.append("%s_sum%s %s"
                                 % (name, _labels(base_labels), _format(value_sum)))
                    lines.append("%s_count%s %d"
                                 % (name, _labels(base_labels), total))
                else:
                    lines.append("%s%s %s" % (
                        exposed, _labels(base_labels), _format(metric.value)))
        return "\n".join(lines) + "\n" if lines else ""

    def clear(self):
        with self._lock:
            self._metrics.clear()


def _labels(pairs):
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, _escape_label(str(value))) for key, value in pairs
    )


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text):
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format(value):
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return "%.9g" % value


# -- exposition parsing/validation ----------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_METADATA_RE = re.compile(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$")


def parse_prometheus_text(text):
    """Parse/validate Prometheus text exposition output.

    Returns ``{metric_name: [(labels_dict, float_value), ...]}``; raises
    ``ValueError`` on any malformed line, undeclared types, or histogram
    series whose cumulative ``_bucket`` counts decrease.  This is the
    scrape-format validity check the serving tests and e15 gate use — a
    deliberately strict reader, not a general Prometheus client.
    """
    samples = {}
    types = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            meta = _METADATA_RE.match(line)
            if meta is None:
                raise ValueError("line %d: malformed comment %r"
                                 % (line_number, raw))
            if meta.group(1) == "TYPE":
                types[meta.group(2)] = (meta.group(3) or "").strip()
            continue
        sample = _SAMPLE_RE.match(line)
        if sample is None:
            raise ValueError("line %d: malformed sample %r" % (line_number, raw))
        labels = {}
        label_text = sample.group("labels")
        if label_text:
            spans = list(_LABEL_RE.finditer(label_text))
            matched = ",".join(m.group(0) for m in spans)
            if matched.replace(" ", "") != label_text.replace(" ", "").rstrip(","):
                raise ValueError("line %d: malformed labels %r"
                                 % (line_number, label_text))
            for m in spans:
                labels[m.group(1)] = m.group(2)
        value_text = sample.group("value")
        try:
            if value_text == "+Inf":
                value = float("inf")
            elif value_text == "-Inf":
                value = float("-inf")
            else:
                value = float(value_text)
        except ValueError:
            raise ValueError("line %d: malformed value %r"
                             % (line_number, value_text))
        samples.setdefault(sample.group("name"), []).append((labels, value))
    # Histogram coherence: cumulative bucket counts must be nondecreasing
    # in 'le' order and end with the +Inf bucket equal to _count.
    for name, kind in types.items():
        if kind != "histogram":
            continue
        series = samples.get(name + "_bucket", [])
        by_group = {}
        for labels, value in series:
            le = labels.get("le")
            if le is None:
                raise ValueError("histogram %s bucket without le label" % name)
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            bound = float("inf") if le == "+Inf" else float(le)
            by_group.setdefault(rest, []).append((bound, value))
        for rest, buckets in by_group.items():
            buckets.sort(key=lambda pair: pair[0])
            counts = [count for _bound, count in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    "histogram %s%s bucket counts decrease" % (name, dict(rest))
                )
            if not buckets or buckets[-1][0] != float("inf"):
                raise ValueError("histogram %s is missing its +Inf bucket" % name)
    return samples


def render_prometheus(registry=None):
    """Module-level convenience over the resolved registry."""
    return (registry or get_registry()).render_prometheus()


# -- default registry resolution ------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_REGISTRY_VAR = contextvars.ContextVar("repro_metrics_registry", default=None)


def get_registry():
    """The active registry: contextvar override first, then the process
    default.  Background threads started before an override never see it
    (contextvars do not propagate into already-running threads), which is
    exactly right: the serving writer thread reports to the process
    registry the HTTP ``/metrics`` endpoint scrapes."""
    registry = _REGISTRY_VAR.get()
    return _DEFAULT_REGISTRY if registry is None else registry


def set_default_registry(registry):
    """Swap the process-global default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry):
    """Scope ``get_registry()`` to ``registry`` inside the with-block."""
    token = _REGISTRY_VAR.set(registry)
    try:
        yield registry
    finally:
        _REGISTRY_VAR.reset(token)
