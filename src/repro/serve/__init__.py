"""Concurrent query serving over maintained deductive-database sessions.

The paper's thesis is that modularly stratified programs admit *efficient
query answering*; :mod:`repro.db` delivers that for one caller.  This
package composes the repository's machinery — frozen
:class:`~repro.engine.seminaive.relation.RelationStore` snapshots and
:class:`~repro.engine.seminaive.relation.OverlayStore` layers, intern-table
pin providers, incremental maintenance — into a many-readers/one-writer
serving layer with **snapshot isolation**:

* :class:`~repro.serve.session.ServingSession` wraps a
  :class:`~repro.db.session.DatabaseSession`; a single writer thread drains
  a bounded update queue, coalesces queued inserts/retracts into one
  maintenance pass per batch, and publishes each result as an immutable
  **epoch** (:mod:`repro.serve.epochs`).  Readers pin an epoch and see that
  model — never a half-applied batch — while the writer keeps publishing.
* :mod:`repro.serve.server` exposes the session over an asyncio HTTP front
  end (query/ask/insert/retract/stats) with per-request timeouts and
  backpressure (bounded write queue → 503 + ``Retry-After``).
* ``python -m repro.serve`` (:mod:`repro.serve.cli`) gives daemon
  ergonomics: ``serve`` / ``query`` / ``load`` / ``stats`` subcommands.

Quickstart::

    from repro.serve import ServingSession

    serving = ServingSession('''
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        e(a, b). e(b, c).
    ''')
    future = serving.submit(inserts=["e(c, d)."])   # queued for the writer
    future.result()                                  # wait for the batch
    with serving.reader() as reader:                 # pinned snapshot
        print(reader.query("tc(a, X)"))
    serving.close()
"""

from repro.serve.epochs import Epoch, EpochManager
from repro.serve.session import (
    ReaderSession,
    ServeError,
    ServingClosed,
    ServingSession,
    WriteQueueFull,
)

__all__ = [
    "Epoch",
    "EpochManager",
    "ReaderSession",
    "ServeError",
    "ServingClosed",
    "ServingSession",
    "WriteQueueFull",
]
