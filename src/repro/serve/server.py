"""Asyncio HTTP front end for a :class:`~repro.serve.session.ServingSession`.

A deliberately small HTTP/1.1 server on the standard library only — enough
protocol for clients, curl and the bundled CLI, not a framework.  Reads
are dispatched to a thread pool (queries pin an epoch and run the store
probes off the event loop), writes go through the serving session's
bounded queue, and every request carries a server-side timeout.

Endpoints (JSON in, JSON out):

``POST /query``    ``{"query": "tc(a, X)"}``
    → ``{"answers": [...], "count": n, "epoch": eid}``
``POST /ask``      ``{"atom": "tc(a, b)"}`` → ``{"result": true}``
``POST /value``    ``{"atom": ...}`` → ``{"value": "true"|"undefined"|"false"}``
``POST /insert``   ``{"facts": "e(a, b). e(b, c)."[, "wait": false]}``
``POST /retract``  ``{"facts": ...[, "wait": false]}``
    → the batch's update summary, or ``{"queued": true}`` with
    ``"wait": false`` (fire-and-forget; parse errors surface in stats only)
``GET  /explain``  ``?q=tc(a,%20b)`` → the atom's derivation tree
    (:meth:`~repro.db.session.DatabaseSession.explain`, computed on the
    writer thread)
``GET  /metrics``  the process metrics registry in Prometheus text
    exposition format (request-latency histograms, writer-queue gauges,
    session maintenance metrics)
``GET  /stats``    serving-layer statistics, per-endpoint request counts,
    and the slow-query log
``GET  /healthz``  liveness probe: ``503`` once the writer thread has
    died or the serving session is closed — not an unconditional 200

Error mapping: a full write queue answers ``503`` with a ``Retry-After``
header (backpressure is the client's problem to pace, not the server's to
buffer); a request exceeding the per-request timeout answers ``504``;
malformed input answers ``400``.

Every request lands in the ``"http"`` metric family
(``repro_http_request_seconds`` histogram, ``repro_http_requests``
counters labelled by endpoint and status), and requests slower than
``slow_query_ms`` are kept in a bounded in-memory slow-query log (also
emitted as ``slow_request`` trace events when a tracer is installed).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import urllib.parse

from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import get_registry
from repro.obs.trace import current_tracer
from repro.serve.session import ServingClosed, ServingSession, WriteQueueFull

#: Refuse request bodies beyond this size (1 MiB) — the write path is for
#: update streams, not bulk loads; use the CLI ``load`` command for those.
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _HttpError(Exception):
    """A response-shaped error raised by request handling."""

    def __init__(self, status, message, headers=()):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = tuple(headers)


class ServeServer:
    """The HTTP server bound to one serving session.

    Args:
        serving: the :class:`ServingSession` to expose.
        host / port: bind address (port 0 picks a free port; see
            :attr:`address` after :meth:`start`).
        request_timeout: per-request budget in seconds — covers reading
            the request, running the query / waiting for the write batch,
            everything up to the response.
        readers: thread-pool width for query execution.
        slow_query_ms: requests slower than this (milliseconds) land in
            the slow-query log (``/stats``) and, when a tracer is
            installed, emit ``slow_request`` trace events.
    """

    #: Endpoints that get their own metric label; anything else (404
    #: scans, typos) collapses into ``"other"`` so label cardinality
    #: stays bounded no matter what clients throw at the port.
    ENDPOINTS = frozenset((
        "/query", "/ask", "/value", "/insert", "/retract",
        "/explain", "/metrics", "/stats", "/healthz",
    ))

    #: Slow-query log depth — a diagnostic window, not an archive.
    SLOW_LOG_CAPACITY = 64

    def __init__(self, serving, host="127.0.0.1", port=8273,
                 request_timeout=10.0, readers=8, slow_query_ms=500.0):
        self._serving = serving
        self._host = host
        self._port = port
        self._timeout = request_timeout
        self._slow_query_ms = slow_query_ms
        self._executor = ThreadPoolExecutor(
            max_workers=readers, thread_name_prefix="repro-serve-reader",
        )
        self._server = None
        self._requests = 0
        self._requests_by_endpoint = {}
        self._slow_log = deque(maxlen=self.SLOW_LOG_CAPACITY)

    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`)."""
        sockets = self._server.sockets if self._server is not None else None
        if not sockets:
            return (self._host, self._port)
        return sockets[0].getsockname()[:2]

    async def start(self):
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port,
        )
        return self

    async def serve_forever(self):
        """Run until cancelled (:meth:`start` must have completed)."""
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        """Stop accepting connections and release the reader pool (the
        serving session itself is left to its owner)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), self._timeout,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection; just drop it
                except _HttpError as error:
                    await self._respond_error(writer, error, close=True)
                    break
                if request is None:
                    break  # client closed
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                endpoint = path.partition("?")[0]
                if endpoint not in self.ENDPOINTS:
                    endpoint = "other"
                started = time.perf_counter()
                try:
                    status, payload = await asyncio.wait_for(
                        self._dispatch(method, path, body),
                        self._timeout,
                    )
                except asyncio.TimeoutError:
                    self._observe(endpoint, 504, started, method, path)
                    await self._respond_error(writer, _HttpError(
                        504, "request exceeded %.1fs" % self._timeout,
                    ), close=True)
                    break
                except _HttpError as error:
                    self._observe(endpoint, error.status, started,
                                  method, path)
                    await self._respond_error(writer, error,
                                              close=not keep_alive)
                    if not keep_alive:
                        break
                    continue
                except Exception as error:  # surface, don't kill the server
                    self._observe(endpoint, 500, started, method, path)
                    await self._respond_error(writer, _HttpError(
                        500, "%s: %s" % (type(error).__name__, error),
                    ), close=not keep_alive)
                    if not keep_alive:
                        break
                    continue
                self._observe(endpoint, status, started, method, path)
                await self._respond(writer, status, payload,
                                    close=not keep_alive)
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one request; ``None`` on a cleanly closed connection."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                break
            try:
                name, value = line.decode("latin-1").split(":", 1)
            except ValueError:
                raise _HttpError(400, "malformed header")
            headers[name.strip().lower()] = value.strip().lower()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY:
            raise _HttpError(413, "body exceeds %d bytes" % MAX_BODY)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # -- observation ---------------------------------------------------------

    def _observe(self, endpoint, status, started, method, path):
        """Record one finished request: counters, latency, slow log."""
        duration = time.perf_counter() - started
        self._requests += 1
        self._requests_by_endpoint[endpoint] = (
            self._requests_by_endpoint.get(endpoint, 0) + 1
        )
        registry = get_registry()
        registry.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by endpoint.",
            family="http", labels={"endpoint": endpoint},
        ).observe(duration)
        registry.counter(
            "repro_http_requests",
            "HTTP requests served, by endpoint and status.",
            family="http",
            labels={"endpoint": endpoint, "status": str(status)},
        ).inc()
        if duration * 1000.0 >= self._slow_query_ms:
            entry = {
                "method": method, "path": path, "status": status,
                "duration_ms": round(duration * 1000.0, 3),
                "ts": time.time(),
            }
            self._slow_log.append(entry)
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit("slow_request", **entry)

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, method, path, body):
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET")
            alive = self._serving.writer_alive
            closed = self._serving.closed
            ok = alive and not closed
            return 200 if ok else 503, {
                "ok": ok,
                "writer_alive": alive,
                "closed": closed,
                "pending": self._serving.pending(),
            }
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return 200, get_registry().render_prometheus()
        if path == "/explain":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return await self._do_explain(query)
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET")
            stats = dict(self._serving.stats())
            stats["requests"] = self._requests
            stats["requests_by_endpoint"] = dict(self._requests_by_endpoint)
            stats["slow_query_ms"] = self._slow_query_ms
            stats["slow_queries"] = list(self._slow_log)
            return 200, stats
        if path in ("/query", "/ask", "/value", "/insert", "/retract"):
            if method != "POST":
                raise _HttpError(405, "use POST")
            payload = self._parse_json(body)
            if path == "/query":
                return await self._do_query(payload)
            if path == "/ask":
                return await self._do_ask(payload, "ask")
            if path == "/value":
                return await self._do_ask(payload, "value")
            return await self._do_write(payload, insert=(path == "/insert"))
        raise _HttpError(404, "no such endpoint: %s" % path)

    @staticmethod
    def _parse_json(body):
        if not body:
            raise _HttpError(400, "JSON body required")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _HttpError(400, "bad JSON: %s" % error)
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    def _field(self, payload, name):
        value = payload.get(name)
        if not isinstance(value, str) or not value.strip():
            raise _HttpError(400, "field %r (a nonempty string) required" % name)
        return value

    async def _in_reader(self, fn):
        """Run a blocking read on the pool (never on the event loop)."""
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(self._executor, fn)

    async def _do_query(self, payload):
        text = self._field(payload, "query")

        def run():
            with self._serving.reader() as reader:
                answers = reader.query(text)
                return reader.epoch.eid, [str(answer) for answer in answers]

        try:
            eid, answers = await self._in_reader(run)
        except ValueError as error:
            raise _HttpError(400, str(error))
        return 200, {"answers": answers, "count": len(answers), "epoch": eid}

    async def _do_ask(self, payload, kind):
        text = self._field(payload, "atom")

        def run():
            with self._serving.reader() as reader:
                method = reader.ask if kind == "ask" else reader.value
                return reader.epoch.eid, method(text)

        try:
            eid, result = await self._in_reader(run)
        except ValueError as error:
            raise _HttpError(400, str(error))
        key = "result" if kind == "ask" else "value"
        return 200, {key: result, "epoch": eid}

    async def _do_explain(self, query):
        params = urllib.parse.parse_qs(query)
        values = params.get("q") or []
        if not values or not values[0].strip():
            raise _HttpError(400, "query parameter 'q' (an atom) required")
        text = values[0]
        try:
            future = self._serving.submit_explain(text)
        except ServingClosed as error:
            raise _HttpError(503, str(error))
        try:
            tree = await asyncio.wrap_future(future)
        except Exception as error:
            raise _HttpError(400, "%s: %s" % (type(error).__name__, error))
        return 200, {"atom": text, "explanation": tree.to_dict()}

    async def _do_write(self, payload, insert):
        facts = self._field(payload, "facts")
        wait = payload.get("wait", True)
        try:
            if insert:
                future = self._serving.submit(inserts=facts)
            else:
                future = self._serving.submit(retracts=facts)
        except WriteQueueFull as error:
            raise _HttpError(503, str(error), headers=(
                ("Retry-After", "%.3f" % error.retry_after),
            ))
        except ServingClosed as error:
            raise _HttpError(503, str(error))
        if not wait:
            return 200, {"queued": True, "pending": self._serving.pending()}
        # The future resolves on the writer thread; wrap it for the loop.
        try:
            summary = await asyncio.wrap_future(future)
        except Exception as error:
            raise _HttpError(400, "%s: %s" % (type(error).__name__, error))
        return 200, {
            "inserted": summary.inserted,
            "retracted": summary.retracted,
            "added": len(summary.added),
            "removed": len(summary.removed),
            "strata_touched": summary.strata_touched,
            "mode": summary.mode,
            "undefined_added": len(summary.undefined_added),
            "undefined_removed": len(summary.undefined_removed),
        }

    # -- responses -----------------------------------------------------------

    async def _respond(self, writer, status, payload, close,
                       extra_headers=()):
        if isinstance(payload, str):
            # Pre-rendered text body (the /metrics exposition format).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            "HTTP/1.1 %d %s" % (status, _REASONS.get(status, "Unknown")),
            "Content-Type: %s" % content_type,
            "Content-Length: %d" % len(body),
            "Connection: %s" % ("close" if close else "keep-alive"),
        ]
        for name, value in extra_headers:
            lines.append("%s: %s" % (name, value))
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _respond_error(self, writer, error, close):
        await self._respond(
            writer, error.status, {"error": error.message},
            close=close, extra_headers=error.headers,
        )


async def serve(serving, host="127.0.0.1", port=8273, request_timeout=10.0,
                readers=8, slow_query_ms=500.0, ready=None):
    """Run a server for ``serving`` until cancelled or signalled.

    SIGTERM / SIGINT trigger a graceful shutdown: the listening socket
    closes first (intake stops), then the caller — :func:`run` — drains
    the write queue and, for a durable session, takes a final checkpoint
    and closes the WAL.  Handler installation is best-effort (skipped off
    the main thread, as in the test harness, where cancellation is the
    shutdown path instead).

    ``ready``, when given, is a callable invoked with the
    :class:`ServeServer` once it is accepting connections (used by the CLI
    to print the bound address, and by tests to learn the port)."""
    server = ServeServer(serving, host=host, port=port,
                         request_timeout=request_timeout, readers=readers,
                         slow_query_ms=slow_query_ms)
    await server.start()
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, ValueError, RuntimeError, OSError):
            pass  # non-main thread or unsupported platform
    forever = asyncio.ensure_future(server.serve_forever())
    stopper = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            (forever, stopper), return_when=asyncio.FIRST_COMPLETED,
        )
    finally:
        for task in (forever, stopper):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for signum in installed:
            try:
                loop.remove_signal_handler(signum)
            except (ValueError, RuntimeError, OSError):
                pass
        await server.stop()


def run(program, host="127.0.0.1", port=8273, request_timeout=10.0,
        readers=8, slow_query_ms=500.0, ready=None, **serving_kwargs):
    """Blocking convenience: build a :class:`ServingSession` for
    ``program``, serve it until interrupted or signalled, then shut both
    down cleanly — queued writes drain, and a durable session gets its
    final checkpoint and a clean WAL close."""
    serving = (program if isinstance(program, ServingSession)
               else ServingSession(program, **serving_kwargs))
    try:
        asyncio.run(serve(serving, host=host, port=port,
                          request_timeout=request_timeout, readers=readers,
                          slow_query_ms=slow_query_ms, ready=ready))
    except KeyboardInterrupt:
        pass
    finally:
        serving.close()
