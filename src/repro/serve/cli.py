"""Command-line interface for the serving subsystem.

``python -m repro.serve`` wraps the HTTP server and a tiny stdlib client:

``serve PROGRAM``
    Load a program file and serve it over HTTP until interrupted::

        python -m repro.serve serve examples/tc.hilog --port 8273

``query TEXT`` / ``ask ATOM``
    Ask a running server::

        python -m repro.serve query 'tc(a, X)' --port 8273

``load FILE``
    Stream a file of facts into a running server (batched inserts)::

        python -m repro.serve load extra_edges.hilog --port 8273

``explain ATOM``
    Ask a running server for a derivation tree::

        python -m repro.serve explain 'tc(a, c)' --port 8273

``stats``
    Print a running server's statistics as JSON.

``lint FILE``
    Statically analyze program files without serving them — a passthrough
    to ``python -m repro.lint`` (same flags, same exit codes)::

        python -m repro.serve lint examples/tc.hilog --format json

``serve`` accepts ``--trace-log PATH`` (append structured evaluation
events as JSON lines while serving), ``--slow-query-ms N`` (threshold
for the server's slow-query log) and ``--validate MODE`` (run the
:mod:`repro.lint` static analyzer over the program before serving:
``warn`` — the default — prints the report and serves anyway, ``strict``
refuses to start a server on a program with lint *errors*, ``off``
skips the analyzer).  With ``--data-dir DIR`` the served
session is durable: updates are write-ahead logged, snapshots checkpoint
the model (``--checkpoint-every N``, ``--fsync always|batch|off``), and
restarting with the same directory recovers the exact pre-crash state —
the program argument is then optional, the directory's persisted program
wins.  SIGTERM/SIGINT shut the server down gracefully: intake stops, the
write queue drains, and a durable session takes a final checkpoint before
the WAL closes.

The client commands talk plain HTTP (:mod:`urllib.request`), so they work
against any instance of :mod:`repro.serve.server`, local or not.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def _url(args, path):
    return "http://%s:%d%s" % (args.host, args.port, path)


def _request(args, path, payload=None, retries=5):
    """One JSON request; retries on 503 backpressure with the server's
    suggested delay."""
    attempt = 0
    while True:
        request = urllib.request.Request(
            _url(args, path),
            data=None if payload is None else
            json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if payload is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=args.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            if error.code == 503 and attempt < retries:
                attempt += 1
                delay = float(error.headers.get("Retry-After", 0.05) or 0.05)
                time.sleep(delay)
                continue
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body
            raise SystemExit("server error %d: %s" % (error.code, message))
        except urllib.error.URLError as error:
            raise SystemExit(
                "cannot reach %s: %s" % (_url(args, path), error.reason)
            )


def _cmd_serve(args):
    from repro.hilog.errors import DiagnosticError
    from repro.serve.server import run
    from repro.serve.session import ServingSession

    program = None
    source = args.program
    if args.data_dir:
        from repro.db.session import DatabaseSession
        from repro.durable import is_initialized

        if is_initialized(args.data_dir):
            # Resume: the directory's persisted program wins; recover from
            # the newest snapshot + WAL tail and serve the live session.
            try:
                session = DatabaseSession.open(
                    args.data_dir, strategy=args.strategy,
                    intern_gc=args.intern_gc, fsync=args.fsync,
                    checkpoint_every=args.checkpoint_every,
                    validate=args.validate,
                )
            except DiagnosticError as error:
                raise SystemExit(
                    "refusing to serve %s under --validate strict:\n%s"
                    % (args.data_dir, error.diagnostics.to_text())
                )
            recovery = session.stats()["durability"]
            print("recovered %s (snapshot txn %s, %d txn(s) replayed)"
                  % (args.data_dir, recovery["snapshot_txn"],
                     recovery["replayed_txns"]), flush=True)
            program = ServingSession(session, max_pending=args.max_pending,
                                     max_batch=args.max_batch)
            source = args.data_dir
        elif args.program is None:
            raise SystemExit(
                "%r is not an initialized data directory; a program file "
                "is required to create it" % args.data_dir
            )
    if args.program is None and program is None:
        raise SystemExit("a program file is required without --data-dir")
    if program is None:
        with open(args.program, "r") as handle:
            program = handle.read()

    def ready(server):
        host, port = server.address
        print("serving %s on http://%s:%d (Ctrl-C to stop)"
              % (source, host, port), flush=True)

    tracer = None
    if args.trace_log:
        from repro.obs.trace import EvaluationTracer, set_global_tracer

        # Global (not contextvar) so the writer thread's maintenance
        # passes land in the same log as the event loop's requests.
        tracer = EvaluationTracer(sink=args.trace_log)
        set_global_tracer(tracer)
    serving_kwargs = {}
    if not isinstance(program, ServingSession):
        serving_kwargs.update(strategy=args.strategy,
                              intern_gc=args.intern_gc,
                              validate=args.validate)
        if args.data_dir:
            serving_kwargs.update(path=args.data_dir, fsync=args.fsync,
                                  checkpoint_every=args.checkpoint_every)
    try:
        run(program, host=args.host, port=args.port,
            request_timeout=args.timeout, ready=ready,
            slow_query_ms=args.slow_query_ms,
            max_pending=args.max_pending, max_batch=args.max_batch,
            **serving_kwargs)
    except DiagnosticError as error:
        raise SystemExit(
            "refusing to serve %s under --validate strict:\n%s"
            % (source, error.diagnostics.to_text())
        )
    finally:
        if tracer is not None:
            from repro.obs.trace import set_global_tracer

            set_global_tracer(None)
            tracer.close()
    print("server stopped")
    return 0


def _cmd_query(args):
    result = _request(args, "/query", {"query": args.text})
    for answer in result["answers"]:
        print(answer)
    print("%% %d answer(s) at epoch %d" % (result["count"], result["epoch"]),
          file=sys.stderr)
    return 0


def _cmd_ask(args):
    result = _request(args, "/value", {"atom": args.atom})
    print(result["value"])
    return 0 if result["value"] == "true" else 1


def _cmd_load(args):
    with open(args.facts, "r") as handle:
        text = handle.read()
    # One statement per sentence; ship in batches so a long file neither
    # exceeds the body cap nor lands as one giant maintenance pass.
    sentences = [part.strip() + "." for part in text.split(".") if part.strip()]
    total = 0
    for start in range(0, len(sentences), args.batch):
        chunk = " ".join(sentences[start:start + args.batch])
        result = _request(args, "/insert", {"facts": chunk})
        total += result.get("inserted", 0)
    print("loaded %d new fact(s) from %s" % (total, args.facts))
    return 0


def _cmd_explain(args):
    import urllib.parse

    result = _request(args, "/explain?q=" + urllib.parse.quote(args.atom))
    print(json.dumps(result["explanation"], indent=2))
    return 0


def _cmd_stats(args):
    print(json.dumps(_request(args, "/stats"), indent=2, sort_keys=True))
    return 0


def _cmd_lint(args):
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a HiLog deductive database over HTTP, or talk "
                    "to a running server.",
    )
    # Shared connection options, accepted after any subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--host", default="127.0.0.1")
    common.add_argument("--port", type=int, default=8273)
    common.add_argument("--timeout", type=float, default=10.0,
                        help="request timeout in seconds")
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", parents=[common],
                                    help="run the HTTP server")
    serve_cmd.add_argument("program", nargs="?", default=None,
                           help="program file to load and serve (optional "
                                "when resuming an initialized --data-dir)")
    serve_cmd.add_argument("--data-dir", default=None, metavar="DIR",
                           help="durable data directory: WAL + snapshot "
                                "checkpoints; resumes the directory when it "
                                "is already initialized")
    serve_cmd.add_argument("--fsync", default="batch",
                           choices=("always", "batch", "off"),
                           help="WAL fsync policy (with --data-dir)")
    serve_cmd.add_argument("--checkpoint-every", type=int, default=None,
                           metavar="N",
                           help="snapshot every N applied transactions "
                                "(with --data-dir)")
    serve_cmd.add_argument("--max-pending", type=int, default=1024,
                           help="write-queue bound (backpressure beyond it)")
    serve_cmd.add_argument("--max-batch", type=int, default=64,
                           help="max ops coalesced per maintenance pass")
    serve_cmd.add_argument("--strategy", default="auto",
                           choices=("auto", "incremental", "wellfounded",
                                    "recompute"))
    serve_cmd.add_argument("--intern-gc", type=int, default=None,
                           help="sweep intern tables every N updates")
    serve_cmd.add_argument("--trace-log", default=None, metavar="PATH",
                           help="append evaluation trace events to this "
                                "JSONL file while serving")
    serve_cmd.add_argument("--slow-query-ms", type=float, default=500.0,
                           help="log requests slower than this many "
                                "milliseconds")
    serve_cmd.add_argument("--validate", default="warn",
                           choices=("strict", "warn", "off"),
                           help="lint the program before serving: 'warn' "
                                "(default) reports and serves anyway, "
                                "'strict' refuses to start on lint errors, "
                                "'off' skips the linter")
    serve_cmd.set_defaults(run=_cmd_serve)

    query_cmd = commands.add_parser("query", parents=[common],
                                    help="query a running server")
    query_cmd.add_argument("text", help="query text, e.g. 'tc(a, X)'")
    query_cmd.set_defaults(run=_cmd_query)

    ask_cmd = commands.add_parser("ask", parents=[common],
                                  help="three-valued ground check")
    ask_cmd.add_argument("atom", help="ground atom, e.g. 'tc(a, b)'")
    ask_cmd.set_defaults(run=_cmd_ask)

    load_cmd = commands.add_parser("load", parents=[common],
                                   help="stream facts into a server")
    load_cmd.add_argument("facts", help="file of facts to insert")
    load_cmd.add_argument("--batch", type=int, default=256,
                          help="facts per request")
    load_cmd.set_defaults(run=_cmd_load)

    explain_cmd = commands.add_parser("explain", parents=[common],
                                      help="derivation tree for a true "
                                           "atom (or a negation-loop "
                                           "witness for an undefined one)")
    explain_cmd.add_argument("atom", help="ground atom, e.g. 'tc(a, b)'")
    explain_cmd.set_defaults(run=_cmd_explain)

    stats_cmd = commands.add_parser("stats", parents=[common],
                                    help="print server statistics")
    stats_cmd.set_defaults(run=_cmd_stats)

    lint_cmd = commands.add_parser(
        "lint", add_help=False,
        help="statically analyze program files (python -m repro.lint)")
    lint_cmd.add_argument("lint_args", nargs=argparse.REMAINDER,
                          help="arguments for python -m repro.lint")
    lint_cmd.set_defaults(run=_cmd_lint)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
