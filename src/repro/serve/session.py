"""Snapshot-isolated serving sessions: many readers, one writer.

A :class:`ServingSession` wraps a :class:`~repro.db.session.DatabaseSession`
for concurrent use.  The wrapped session stays single-threaded — exactly
one **writer thread**, owned by the serving session, ever touches it:

* callers *submit* inserts/retracts (:meth:`ServingSession.submit`); the
  ops land in a bounded queue and resolve a
  :class:`concurrent.futures.Future` when their batch has been applied;
* the writer drains the queue, **coalesces** consecutive queued ops into
  one merged batch (last operation per atom wins — one maintenance pass
  absorbs any number of queued updates), applies it, and publishes the
  result as a new immutable epoch through the
  :class:`~repro.serve.epochs.EpochManager`;
* readers open a :class:`ReaderSession` (:meth:`ServingSession.reader`),
  which pins the current epoch: every query inside the block is answered
  from that one published model, however many batches the writer applies
  meanwhile — snapshot isolation without blocking the writer, and without
  the writer blocking readers.

Backpressure is explicit: when the queue holds ``max_pending`` ops,
:meth:`submit` raises :class:`WriteQueueFull` (the HTTP front end maps it
to ``503`` + ``Retry-After``) instead of buffering unboundedly.

Threading contract:

* The wrapped session must not be updated behind the serving session's
  back — all writes go through :meth:`submit` (or its
  :meth:`insert`/:meth:`retract` conveniences).
* Intern **generations** are writer-thread-only (the generation stack is
  global); reader threads parse queries at top level, which is safe —
  constants already in the model resolve to their canonical pinned terms,
  and unknown constants miss either way.  :meth:`collect` is therefore
  routed through the writer queue too, so a sweep never races a batch.
* Term eviction is safe under pinned readers: the epoch manager's pin
  provider keeps every atom reachable from any live epoch interned.
"""

from __future__ import annotations

import threading
import weakref

from collections import deque
from concurrent.futures import Future

from repro.db.session import DatabaseSession
from repro.obs.metrics import COUNT_BUCKETS, get_registry
from repro.hilog.errors import HiLogError
from repro.hilog.parser import parse_query, parse_term
from repro.hilog.program import Literal
from repro.hilog.terms import Term, intern_generation
from repro.core.magic.evaluate import answer_from_store
from repro.serve.epochs import EpochManager


class ServeError(HiLogError):
    """Base class for serving-layer errors."""


class WriteQueueFull(ServeError):
    """The bounded write queue is at capacity — retry after a short delay
    (the HTTP front end surfaces :attr:`retry_after` as ``Retry-After``)."""

    def __init__(self, pending, retry_after=0.05):
        super().__init__(
            "write queue full (%d ops pending); retry in %.0f ms"
            % (pending, retry_after * 1000.0)
        )
        self.pending = pending
        self.retry_after = retry_after


class ServingClosed(ServeError):
    """The serving session has been closed; no further ops are accepted."""


class _Op:
    """One queued writer operation."""

    __slots__ = ("kind", "inserts", "retracts", "future")

    def __init__(self, kind, inserts=(), retracts=()):
        # "update" | "collect" | "barrier" | "stats" | "explain" |
        # "checkpoint" (explain ops carry their query atom in the
        # ``inserts`` slot).
        self.kind = kind
        self.inserts = inserts
        self.retracts = retracts
        self.future = Future()

    # A waiter may cancel the future (e.g. an HTTP request timing out while
    # its op is still queued); the op itself still runs — resolution just
    # has nobody listening, and must not blow up the writer thread.

    def resolve(self, result):
        if not self.future.cancelled():
            try:
                self.future.set_result(result)
            except Exception:
                pass

    def fail(self, error):
        if not self.future.cancelled():
            try:
                self.future.set_exception(error)
            except Exception:
                pass


class ReaderSession:
    """A pinned read view over one published epoch.

    Every query answers from the epoch's immutable store — concurrent
    writer batches are invisible until a new reader is opened.  Usable as
    a context manager (the recommended form); :meth:`close` releases the
    pin explicitly otherwise.  Closing is idempotent; reading after close
    raises :class:`ServeError`.
    """

    __slots__ = ("_manager", "_epoch")

    def __init__(self, manager):
        self._manager = manager
        self._epoch = manager.acquire()

    @property
    def epoch(self):
        """The pinned :class:`~repro.serve.epochs.Epoch` (``None`` after
        close)."""
        return self._epoch

    def _store(self):
        epoch = self._epoch
        if epoch is None:
            raise ServeError("reader session is closed")
        return epoch.store

    def __len__(self):
        return len(self._store())

    def __contains__(self, atom):
        return atom in self._store()

    def query(self, query):
        """Answer a query against the pinned epoch — the exact
        session-backed path (:func:`~repro.core.magic.evaluate.answer_from_store`)
        over the epoch's store."""
        store = self._store()
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, Term):
            query = (Literal(query),)
        else:
            query = tuple(query)
        if not query:
            raise ValueError("empty query")
        return answer_from_store(store, query).answers

    def ask(self, atom):
        """Whether a ground atom is *true* in the pinned epoch."""
        store = self._store()
        if isinstance(atom, str):
            atom = parse_term(atom)
        if not atom.is_ground():
            raise ValueError("ask() needs a ground atom, got %r" % (atom,))
        return atom in store

    def value(self, atom):
        """Three-valued verdict in the pinned epoch: ``"true"``,
        ``"undefined"`` or ``"false"``."""
        epoch = self._epoch
        if epoch is None:
            raise ServeError("reader session is closed")
        if isinstance(atom, str):
            atom = parse_term(atom)
        if not atom.is_ground():
            raise ValueError("value() needs a ground atom, got %r" % (atom,))
        if atom in epoch.store:
            return "true"
        if atom in epoch.undefined:
            return "undefined"
        return "false"

    def facts(self, name, arity):
        """The pinned extension of one predicate indicator."""
        store = self._store()
        if isinstance(name, str):
            name = parse_term(name)
        return tuple(store.facts(name, arity))

    def close(self):
        """Release the epoch pin (idempotent)."""
        epoch, self._epoch = self._epoch, None
        if epoch is not None:
            self._manager.release(epoch)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


class ServingSession:
    """A concurrently served deductive database.

    Args:
        program: program text, a :class:`~repro.hilog.program.Program`, or
            an already-built :class:`~repro.db.session.DatabaseSession` to
            take ownership of (it must not be updated externally afterwards).
        max_pending: write-queue bound; :meth:`submit` raises
            :class:`WriteQueueFull` beyond it.
        max_batch: most queued ops coalesced into one maintenance pass.
        rebase_ratio / rebase_min: epoch rebase policy
            (see :class:`~repro.serve.epochs.EpochManager`).
        session_kwargs: forwarded to :class:`DatabaseSession` when
            ``program`` is not already a session.
    """

    def __init__(self, program, max_pending=1024, max_batch=64,
                 rebase_ratio=0.5, rebase_min=256, **session_kwargs):
        if isinstance(program, DatabaseSession):
            if session_kwargs:
                raise ValueError(
                    "session_kwargs are only valid when constructing the "
                    "session here, not when wrapping an existing one"
                )
            self._session = program
        else:
            self._session = DatabaseSession(program, **session_kwargs)
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self._max_pending = max_pending
        self._max_batch = max_batch
        self._manager = EpochManager(
            self._session.store.snapshot,
            rebase_ratio=rebase_ratio, rebase_min=rebase_min,
        )
        self._publish_hooks = []
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "applied_ops": 0,
            "failed_ops": 0,
            "batches": 0,
            "collects": 0,
        }
        self._cond = threading.Condition()
        self._pending = deque()
        self._closing = False
        self._resume = threading.Event()
        self._resume.set()
        # The initial epoch reflects the freshly materialized model; from
        # here on every applied batch publishes a successor via the
        # session's update-listener hook.
        self._manager.publish_base(
            undefined=self._session.undefined, version=0,
        )
        self._session.add_update_listener(self._on_update)
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True,
        )
        self._writer.start()
        self._register_gauges()

    def _register_gauges(self):
        """Point the process-wide serving gauges at this session.

        Callback gauges close over a weak reference, so the registry (a
        process-global) never keeps a closed serving session alive; a new
        session re-registers and simply repoints the callbacks."""
        ref = weakref.ref(self)
        registry = get_registry()

        def _pending():
            serving = ref()
            return serving.pending() if serving is not None else 0

        def _writer_alive():
            serving = ref()
            return 1 if serving is not None and serving.writer_alive else 0

        def _live_epochs():
            serving = ref()
            if serving is None:
                return 0
            return serving._manager.stats().get("live_epochs", 0)

        registry.gauge(
            "repro_serve_pending_ops", "Write-queue depth",
            family="serve", callback=_pending,
        )
        registry.gauge(
            "repro_serve_writer_alive",
            "1 while the writer thread is running", family="serve",
            callback=_writer_alive,
        )
        registry.gauge(
            "repro_serve_live_epochs", "Epochs pinned by live readers",
            family="serve", callback=_live_epochs,
        )

    # -- write side ----------------------------------------------------------

    def submit(self, inserts=(), retracts=()):
        """Queue one update op; returns a :class:`~concurrent.futures.Future`
        resolving to the batch's :class:`~repro.db.session.UpdateSummary`
        (shared by every op coalesced into the same batch).  Facts are in
        any form :meth:`DatabaseSession.insert` accepts; parsing happens on
        the writer thread.  Raises :class:`WriteQueueFull` at capacity and
        :class:`ServingClosed` after :meth:`close`."""
        op = _Op("update", inserts, retracts)
        self._enqueue(op)
        return op.future

    def insert(self, facts, timeout=None):
        """Queue an insert and wait for its batch; returns the summary."""
        return self.submit(inserts=facts).result(timeout)

    def retract(self, facts, timeout=None):
        """Queue a retract and wait for its batch; returns the summary."""
        return self.submit(retracts=facts).result(timeout)

    def collect(self):
        """Queue an intern-table sweep (runs on the writer thread, so it
        never races a batch; live epochs are pinned throughout).  Returns a
        future resolving to the collection stats dict."""
        op = _Op("collect")
        self._enqueue(op)
        return op.future

    def flush(self, timeout=None):
        """Barrier: wait until every op queued before this call has been
        applied (or failed).  Returns the barrier's epoch id."""
        op = _Op("barrier")
        self._enqueue(op)
        return op.future.result(timeout)

    def session_stats(self, timeout=None):
        """The wrapped session's :meth:`~DatabaseSession.stats`, computed
        on the writer thread (consistent — never mid-batch)."""
        op = _Op("stats")
        self._enqueue(op)
        return op.future.result(timeout)

    def checkpoint(self, timeout=None):
        """Write a durability snapshot (a control op on the writer thread,
        so it never races a maintenance batch).  The serialized model
        comes from a **pinned frozen epoch** — the same immutable view
        readers use — so checkpointing a large model never blocks
        concurrent readers, and the epoch pin keeps every serialized atom
        interned should a collect land mid-write.  Returns the snapshot
        path; raises :class:`~repro.db.session.SessionError` when the
        wrapped session has no data directory."""
        op = _Op("checkpoint")
        self._enqueue(op)
        return op.future.result(timeout)

    def submit_explain(self, fact):
        """Queue a derivation-provenance explain
        (:meth:`DatabaseSession.explain`) and return its future.  Explain
        reads the *writer's* live model (EDB membership and the undefined
        partition are not epoch state), so it runs as a control op on the
        writer thread — never racing a batch, exempt from the queue bound
        like the other control ops."""
        op = _Op("explain", inserts=fact)
        self._enqueue(op)
        return op.future

    def explain(self, fact, timeout=None):
        """Blocking :meth:`submit_explain`; returns the
        :class:`~repro.obs.explain.Derivation` tree."""
        return self.submit_explain(fact).result(timeout)

    def _enqueue(self, op):
        with self._cond:
            if self._closing:
                raise ServingClosed("serving session is closed")
            # Only update ops count against (and are rejected by) the
            # write-queue bound: barriers, collects and stats are control
            # ops — rejecting a flush because the queue it is meant to
            # drain is full would be self-defeating.
            if op.kind == "update" and len(self._pending) >= self._max_pending:
                self._counters["rejected"] += 1
                raise WriteQueueFull(len(self._pending))
            self._pending.append(op)
            self._counters["submitted"] += 1
            self._cond.notify()

    def pause(self):
        """Suspend the writer after its current batch (queued ops
        accumulate; at capacity :meth:`submit` raises
        :class:`WriteQueueFull`).  For tests and drain/maintenance windows."""
        self._resume.clear()

    def resume(self):
        """Resume a paused writer."""
        self._resume.set()

    # -- writer thread -------------------------------------------------------

    def _writer_loop(self):
        while True:
            self._resume.wait()
            with self._cond:
                while not self._pending and not self._closing:
                    self._cond.wait()
                if not self._pending and self._closing:
                    return
                # A submit may have woken us out of the cond wait while
                # paused — re-check before draining (close() sets the
                # resume event, so a paused shutdown still drains).
                if not self._resume.is_set():
                    continue
                batch = []
                while self._pending and len(batch) < self._max_batch:
                    batch.append(self._pending.popleft())
            self._run_batch(batch)

    def _run_batch(self, batch):
        """Apply one drained batch: consecutive update ops merge into one
        maintenance pass; collect/barrier/stats ops are sequence points."""
        updates = []
        for op in batch:
            if op.kind == "update":
                updates.append(op)
                continue
            self._apply_updates(updates)
            updates = []
            self._run_special(op)
        self._apply_updates(updates)

    def _apply_updates(self, ops):
        if not ops:
            return
        # Coerce per op so one malformed payload fails its own future
        # without poisoning the ops batched alongside it.
        final = {}
        live = []
        for op in ops:
            try:
                with intern_generation():
                    staged = [
                        (atom, "insert")
                        for atom in self._session._coerce_facts(op.inserts)
                    ]
                    staged.extend(
                        (atom, "retract")
                        for atom in self._session._coerce_facts(op.retracts)
                    )
            except BaseException as error:
                self._counters["failed_ops"] += 1
                op.fail(error)
                continue
            final.update(staged)
            live.append(op)
        if not live:
            return
        inserts = [atom for atom, action in final.items() if action == "insert"]
        retracts = [atom for atom, action in final.items() if action == "retract"]
        try:
            with intern_generation():
                result = self._session._apply(inserts, retracts)
            self._session._after_update(result)
        except BaseException as error:
            self._counters["failed_ops"] += len(live)
            for op in live:
                op.fail(error)
            return
        self._counters["applied_ops"] += len(live)
        self._counters["batches"] += 1
        registry = get_registry()
        registry.counter(
            "repro_serve_batches", "Coalesced writer batches applied",
            family="serve",
        ).inc()
        registry.histogram(
            "repro_serve_batch_ops", "Submitted ops coalesced per batch",
            family="serve", buckets=COUNT_BUCKETS,
        ).observe(len(live))
        for op in live:
            op.resolve(result)

    def _run_special(self, op):
        try:
            if op.kind == "collect":
                result = self._session.collect()
                self._counters["collects"] += 1
            elif op.kind == "stats":
                result = self._session.stats()
            elif op.kind == "explain":
                result = self._session.explain(op.inserts)
            elif op.kind == "checkpoint":
                result = self._checkpoint_from_epoch()
            else:  # barrier
                current = self._manager.current
                result = current.eid if current is not None else None
        except BaseException as error:
            op.fail(error)
        else:
            op.resolve(result)

    def _checkpoint_from_epoch(self):
        """Serialize the durability snapshot from a pinned frozen epoch —
        the immutable view readers share — so a large checkpoint never
        holds up the read side, and the pin keeps every serialized atom
        interned if a collect lands mid-write."""
        epoch = self._manager.acquire()
        try:
            store = epoch.store if epoch is not None else None
            undefined = epoch.undefined if epoch is not None else None
            return self._session.checkpoint(store=store, undefined=undefined)
        finally:
            if epoch is not None:
                self._manager.release(epoch)

    def _on_update(self, summary):
        """Session update listener — the epoch publication hook.  Runs on
        the writer thread, after the batch's generation closed and before
        any automatic intern sweep."""
        epoch = self._manager.publish_delta(
            summary.added, summary.removed,
            undefined=self._session.undefined,
            version=self._counters["batches"] + 1,
        )
        for hook in tuple(self._publish_hooks):
            hook(epoch, summary)

    def add_publish_hook(self, hook):
        """Register ``hook(epoch, summary)`` to run (on the writer thread)
        after each epoch publication — test oracles and replication feeds."""
        self._publish_hooks.append(hook)
        return hook

    def remove_publish_hook(self, hook):
        """Unregister a publish hook (no-op when absent)."""
        try:
            self._publish_hooks.remove(hook)
        except ValueError:
            pass

    # -- read side -----------------------------------------------------------

    def reader(self):
        """Open a :class:`ReaderSession` pinned to the current epoch."""
        return ReaderSession(self._manager)

    def query(self, query):
        """One-shot query against the current epoch (pin, query, release)."""
        with self.reader() as reader:
            return reader.query(query)

    def ask(self, atom):
        """One-shot truth check against the current epoch."""
        with self.reader() as reader:
            return reader.ask(atom)

    def value(self, atom):
        """One-shot three-valued verdict against the current epoch."""
        with self.reader() as reader:
            return reader.value(atom)

    # -- introspection / lifecycle -------------------------------------------

    @property
    def session(self):
        """The wrapped :class:`DatabaseSession` (writer-thread property —
        do not update it directly; reads may observe a mid-batch state)."""
        return self._session

    @property
    def epochs(self):
        """The :class:`~repro.serve.epochs.EpochManager`."""
        return self._manager

    def pending(self):
        """Current write-queue depth."""
        with self._cond:
            return len(self._pending)

    @property
    def writer_alive(self):
        """Whether the writer thread is still running.  ``False`` after a
        clean :meth:`close` — but also when the writer died unexpectedly,
        which is what the HTTP ``/healthz`` probe exists to catch."""
        return self._writer.is_alive()

    def stats(self):
        """Serving-layer statistics: queue/batch counters, epoch manager
        counters, and the current epoch's size.  Safe to call from any
        thread (touches only immutable epochs and lock-guarded counters);
        see :meth:`session_stats` for the wrapped session's own view."""
        with self._cond:
            info = dict(self._counters)
            info["pending"] = len(self._pending)
            info["max_pending"] = self._max_pending
            info["max_batch"] = self._max_batch
            info["closed"] = self._closing
        info["writer_alive"] = self.writer_alive
        info["epochs"] = self._manager.stats()
        current = self._manager.current
        info["facts"] = len(current) if current is not None else 0
        return info

    def close(self, timeout=None):
        """Stop accepting ops, drain the queue, stop the writer thread and
        retire every epoch.  Idempotent.  Ops still queued when the writer
        exits (only possible when ``timeout`` expires first) fail with
        :class:`ServingClosed`."""
        with self._cond:
            if self._closing:
                self._cond.notify_all()
            else:
                self._closing = True
                self._cond.notify_all()
        self._resume.set()
        self._writer.join(timeout)
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
        for op in leftovers:
            op.fail(ServingClosed("serving session closed before this op ran"))
        self._session.remove_update_listener(self._on_update)
        # A durable wrapped session gets its final checkpoint and a clean
        # WAL close; a no-op for plain in-memory sessions.
        self._session.close()
        self._manager.close()

    @property
    def closed(self):
        with self._cond:
            return self._closing

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False
