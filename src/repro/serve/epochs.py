"""Immutable reader epochs over a maintained deductive database.

One **epoch** is one published, never-mutated view of the maintained
model: a frozen :class:`~repro.engine.seminaive.relation.RelationStore`
snapshot, or an :class:`~repro.engine.seminaive.relation.OverlayStore`
layering the net diff of one or more update batches over such a snapshot.
The :class:`EpochManager` is the single point of coordination between the
writer (which publishes a new epoch after every maintained batch) and the
readers (which pin the current epoch for the duration of a query):

* **Atomic publication** — the current epoch swaps under the manager's
  lock, so a reader acquiring "the current epoch" always gets a complete
  model, never a half-applied batch.
* **Pinning** — :meth:`EpochManager.acquire` increments the epoch's
  refcount *under the same lock* that publication takes, so an epoch can
  never retire between a reader choosing it and pinning it.
* **Layer liveness** — each epoch holds layer references
  (``store.acquire()``, and the overlay's shared base) for as long as it
  is live (current, or pinned by at least one reader).  When an epoch
  retires its layer references drop; a base whose last overlay retires
  becomes unreachable and falls out of the pin set.
* **Intern-GC safety** — the manager registers a (weak) pin provider with
  :mod:`repro.hilog.terms`, covering every atom reachable from every live
  epoch.  Term eviction (:func:`~repro.hilog.terms.collect_generation`)
  therefore never invalidates a pinned reader view: terms compare by
  identity, so evicting an atom a reader can still fetch would silently
  turn its lookups into misses.
* **Rebase policy** — overlays collapse their predecessors at
  construction, so a reader consults exactly one overlay however many
  batches separate its epoch from the base; when the collapsed overlay
  volume exceeds ``rebase_ratio``  of the base (plus a small absolute
  floor), the manager publishes a fresh frozen snapshot instead, keeping
  per-read overhead bounded under unbounded churn.

Epochs deliberately know nothing about queries — reading an epoch is
:func:`repro.core.magic.evaluate.answer_from_store` over ``epoch.store``,
exactly the maintained-store query path, which both store shapes serve.
"""

from __future__ import annotations

import threading

from repro.engine.seminaive.relation import OverlayStore, RelationStore
from repro.hilog.terms import register_pin_provider
from repro.obs.trace import current_tracer


class Epoch:
    """One published snapshot of the maintained model.

    Immutable after construction (the serving invariant readers rely on);
    the mutable ``refs`` counter is owned by the :class:`EpochManager` and
    only ever touched under its lock.
    """

    __slots__ = ("eid", "store", "undefined", "version", "refs", "_live")

    def __init__(self, eid, store, undefined, version):
        #: Monotone epoch number (0 is the initial model).
        self.eid = eid
        #: The epoch's fact view — a frozen ``RelationStore`` or an
        #: ``OverlayStore`` over one.
        self.store = store
        #: Undefined atoms of the model at this epoch (well-founded mode).
        self.undefined = undefined
        #: The session version this epoch reflects.
        self.version = version
        #: Reader pins (managed by the EpochManager, under its lock).
        self.refs = 0
        self._live = True

    def __len__(self):
        return len(self.store)

    def __contains__(self, atom):
        return atom in self.store

    @property
    def live(self):
        """Whether the epoch still pins its layers (current or read-pinned)."""
        return self._live

    def is_base(self):
        """True when this epoch is a frozen full snapshot (not an overlay)."""
        return isinstance(self.store, RelationStore)

    def pin_roots(self):
        """Every term reachable from this epoch, for intern pin sets."""
        yield from self.store.pin_roots()
        yield from self.undefined


class EpochManager:
    """Publishes epochs for one writer and pins them for many readers.

    Args:
        snapshot: zero-argument callable returning a fresh
            :class:`RelationStore` copy of the maintained store (the
            session's ``store.snapshot()``, called on the writer thread) —
            used for the initial epoch and for rebases.
        rebase_ratio: publish a fresh frozen snapshot instead of a further
            overlay once the collapsed overlay volume (additions +
            tombstones) exceeds this fraction of the base's size.
        rebase_min: absolute overlay volume below which no rebase happens
            regardless of the ratio (keeps tiny models from rebasing on
            every batch).
    """

    def __init__(self, snapshot, rebase_ratio=0.5, rebase_min=256):
        if rebase_ratio <= 0:
            raise ValueError("rebase_ratio must be positive")
        self._snapshot = snapshot
        self._rebase_ratio = rebase_ratio
        self._rebase_min = rebase_min
        self._lock = threading.Lock()
        self._current = None
        self._next_eid = 0
        #: eid -> Epoch, every epoch whose layers are still pinned.
        self._live = {}
        self._rebases = 0
        self._published = 0
        # Weak registration: a dropped manager stops pinning automatically.
        self._pin_handle = register_pin_provider(self._intern_pin_roots)

    # -- intern-GC integration ----------------------------------------------

    def _intern_pin_roots(self):
        """Pin every atom reachable from any live epoch.  Called by
        :func:`~repro.hilog.terms.collect_generation` on whatever thread
        collects; the snapshot of the live table is taken under the lock,
        the (immutable) epochs are walked outside it."""
        with self._lock:
            epochs = list(self._live.values())
        for epoch in epochs:
            yield from epoch.pin_roots()

    # -- publication (writer side) ------------------------------------------

    def publish_base(self, undefined=frozenset(), version=0):
        """Publish a fresh frozen full snapshot as the new current epoch
        (the initial publication, and the rebase path).  Runs ``snapshot()``
        on the calling (writer) thread; only the swap takes the lock."""
        store = self._snapshot().freeze()
        return self._install(store, undefined, version)

    def publish_delta(self, added, removed, undefined=frozenset(), version=0):
        """Publish the net effect of one maintained batch as the new
        current epoch: an overlay over the current epoch's base (collapsing
        the current overlay, if any), or — once the collapsed overlay
        outgrows the rebase policy — a fresh frozen snapshot.

        ``added`` / ``removed`` are exact model diffs (the maintained
        store already reflects them — :class:`~repro.db.session.UpdateSummary`
        semantics).  Construction happens outside the lock: the inputs are
        immutable published layers, so only the final swap synchronizes."""
        with self._lock:
            current = self._current
        if current is None:
            return self.publish_base(undefined, version)
        if current.is_base():
            base, previous = current.store, None
        else:
            base, previous = current.store.base, current.store
        overlay = OverlayStore(base, added=added, removed=removed,
                               previous=previous)
        volume = overlay.overlay_size()
        if volume > self._rebase_min and \
                volume > self._rebase_ratio * max(len(base), 1):
            self._rebases += 1
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit("rebase", overlay=volume, base=len(base),
                            version=version)
            return self.publish_base(undefined, version)
        return self._install(overlay, undefined, version)

    def _install(self, store, undefined, version):
        """Swap ``store`` in as the current epoch, retiring the old current
        epoch's *current* pin (readers still holding it keep it live)."""
        store.acquire()
        if isinstance(store, OverlayStore):
            store.base.acquire()
        with self._lock:
            epoch = Epoch(self._next_eid, store, frozenset(undefined), version)
            self._next_eid += 1
            self._published += 1
            self._live[epoch.eid] = epoch
            previous, self._current = self._current, epoch
            if previous is not None and previous.refs == 0:
                self._retire_locked(previous)
        return epoch

    # -- pinning (reader side) ----------------------------------------------

    def acquire(self):
        """Pin and return the current epoch.  The pin is taken under the
        publication lock, so the returned epoch's layers are guaranteed
        live until the matching :meth:`release`."""
        with self._lock:
            epoch = self._current
            if epoch is None:
                raise RuntimeError("no epoch has been published yet")
            epoch.refs += 1
            return epoch

    def release(self, epoch):
        """Drop one reader pin; retires the epoch when it is no longer
        current and unpinned."""
        with self._lock:
            if epoch.refs > 0:
                epoch.refs -= 1
            if epoch.refs == 0 and epoch is not self._current \
                    and epoch._live:
                self._retire_locked(epoch)

    def _retire_locked(self, epoch):
        """Drop the epoch's layer references and remove it from the live
        table (caller holds the lock)."""
        epoch._live = False
        epoch.store.release()
        if isinstance(epoch.store, OverlayStore):
            epoch.store.base.release()
        self._live.pop(epoch.eid, None)

    # -- introspection -------------------------------------------------------

    @property
    def current(self):
        """The current epoch (unpinned — use :meth:`acquire` to read)."""
        with self._lock:
            return self._current

    def live_epochs(self):
        """Snapshot of the live epoch table (current + reader-pinned)."""
        with self._lock:
            return list(self._live.values())

    def stats(self):
        """Publication / pinning counters for diagnostics."""
        with self._lock:
            current = self._current
            return {
                "published": self._published,
                "rebases": self._rebases,
                "live_epochs": len(self._live),
                "current_eid": current.eid if current is not None else None,
                "current_refs": current.refs if current is not None else 0,
                "current_is_base": current.is_base() if current is not None
                else None,
                "current_overlay": 0 if current is None or current.is_base()
                else current.store.overlay_size(),
            }

    def close(self):
        """Retire every epoch (the serving session is shutting down);
        readers still pinned keep their store objects but the manager stops
        pinning interned terms for them."""
        with self._lock:
            for epoch in list(self._live.values()):
                self._retire_locked(epoch)
            self._current = None
