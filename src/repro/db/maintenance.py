"""Incremental view-maintenance algorithms over the semi-naive engine.

Given a settled stratum and a *signed delta* of the strata below it (facts
that just became true, facts that just became false), the functions here
patch the stratum's materialized extension instead of recomputing it:

* :func:`counting_update` — the **counting algorithm** (Gupta, Mumick &
  Subrahmanian, "Maintaining views incrementally", SIGMOD'93) for
  non-recursive strata without negation or aggregation.  Every fact carries
  a support count (the number of rule instantiations deriving it, plus one
  per explicit assertion); the signed delta of derivation counts is computed
  by the standard finite-difference expansion of the body join —
  ``Δ(R1 ⋈ … ⋈ Rn) = Σ_j R1ⁿᵉʷ ⋈ … ⋈ R_{j-1}ⁿᵉʷ ⋈ ΔR_j ⋈ R_{j+1}ᵒˡᵈ ⋈ … ⋈
  Rnᵒˡᵈ`` — and a fact flips truth value exactly when its count crosses
  zero.

* :func:`dred_update` — **delete-rederive** (DRed, same paper) for
  recursive strata and strata with stratified negation.  Deletion first
  *over-deletes* everything with a derivation through a deleted fact (or
  through a negative subgoal that just became true), then *rederives* the
  over-deleted facts that still have an alternative derivation, then
  processes insertions with the engine's injected-delta semi-naive
  propagation.  Because HiLog fact counts can be self-supporting through
  recursion (a cycle keeps itself alive), counting alone is unsound there —
  this is the classical division of labour between the two algorithms.

* :func:`recompute_stratum` — stratum-local recomputation, the fallback for
  aggregate strata (whose group extensions may change non-monotonically in
  ways neither algorithm tracks) and for any stratum whose incremental step
  fails its integrity checks.

All three leave the shared :class:`~repro.engine.seminaive.relation.RelationStore`
consistent and extend the running :class:`Delta` with the stratum's own net
changes, so the next stratum up sees exactly the facts that flipped.
"""

from __future__ import annotations

from repro.engine.seminaive.engine import (
    PlanSources,
    check_derived_atom,
    evaluate_stratum,
    plan_satisfiable,
    plan_satisfiable_positional,
    run_plan,
)
from repro.engine.seminaive.plan import build_term
from repro.db.plans import COUNTING
from repro.engine.seminaive.relation import RelationStore, SignedStore, predicate_indicator
from repro.hilog.errors import GroundingError
from repro.hilog.terms import App
from repro.hilog.unify import match


class Delta:
    """A signed set of fact changes: atoms that became true (``added``) and
    atoms that became false (``removed``), with cancellation — re-adding a
    removed atom erases the removal instead of recording both."""

    __slots__ = ("added", "removed")

    def __init__(self):
        self.added = SignedStore()
        self.removed = SignedStore()

    def record_add(self, atom):
        if atom in self.removed:
            self.removed.remove(atom)
        else:
            self.added.add(atom)

    def record_remove(self, atom):
        if atom in self.added:
            self.added.remove(atom)
        else:
            self.removed.add(atom)

    def is_empty(self):
        return not len(self.added) and not len(self.removed)

    def pin_roots(self):
        """Both signed sides' atoms, for intern-generation pin sets — a
        caller retaining a delta past the update that produced it (audit
        logs, change feeds) pins it across collections this way."""
        yield from self.added.pin_roots()
        yield from self.removed.pin_roots()

    def touches(self, indicators):
        """Whether the delta contains facts of any of the given predicate
        indicators (``None`` means "unknowable reads" — always true)."""
        if indicators is None:
            return not self.is_empty()
        for name, arity in indicators:
            if self.added.has_facts(name, arity) or self.removed.has_facts(name, arity):
                return True
        return False


class _ExcludingView:
    """A store minus the members of another store (no copying).

    Implements the register executor's fetch protocol by filtering the
    underlying store's results; exactness is inherited (filtering never
    adds foreign-indicator facts).
    """

    __slots__ = ("store", "minus")

    def __init__(self, store, minus):
        self.store = store
        self.minus = minus

    def fetch(self, name, arity, positions, key):
        facts, exact = self.store.fetch(name, arity, positions, key)
        minus = self.minus
        return [fact for fact in facts if fact not in minus], exact

    def spill(self, arity, symbol):
        facts, exact = self.store.spill(arity, symbol)
        minus = self.minus
        return [fact for fact in facts if fact not in minus], exact

    def all_facts(self):
        facts, exact = self.store.all_facts()
        minus = self.minus
        return [fact for fact in facts if fact not in minus], exact

    def __contains__(self, atom):
        return atom in self.store and atom not in self.minus


class _UnionView:
    """The union of several disjoint fact sources."""

    __slots__ = ("sources",)

    def __init__(self, *sources):
        self.sources = sources

    def fetch(self, name, arity, positions, key):
        result = []
        exact = True
        for source in self.sources:
            facts, source_exact = source.fetch(name, arity, positions, key)
            result.extend(facts)
            exact = exact and source_exact
        return result, exact

    def spill(self, arity, symbol):
        result = []
        for source in self.sources:
            facts, _exact = source.spill(arity, symbol)
            result.extend(facts)
        return result, False

    def all_facts(self):
        result = []
        for source in self.sources:
            facts, _exact = source.all_facts()
            result.extend(facts)
        return result, False

    def __contains__(self, atom):
        return any(atom in source for source in self.sources)


def old_state(store, delta):
    """A read-only view of the database state *before* ``delta`` was applied
    to ``store`` (the delta's additions are masked out, its removals shine
    through again).  Degenerate deltas skip the wrapper layers."""
    if not len(delta.added):
        if not len(delta.removed):
            return store
        return _UnionView(store, delta.removed)
    return _UnionView(_ExcludingView(store, delta.added), delta.removed)


class _FactsDelta:
    """A small per-round delta: a plain fact list posing as a fact source.

    The semi-naive worklist rounds of over-deletion are often tiny (one fact
    per round on path-shaped data); building a full indexed
    :class:`RelationStore` per round would dominate the maintenance cost.
    Candidates are returned unfiltered (``exact=False``) — the executor's
    match instructions reject non-matching facts, and the rounds are small
    by construction.
    """

    __slots__ = ("facts", "indicators")

    def __init__(self, facts):
        self.facts = facts
        self.indicators = {predicate_indicator(fact) for fact in facts}

    def __len__(self):
        return len(self.facts)

    def fetch(self, name, arity, positions, key):
        return self.facts, False

    def spill(self, arity, symbol):
        return self.facts, False

    def all_facts(self):
        return self.facts, False

    def __contains__(self, atom):
        return atom in self.facts  # worklist rounds are small lists

    def has_indicator(self, indicator):
        return indicator in self.indicators


class StagedSources(PlanSources):
    """Plan sources that stage different database states per body position.

    The delta-marked step reads ``delta``; other fetches read ``before``
    when their original body index precedes the delta site and ``after``
    otherwise; negation checks go against ``neg``.  This is exactly the
    staging the finite-difference counting rules and the DRed delta rules
    need.
    """

    __slots__ = ("site", "before", "after", "neg")

    def __init__(self, store, delta, site, before, after, neg):
        super().__init__(store, delta)
        self.site = site
        self.before = before
        self.after = after
        self.neg = neg

    def select(self, step):
        if step.from_delta:
            return self.delta
        if step.body_index < self.site:
            return self.before
        return self.after

    def holds(self, atom):
        return atom in self.neg


def _delta_relevant(delta_store, indicator):
    """Whether a delta store could feed a variant anchored at ``indicator``
    (``None``: non-ground site pattern — any delta fact might match)."""
    if not len(delta_store):
        return False
    if indicator is None:
        return True
    if isinstance(delta_store, _FactsDelta):
        return delta_store.has_indicator(indicator)
    return delta_store.has_facts(indicator[0], indicator[1])


class _Limits:
    """Resource caps shared by every maintenance step of one update."""

    __slots__ = ("max_facts", "max_term_depth")

    def __init__(self, max_facts, max_term_depth):
        self.max_facts = max_facts
        self.max_term_depth = max_term_depth

    def check(self, head, store):
        check_derived_atom(head, store, self.max_facts, self.max_term_depth)


# ---------------------------------------------------------------------------
# Counting (non-recursive strata, no negation/aggregation)
# ---------------------------------------------------------------------------

def counting_update(plans, store, delta, edb_added, edb_removed, limits):
    """Maintain a non-recursive positive stratum by support counting.

    ``plans`` is a :class:`~repro.db.plans.MaintenancePlans`; ``delta`` the
    accumulated signed changes of the strata below (extended in place with
    this stratum's own changes); ``edb_added``/``edb_removed`` the explicit
    assertions/retractions targeting this stratum's head predicates.
    """
    before = store  # lower strata already hold their new state
    after = old_state(store, delta)

    changes = {}
    for _rule, site, indicator, plan in plans.update_variants:
        for sign, delta_store in ((1, delta.added), (-1, delta.removed)):
            if not _delta_relevant(delta_store, indicator):
                continue
            sources = StagedSources(
                store, delta_store, site, before=before, after=after, neg=None
            )
            for head in run_plan(plan, sources, max_results=limits.max_facts):
                changes[head] = changes.get(head, 0) + sign

    # Explicit assertions/retractions are one support each.
    for atom in edb_added:
        changes[atom] = changes.get(atom, 0) + 1
    for atom in edb_removed:
        changes[atom] = changes.get(atom, 0) - 1

    for atom, change in changes.items():
        if change > 0:
            limits.check(atom, store)
            if store.add_support(atom, change):
                delta.record_add(atom)
        elif change < 0:
            if store.remove_support(atom, -change):
                delta.record_remove(atom)


# ---------------------------------------------------------------------------
# Delete-rederive (recursive strata, stratified negation)
# ---------------------------------------------------------------------------

def _overdelete(plans, store, delta, edb_removed):
    """The DRed over-deletion phase: the downward closure of everything with
    a derivation through a deleted fact (or a newly-true negated atom),
    computed against the *old* database state.  Returns the over-deleted
    facts; the store is not yet modified."""
    old = old_state(store, delta)
    overdeleted = set()
    worklist = []

    def collect(atom):
        if atom in store and atom not in overdeleted:
            overdeleted.add(atom)
            worklist.append(atom)

    for atom in edb_removed:
        collect(atom)

    # Seeds: lost derivations through the lower strata's changes.
    for _rule, site, indicator, plan in plans.update_variants:
        if _delta_relevant(delta.removed, indicator):
            sources = StagedSources(
                store, delta.removed, site, before=old, after=old, neg=old
            )
            for head in run_plan(plan, sources):
                collect(head)
    for _rule, site, indicator, plan in plans.negation_variants:
        # A negated subgoal that just became true kills old derivations.
        if _delta_relevant(delta.added, indicator):
            sources = StagedSources(
                store, delta.added, site, before=old, after=old, neg=old
            )
            for head in run_plan(plan, sources):
                collect(head)

    # Propagate through the stratum's own (recursive) dependencies.
    own_variants = [
        variant for variant in plans.update_variants
        if plans.site_in_stratum(variant[2])
    ]
    while worklist:
        delta_store = _FactsDelta(worklist)
        worklist = []
        for _rule, site, indicator, plan in own_variants:
            if not _delta_relevant(delta_store, indicator):
                continue
            sources = StagedSources(
                store, delta_store, site, before=old, after=old, neg=old
            )
            for head in run_plan(plan, sources):
                collect(head)
    return overdeleted


def _rederive(plans, store, overdeleted, edb):
    """The DRed rederivation phase: restore every over-deleted fact that is
    still asserted or still has a derivation in the new state.  Returns the
    set of rederived facts."""
    remaining = set(overdeleted)
    rederived = set()
    sources = PlanSources(store)

    def derivable(atom):
        for rule, plan, bound_body, linear_head, compiled_body, init_slots \
                in plans.rederive_plans:
            if linear_head is not None:
                if type(atom) is not App or atom.name is not rule.head.name \
                        or len(atom.args) != len(linear_head):
                    continue
                args = atom.args
                if compiled_body is not None:
                    # Fastest path: the head instantiates the whole body and
                    # binds by position — membership tests over terms built
                    # straight from the candidate's argument tuple.
                    positives, negatives = compiled_body
                    matched = True
                    for builder in positives:
                        if build_term(builder, args) not in store:
                            matched = False
                            break
                    if matched:
                        for builder in negatives:
                            if build_term(builder, args) in store:
                                matched = False
                                break
                    if matched:
                        return True
                    continue
                if plan_satisfiable_positional(plan, sources, init_slots, args):
                    return True
                continue
            binding = match(rule.head, atom)
            if binding is None:
                continue
            if bound_body is not None:
                # The head instantiates the whole body — the derivation test
                # is pure membership, no join machinery.
                positives, negatives = bound_body
                if all(binding.apply(body_atom) in store for body_atom in positives) \
                        and not any(binding.apply(body_atom) in store
                                    for body_atom in negatives):
                    return True
                continue
            if plan_satisfiable(plan, sources, binding):
                return True
        return False

    worklist = []

    def restore(atom):
        store.add(atom)
        rederived.add(atom)
        remaining.discard(atom)
        worklist.append(atom)

    # Pass 1: facts directly derivable (or still asserted) in the new state.
    for atom in list(remaining):
        if atom not in remaining:
            continue
        if atom in edb or derivable(atom):
            restore(atom)

    # Pass 2: delta-driven propagation — a restored fact may support other
    # over-deleted facts, so push restorations through the stratum's own
    # dependency sites instead of rescanning the whole remainder per round.
    own_variants = [
        variant for variant in plans.update_variants
        if plans.site_in_stratum(variant[2])
    ]
    while worklist:
        delta_store = _FactsDelta(worklist)
        worklist = []
        for _rule, site, indicator, plan in own_variants:
            if not _delta_relevant(delta_store, indicator):
                continue
            sources_staged = StagedSources(
                store, delta_store, site, before=store, after=store, neg=store
            )
            for head in run_plan(plan, sources_staged):
                if head in remaining:
                    restore(head)
    return rederived


def dred_update(plans, store, delta, edb, edb_added, edb_removed, limits):
    """Maintain a stratum by delete-rederive.

    ``edb`` is the session's current assertion set (already updated for this
    batch) — an over-deleted fact that is still asserted is rederived
    unconditionally.
    """
    # --- over-delete, against the old state ---
    overdeleted = _overdelete(plans, store, delta, edb_removed)
    for atom in overdeleted:
        store.remove(atom)

    # --- rederive what survives in the new state ---
    rederived = _rederive(plans, store, overdeleted, edb)
    for atom in overdeleted:
        if atom not in rederived:
            delta.record_remove(atom)

    # --- insert: seeds from the lower strata's changes, then semi-naive ---
    new_facts = []

    def try_add(head):
        limits.check(head, store)
        if store.add(head):
            new_facts.append(head)

    for atom in edb_added:
        limits.check(atom, store)
        if store.add(atom):
            new_facts.append(atom)
    for _rule, site, indicator, plan in plans.update_variants:
        if _delta_relevant(delta.added, indicator):
            sources = StagedSources(
                store, delta.added, site, before=store, after=store, neg=store
            )
            for head in run_plan(plan, sources, max_results=limits.max_facts):
                try_add(head)
    for _rule, site, indicator, plan in plans.negation_variants:
        # A negated subgoal that just became false enables new derivations.
        if _delta_relevant(delta.removed, indicator):
            sources = StagedSources(
                store, delta.removed, site, before=store, after=store, neg=store
            )
            for head in run_plan(plan, sources, max_results=limits.max_facts):
                try_add(head)

    _iterations, propagated = evaluate_stratum(
        plans.stratum, store,
        max_facts=limits.max_facts, max_term_depth=limits.max_term_depth,
        seed_delta=new_facts,
    )
    for atom in new_facts + propagated:
        delta.record_add(atom)


# ---------------------------------------------------------------------------
# Stratum-local recomputation (aggregates, integrity fallback)
# ---------------------------------------------------------------------------

def materialize_counting_stratum(plans, store, limits):
    """Evaluate a counting stratum from scratch, counting supports.

    A non-recursive stratum's base pass sees every derivation exactly once,
    so one pass over the base plans — with :meth:`add_support` instead of
    set-semantics ``add`` — rebuilds exact support counts.  (The EDB
    supports of the stratum's head predicates must already be in the store.)
    """
    sources = PlanSources(store)
    for _rule, plan in plans.stratum.base_plans:
        for head in run_plan(plan, sources, max_results=limits.max_facts):
            limits.check(head, store)
            store.add_support(head)


def recompute_stratum(plans, store, delta, edb, limits):
    """Throw the stratum's extension away and recompute it from the current
    lower strata — correct for every supported stratum shape, used for
    aggregate strata and as the fallback when an incremental step fails.

    Counting strata are rebuilt with per-derivation support counts (a plain
    set-semantics rebuild would reset every count to 1 and make later
    retractions drop facts that still have other derivations)."""
    if plans.head_indicators is None:
        raise GroundingError(
            "cannot locally recompute a stratum with non-ground head "
            "predicate names"
        )
    old_facts = set()
    for name, arity in plans.head_indicators:
        old_facts.update(store.facts(name, arity))
    for atom in old_facts:
        store.remove(atom)
    for atom in edb:
        if predicate_indicator(atom) in plans.head_indicators:
            store.add(atom)
    if plans.strategy == COUNTING:
        materialize_counting_stratum(plans, store, limits)
    else:
        evaluate_stratum(
            plans.stratum, store,
            max_facts=limits.max_facts, max_term_depth=limits.max_term_depth,
        )
    new_facts = set()
    for name, arity in plans.head_indicators:
        new_facts.update(store.facts(name, arity))
    for atom in old_facts - new_facts:
        delta.record_remove(atom)
    for atom in new_facts - old_facts:
        delta.record_add(atom)
