"""Per-stratum plan bundles for incremental maintenance.

A :class:`MaintenancePlans` extends the engine's
:class:`~repro.engine.seminaive.engine.StratumPlan` (base pass + recursive
delta variants) with the additional compiled plans the maintenance
algorithms of :mod:`repro.db.maintenance` need:

* *update variants* — one delta variant per positive body site (not just
  the recursive ones), anchoring the finite-difference counting rules and
  the DRed over-deletion/insertion seeds at any lower-stratum change;
* *negation variants* — the rule with one negative literal flipped positive
  and anchored on the delta, used to find derivations created (destroyed)
  when a negated subgoal becomes false (true);
* *rederivation plans* — the rule body compiled with every head variable
  pre-bound, so "does this over-deleted fact still have a derivation?" is
  answered with indexed probes instead of open joins.

The bundle also decides the stratum's maintenance strategy: ``counting``
for non-recursive positive strata, ``dred`` for recursive strata and strata
with (stratified) negation, ``recompute`` for aggregate strata and strata
whose maintenance plans cannot be compiled.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.engine.seminaive.engine import (
    SeminaiveUnsupported,
    StratumPlan,
    _literal_indicator,
    compile_stratum,
)
from repro.engine.seminaive.plan import PlanError, _compile_builder, compile_rule
from repro.hilog.program import Literal, Rule

#: Maintenance strategies.
COUNTING = "counting"
DRED = "dred"
RECOMPUTE = "recompute"


def _linear_head_vars(head):
    """The argument variables of a *linear* head — a flat application with a
    ground name and pairwise-distinct variable arguments — or ``None``.
    Linear heads let rederivation bind a candidate fact with one ``zip``
    instead of a full structural match."""
    from repro.hilog.terms import App, Var

    if not isinstance(head, App) or not head.name.is_ground():
        return None
    names = []
    for arg in head.args:
        if not isinstance(arg, Var):
            return None
        names.append(arg)
    if len(set(names)) != len(names):
        return None
    return tuple(names)


class MaintenancePlans(NamedTuple):
    """Everything needed to maintain one stratum incrementally."""

    stratum: StratumPlan
    strategy: str
    #: ``(rule, site, indicator, plan)`` — one per positive body site.
    update_variants: Tuple
    #: ``(rule, site, indicator, plan)`` — one per negative body site,
    #: with the negation flipped into a positive delta anchor.
    negation_variants: Tuple
    #: ``(rule, plan, bound_body, linear_head, compiled_body, init_slots)``
    #: — bodies compiled with the head variables bound; ``bound_body`` is
    #: ``(positives, negatives)`` when the head instantiates the entire body
    #: (rederivation is then a membership test), else ``None``;
    #: ``linear_head`` is the head's argument-variable tuple when one ``zip``
    #: can bind it, else ``None``; ``compiled_body`` (set with both of the
    #: above) holds the body atoms as register builders whose "registers"
    #: are the candidate fact's argument tuple, so the membership test runs
    #: without any substitution at all; ``init_slots`` maps head positions
    #: to the plan's register slots for positional satisfiability probes.
    rederive_plans: Tuple

    @property
    def head_indicators(self):
        return self.stratum.head_indicators

    @property
    def reads(self):
        return self.stratum.reads

    def site_in_stratum(self, indicator):
        """Whether a body site could read this stratum's own predicates."""
        if indicator is None or self.stratum.head_indicators is None:
            return True
        return indicator in self.stratum.head_indicators

    def pin_roots(self):
        """Term roots the maintenance bundle retains, for intern-generation
        pin sets.  The update/negation variants, rederivation plans and
        compiled membership builders are all compiled from the stratum's
        rules — the flipped negation variants reuse the original atom
        objects — so the stratum's rule roots cover every constant any of
        the bundled register programs holds."""
        return self.stratum.pin_roots()


def build_maintenance_plans(rules, recursive):
    """Compile the maintenance bundle for one stratum.

    Raises :class:`SeminaiveUnsupported` when even the base stratum plan
    cannot be compiled; a failure to compile the *incremental* plans only
    demotes the stratum to the ``recompute`` strategy (when its head
    indicators are ground — otherwise there is no local recomputation
    boundary and the error propagates).
    """
    stratum = compile_stratum(rules, recursive)

    if stratum.has_aggregates:
        return MaintenancePlans(stratum, RECOMPUTE, (), (), ())

    try:
        update_variants = []
        negation_variants = []
        rederive_plans = []
        for rule in stratum.rules:
            for site, literal in enumerate(rule.body):
                if literal.is_builtin():
                    continue
                if literal.positive:
                    update_variants.append((
                        rule, site, _literal_indicator(literal.atom),
                        compile_rule(rule, delta_index=site),
                    ))
                else:
                    flipped = Rule(
                        rule.head,
                        rule.body[:site] + (Literal(literal.atom, True),)
                        + rule.body[site + 1:],
                        rule.aggregates,
                    )
                    negation_variants.append((
                        rule, site, _literal_indicator(literal.atom),
                        compile_rule(flipped, delta_index=site),
                    ))
            head_vars = frozenset(rule.head.variables())
            bound_body = None
            if all(not literal.is_builtin() and literal.atom.variables() <= head_vars
                   for literal in rule.body):
                bound_body = (
                    tuple(lit.atom for lit in rule.body if lit.positive),
                    tuple(lit.atom for lit in rule.body if lit.negative),
                )
            linear_head = _linear_head_vars(rule.head)
            compiled_body = None
            if bound_body is not None and linear_head is not None:
                # The candidate fact's argument tuple doubles as the register
                # file: variable i of the linear head reads ``args[i]``.
                position_of = {v: i for i, v in enumerate(linear_head)}
                compiled_body = tuple(
                    tuple(_compile_builder(atom, head_vars, position_of.__getitem__)
                          for atom in group)
                    for group in bound_body
                )
            plan = compile_rule(rule, bound=head_vars)
            init_slots = None
            if linear_head is not None:
                # Register slots of the head variables, by head position, so
                # rederivation can seed the registers straight from a
                # candidate fact's argument tuple.
                init_slots = tuple(
                    plan.registers.slot_of[v] for v in linear_head
                )
            rederive_plans.append((
                rule, plan, bound_body, linear_head, compiled_body, init_slots,
            ))
    except PlanError as error:
        if stratum.head_indicators is None:
            raise SeminaiveUnsupported(str(error))
        return MaintenancePlans(stratum, RECOMPUTE, (), (), ())

    if stratum.is_recursive or stratum.has_negation:
        strategy = DRED
    else:
        strategy = COUNTING
    return MaintenancePlans(
        stratum, strategy,
        tuple(update_variants), tuple(negation_variants), tuple(rederive_plans),
    )
