"""Incremental deductive-database sessions over the semi-naive engine.

The paper's modularly stratified programs are exactly the class a
long-lived deductive database can serve: :class:`DatabaseSession`
materializes the perfect model once and then *maintains* it under fact
assertion and retraction — the counting algorithm for non-recursive
strata, delete-rederive (DRed) for recursive and negation strata,
stratum-local recomputation for aggregates — instead of recomputing from
scratch on every change (Gupta, Mumick & Subrahmanian, SIGMOD'93).

Quickstart::

    from repro.db import DatabaseSession

    session = DatabaseSession('''
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        e(a, b). e(b, c).
    ''')
    session.insert("e(c, d).")
    assert session.ask("tc(a, d)")
    session.retract("e(b, c).")
    assert not session.ask("tc(a, d)")
    print(session.query("tc(a, X)"))
"""

from repro.db.maintenance import Delta, counting_update, dred_update, recompute_stratum
from repro.db.plans import COUNTING, DRED, RECOMPUTE, MaintenancePlans, build_maintenance_plans
from repro.db.session import (
    DatabaseSession,
    SessionError,
    SessionIntegrityError,
    Transaction,
    UpdateSummary,
    open_session,
)

__all__ = [
    "DatabaseSession",
    "Transaction",
    "UpdateSummary",
    "SessionError",
    "SessionIntegrityError",
    "open_session",
    "Delta",
    "MaintenancePlans",
    "build_maintenance_plans",
    "counting_update",
    "dred_update",
    "recompute_stratum",
    "COUNTING",
    "DRED",
    "RECOMPUTE",
]
