"""Stateful deductive-database sessions with incremental view maintenance.

A :class:`DatabaseSession` holds a HiLog program (its rules) together with
an extensional database of asserted facts, materializes the perfect model
once through the semi-naive engine, and then keeps the model consistent
under :meth:`~DatabaseSession.insert` / :meth:`~DatabaseSession.retract` /
batched :meth:`~DatabaseSession.transaction` updates without recomputing it
from scratch:

* non-recursive positive strata are maintained by the **counting**
  algorithm (support counts per fact; Gupta–Mumick–Subrahmanian,
  SIGMOD'93),
* recursive strata and strata with stratified negation by
  **delete-rederive** (DRed),
* aggregate strata by stratum-local recomputation, which is also the
  fallback whenever an incremental step trips an integrity check.

Programs outside the semi-naive engine's stratified class still get a
session:

* programs with a cycle through negation at the predicate-indicator level
  (win/move games over cyclic graphs, the class between stratified and
  arbitrary normal programs) run in **well-founded mode**: every update
  recomputes the three-valued well-founded model through the semi-naive
  alternating fixpoint (:mod:`repro.engine.seminaive.wellfounded`) — no
  grounding, and the maintained store holds the certainly-true atoms while
  :attr:`DatabaseSession.undefined` exposes the undefined ones;
* everything else (variable predicate names mixed with negation, recursion
  through aggregation) falls back to whole-model recomputation through the
  Figure-1 procedure (``perfect_model_for_hilog``),

so the session API is uniform across every program class the repository
supports.

One documented semantic divergence, inherited from the two evaluators:
for an aggregate whose condition predicate is settled in a *lower*
stratum, the engine's stratified semantics (incremental sessions,
:func:`~repro.engine.seminaive.seminaive_evaluate`) folds over the full
condition extension, while the Figure-1 ground path (recompute-mode
sessions, ``perfect_model_for_hilog``) folds only over the condition
atoms of the aggregate's own component — deriving nothing for settled
conditions.  Each session mode is verified (:meth:`DatabaseSession.check`)
against the evaluator it is built on; see
:meth:`DatabaseSession.recompute_reference`.

Queries are answered from the maintained store through
:func:`repro.core.magic.evaluate.answer_from_store` (the session-backed
path of ``magic_evaluate``) — a handful of index probes, no evaluation at
all.
"""

from __future__ import annotations

import weakref

from time import perf_counter as _perf_counter
from typing import NamedTuple, Tuple

from repro.core.magic.evaluate import answer_from_store
from repro.core.modular import perfect_model_for_hilog
from repro.db.maintenance import (
    Delta,
    _Limits,
    counting_update,
    dred_update,
    materialize_counting_stratum,
    recompute_stratum,
)
from repro.db.plans import COUNTING, DRED, RECOMPUTE, build_maintenance_plans
from repro.engine.interpretation import Interpretation
from repro.engine.seminaive.engine import (
    EXECUTION_STATS,
    SeminaiveUnsupported,
    evaluate_stratum,
    seminaive_evaluate,
    stratify_program,
)
from repro.obs.metrics import COUNT_BUCKETS, get_registry
from repro.obs.trace import current_tracer
from repro.engine.seminaive.wellfounded import seminaive_well_founded
from repro.engine.seminaive.relation import RelationStore, predicate_indicator
from repro.hilog.errors import GroundingError, HiLogError
from repro.hilog.parser import parse_program, parse_query, parse_term
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import (
    Term,
    collect_generation,
    current_generation,
    intern_generation,
    intern_table_sizes,
    register_flush_hook,
    register_pin_provider,
)

#: Session evaluation modes.
INCREMENTAL = "incremental"
WELLFOUNDED = "wellfounded"
RECOMPUTE_MODE = "recompute"


class SessionError(HiLogError):
    """Misuse of the session API — e.g. opening a nested transaction while
    another is still staging, or operating on a committed/rolled-back
    transaction."""


class SessionIntegrityError(SessionError):
    """The maintained model diverged from the from-scratch model — an
    incremental maintenance bug surfaced by :meth:`DatabaseSession.check`."""


class UpdateSummary(NamedTuple):
    """Net effect of one update batch on the session."""

    #: Asserted facts that were not already in the EDB.
    inserted: int
    #: Retracted facts that were actually in the EDB.
    retracted: int
    #: Atoms that became true (EDB and derived; unordered).
    added: Tuple[Term, ...]
    #: Atoms that became false (unordered).
    removed: Tuple[Term, ...]
    #: Number of strata whose maintenance ran (0 for recompute mode).
    strata_touched: int
    #: ``"incremental"``, ``"wellfounded"``, ``"recompute"`` or
    #: ``"rebuild"`` (disaster path).
    mode: str
    #: Atoms that became undefined / stopped being undefined (well-founded
    #: mode only; always empty when the maintained model is total).
    undefined_added: Tuple[Term, ...] = ()
    undefined_removed: Tuple[Term, ...] = ()


class Transaction:
    """A batch of staged inserts/retracts applied atomically on commit.

    Usable as a context manager: a clean exit commits, an exception rolls
    the staged operations back (the session is untouched either way until
    commit).  Within one transaction the *last* operation on an atom wins.

    A session allows **one open transaction at a time**: opening a second
    before the first commits or rolls back raises :class:`SessionError`
    (interleaved staging used to corrupt silently — two batches would race
    on the same pin registry and commit each other's halves), as does
    staging into or re-committing a transaction that is already closed.
    """

    def __init__(self, session):
        self._session = session
        self._ops = []
        self._result = None
        self._closed = False
        # Tracked (weakly) so the session's pin provider keeps staged atoms
        # interned if an intern collection runs between staging and commit.
        session._transactions.add(self)

    def _check_open(self, action):
        if self._closed:
            raise SessionError(
                "cannot %s: this transaction is already %s" % (
                    action, "committed" if self._result is not None
                    else "rolled back",
                )
            )

    def insert(self, facts):
        """Stage assertions."""
        self._check_open("insert")
        for atom in self._session._coerce_in_generation(facts):
            self._ops.append(("insert", atom))
        return self

    def retract(self, facts):
        """Stage retractions."""
        self._check_open("retract")
        for atom in self._session._coerce_in_generation(facts):
            self._ops.append(("retract", atom))
        return self

    def commit(self):
        """Apply the staged batch; returns the :class:`UpdateSummary`.

        Closes the transaction whether or not the batch applies cleanly —
        a failed commit's staged operations are gone, not silently
        retryable against a store the failure may have rebuilt."""
        self._check_open("commit")
        final = {}
        for action, atom in self._ops:
            final[atom] = action
        inserts = [atom for atom, action in final.items() if action == "insert"]
        retracts = [atom for atom, action in final.items() if action == "retract"]
        self._ops = []
        self._closed = True
        session = self._session
        with intern_generation():
            self._result = session._apply(inserts, retracts)
        session._after_update(self._result)
        return self._result

    def rollback(self):
        """Discard the staged operations and close the transaction
        (idempotent — rolling back twice is a no-op)."""
        self._ops = []
        self._closed = True

    @property
    def result(self):
        """The summary of the last commit (``None`` before commit)."""
        return self._result

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False


class DatabaseSession:
    """A long-lived deductive database over one HiLog program.

    Args:
        program: a :class:`~repro.hilog.program.Program` or program text;
            its facts seed the extensional database, its proper rules are
            fixed for the session's lifetime.
        strategy: ``"auto"`` (incremental maintenance when the program is
            in the semi-naive engine's stratified class, semi-naive
            well-founded recomputation when it only has indicator-level
            cycles through negation, Figure-1 whole-model recomputation
            otherwise), ``"incremental"`` / ``"wellfounded"`` (raise
            :class:`~repro.engine.seminaive.SeminaiveUnsupported` outside
            the respective class) or ``"recompute"``.
        max_facts / max_term_depth: the engine's resource caps.
        intern_gc: when set to a positive integer N, the session sweeps the
            term intern tables (:meth:`collect`) automatically after every N
            updates, bounding intern memory under fact churn.  ``None``
            (the default) never collects automatically — call
            :meth:`collect` yourself for long-lived serving processes.
        path: a data directory making the session **durable**: every
            update batch is written to a CRC32-framed write-ahead log
            before the call returns, snapshot checkpoints capture the
            materialized model, and :meth:`DatabaseSession.open` recovers
            the session after a crash (newest valid snapshot + WAL-tail
            replay).  The directory must be fresh — reopening an existing
            one goes through :meth:`open`.  A single-writer lockfile
            guards the directory (:class:`~repro.hilog.errors.LockHeld`).
        fsync: WAL durability policy for ``path`` sessions — ``"always"``
            (fsync per committed batch), ``"batch"`` (default; fsync every
            64 batches, at checkpoints and on close) or ``"off"``.
        checkpoint_every: write a snapshot automatically every N logged
            update batches (``None`` — the default — checkpoints only on
            demand, at creation and at :meth:`close`).
        validate: run the :mod:`repro.lint` static analyzer over the
            program before materialization — ``"off"`` (default; skip),
            ``"warn"`` (emit a :class:`UserWarning` carrying the report
            when it is non-empty, then proceed) or ``"strict"`` (raise
            :class:`~repro.hilog.errors.DiagnosticError` when the report
            contains *errors*; warnings alone proceed).  Whatever ran is
            kept on :attr:`diagnostics` and summarized in :meth:`stats`.

    Every update runs inside an **intern generation**
    (:mod:`repro.hilog.terms`), so the transient terms it builds — parsed
    fact strings, over-deleted candidates, rederivation probes — and the
    fresh constants of since-retracted facts are evictable by
    :meth:`collect`.  The session registers a pin provider covering its
    store, EDB, rules, compiled plans and staged transactions, so
    collection (from this session or any other) never evicts a term the
    session still reaches.  Terms handed *out* of the session (query
    answers, update summaries) are only guaranteed canonical while the
    session still reaches them — the pending update's summary is pinned
    through its own automatic sweep, but atoms held from *earlier*
    summaries or since-retracted answers must be retained explicitly:
    :meth:`pin` them (works under ``intern_gc`` too), pass them to a
    manual ``collect(pins=...)``, or simply re-obtain them at top level
    (intern hits outside a generation promote the term to immortal).
    """

    def __init__(self, program, strategy="auto", max_facts=1000000,
                 max_term_depth=None, intern_gc=None, path=None,
                 fsync="batch", checkpoint_every=None, validate="off",
                 _manager=None, _recover=None):
        if strategy not in ("auto", INCREMENTAL, WELLFOUNDED, RECOMPUTE_MODE):
            raise ValueError(
                "unknown strategy %r (use 'auto', 'incremental', "
                "'wellfounded' or 'recompute')" % (strategy,)
            )
        if validate not in ("strict", "warn", "off"):
            raise ValueError(
                "validate must be 'strict', 'warn' or 'off', got %r"
                % (validate,)
            )
        if intern_gc is not None and (not isinstance(intern_gc, int) or intern_gc <= 0):
            raise ValueError("intern_gc must be None or a positive integer")
        if fsync not in ("always", "batch", "off"):
            raise ValueError(
                "fsync policy must be 'always', 'batch' or 'off', got %r"
                % (fsync,)
            )
        self._durable = None
        self._program_text = program if isinstance(program, str) else None
        if path is not None and _manager is None:
            from repro.durable.manager import is_initialized

            if is_initialized(path):
                raise SessionError(
                    "data directory %r already holds a durable session; "
                    "recover it with DatabaseSession.open(path)" % (path,)
                )
        if isinstance(program, str):
            program = parse_program(program)
        self._diagnostics = None
        if validate != "off":
            from repro.lint import lint_program

            report = lint_program(program)
            self._diagnostics = report
            if report.has_errors() and validate == "strict":
                from repro.hilog.errors import DiagnosticError

                raise DiagnosticError(
                    "program failed strict validation:\n%s" % report.to_text(),
                    diagnostics=report,
                )
            if report and validate == "warn":
                import warnings as _warnings

                _warnings.warn(
                    "program validation found issues:\n%s" % report.to_text(),
                    stacklevel=2,
                )
        self._rules = Program(tuple(program.proper_rules()))
        self._edb = set()
        for rule in program.facts():
            # Every evaluation path of the repository requires ground facts
            # (cf. seminaive_evaluate and the Figure-1 grounding); reject
            # them up front with a clear error rather than at first update.
            if not rule.head.is_ground():
                raise GroundingError("fact %r is not ground" % (rule.head,))
            self._edb.add(rule.head)
        self._limits = _Limits(max_facts, max_term_depth)
        self._parse_cache = {}

        self._plans = None
        self._owner = {}
        self._unknown_stratum = None
        self._mode = RECOMPUTE_MODE
        self._undefined = frozenset()
        if strategy in ("auto", INCREMENTAL):
            try:
                stratification = stratify_program(self._rules, by_component=True)
                self._plans = [
                    build_maintenance_plans(rules, stratification.recursive)
                    for rules in stratification.strata
                ]
                for index, plans in enumerate(self._plans):
                    if plans.head_indicators is None:
                        if self._unknown_stratum is None:
                            self._unknown_stratum = index
                        continue
                    for indicator in plans.head_indicators:
                        self._owner[indicator] = index
                self._mode = INCREMENTAL
            except SeminaiveUnsupported:
                if strategy == INCREMENTAL:
                    raise
                self._plans = None
        if strategy in ("auto", WELLFOUNDED) and self._mode == RECOMPUTE_MODE:
            # The non-stratified fast fallback: programs whose only obstacle
            # is an indicator-level cycle through negation are recomputed
            # per update with the semi-naive alternating fixpoint instead of
            # the (orders-of-magnitude slower) Figure-1 grounding path.  The
            # stratification probe is cheap; compile-time failures surface
            # at the first materialization below and demote to recompute.
            try:
                stratify_program(self._rules, allow_unstratified=True)
                self._mode = WELLFOUNDED
            except SeminaiveUnsupported:
                if strategy == WELLFOUNDED:
                    raise
        self._stats = {
            "updates": 0,
            "counting_updates": 0,
            "dred_updates": 0,
            "recompute_updates": 0,
            "stratum_fallbacks": 0,
            "rebuilds": 0,
            "recompute_mode_updates": 0,
            "wellfounded_updates": 0,
        }
        self._version = 0
        self._program_cache = None
        self._store = None
        self._intern_gc_every = intern_gc
        self._updates_since_collect = 0
        self._transactions = weakref.WeakSet()
        self._active_transaction = None
        self._update_listeners = []
        self._pinned = {}
        if _recover is not None:
            # Recovered EDB replaces the program file's seed facts — the
            # snapshot captured the post-churn extensional database.
            self._edb = set(_recover.edb)
        if _recover is not None and _recover.store is not None \
                and _recover.mode == self._mode:
            # Snapshot restore: the store (with counting-support counts)
            # and undefined partition drop in directly — no evaluation.
            self._store = _recover.store
            self._undefined = _recover.undefined
        else:
            # No usable snapshot (or the resolved mode differs from the
            # snapshot's, making its support counts meaningless):
            # materialize from the recovered EDB the slow, safe way.
            try:
                self._materialize()
            except SeminaiveUnsupported:
                # The mode probe accepted the program but compilation
                # declined (e.g. an unschedulable rule body): demote to the
                # Figure-1 recompute fallback unless the caller pinned the
                # fast mode.
                if strategy in (INCREMENTAL, WELLFOUNDED):
                    raise
                self._mode = RECOMPUTE_MODE
                self._plans = None
                self._materialize()
        # Registered weakly, and only once construction has succeeded: the
        # registry never keeps the session alive, a dead session's
        # pins/flushes drop out of collection automatically, and a session
        # whose materialization raised (the exception traceback can keep the
        # half-built object alive) never participates in collections.
        self._pin_handle = register_pin_provider(self._intern_pin_roots)
        self._flush_handle = register_flush_hook(self._flush_parse_cache)
        if path is not None or _manager is not None:
            manager = _manager
            if manager is None:
                from repro.durable.manager import DurabilityManager

                manager = DurabilityManager(
                    path, fsync=fsync, checkpoint_every=checkpoint_every,
                )
            try:
                self._attach_durability(manager, _recover, program)
            except BaseException:
                manager.close()
                self._durable = None
                raise

    # -- materialization ----------------------------------------------------

    def _full_program(self):
        """The session's program with the current EDB as facts (cached per
        version, for from-scratch recomputation and query fallbacks)."""
        if self._program_cache is not None and self._program_cache[0] == self._version:
            return self._program_cache[1]
        facts = tuple(Rule(atom) for atom in sorted(self._edb, key=repr))
        program = Program(self._rules.rules + facts)
        self._program_cache = (self._version, program)
        return program

    def _wellfounded_from_scratch(self):
        """The semi-naive well-founded model of the rules over the current
        EDB — the single source for well-founded materialization,
        :meth:`recompute_reference` and :meth:`check`."""
        return seminaive_well_founded(
            self._rules, extra_facts=sorted(self._edb, key=repr),
            max_facts=self._limits.max_facts,
            max_term_depth=self._limits.max_term_depth,
        )

    def _materialize(self):
        """(Re)compute the store — and the support counts of counting
        strata — from the rules and the current EDB."""
        if self._mode == WELLFOUNDED:
            result = self._wellfounded_from_scratch()
            self._undefined = result.undefined
            self._store = result.store
            return
        if self._mode == INCREMENTAL:
            store = RelationStore()
            for atom in self._edb:
                store.add_support(atom)
            for plans in self._plans:
                if plans.strategy == COUNTING:
                    # Non-recursive stratum: a single base pass sees every
                    # derivation exactly once — count them all.
                    materialize_counting_stratum(plans, store, self._limits)
                else:
                    evaluate_stratum(
                        plans.stratum, store,
                        max_facts=self._limits.max_facts,
                        max_term_depth=self._limits.max_term_depth,
                    )
        else:
            model = perfect_model_for_hilog(
                self._full_program(), strategy="seminaive",
                max_atoms=self._limits.max_facts,
            )
            store = RelationStore(model.true)
        self._store = store

    # -- durability ---------------------------------------------------------

    @classmethod
    def open(cls, path, strategy="auto", max_facts=1000000,
             max_term_depth=None, intern_gc=None, fsync="batch",
             checkpoint_every=None, verify=False, validate="off"):
        """Recover a durable session from its data directory.

        Loads the newest snapshot that validates (falling back past
        corrupt ones), replays the committed WAL tail through the
        maintenance machinery, and returns the live session — holding the
        directory's single-writer lock (:class:`~repro.hilog.errors.LockHeld`
        when another session already does).  ``verify=True`` finishes
        with a full :meth:`check` against a from-scratch recomputation.
        Recovery provenance (snapshot used, corrupt snapshots skipped,
        torn-tail bytes truncated, transactions replayed) is available
        under ``stats()["durability"]``.
        """
        from repro.durable.manager import DurabilityManager
        from repro.durable.recovery import load_latest_state
        from repro.hilog.errors import DurabilityError

        manager = DurabilityManager(
            path, fsync=fsync, checkpoint_every=checkpoint_every,
        )
        try:
            if not manager.initialized():
                raise DurabilityError(
                    "%r is not a durable session directory (no %s)"
                    % (path, "program.hilog")
                )
            state, corrupt = load_latest_state(manager.directory)
            manager.recovery["corrupt_snapshots"] = tuple(corrupt)
            program = state.rules_text if state is not None \
                else manager.read_program()
            session = cls(
                program, strategy=strategy, max_facts=max_facts,
                max_term_depth=max_term_depth, intern_gc=intern_gc,
                validate=validate, _manager=manager, _recover=state,
            )
        except BaseException:
            manager.close()
            raise
        if verify:
            session.check()
        return session

    def _attach_durability(self, manager, state, program):
        """Wire the durability manager in: persist the program text (fresh
        directories), open the WAL — truncating any torn tail — replay the
        committed tail past the snapshot, and leave the directory covered
        by a checkpoint."""
        from repro.durable.recovery import replay

        fresh = not manager.initialized()
        if self._program_text is None:
            from repro.hilog.pretty import format_program

            self._program_text = format_program(self._full_program())
        if fresh:
            manager.write_program(self._program_text)
        self._durable = manager
        wal = manager.open_wal()
        if not fresh:
            since = state.txn if state is not None else 0
            manager.recovery["snapshot_txn"] = (
                state.txn if state is not None else None
            )
            batches = [b for b in wal.committed if b.txn > since]
            manager.suspended = True
            try:
                txns, facts = replay(self, batches)
            finally:
                manager.suspended = False
            manager.recovery["replayed_txns"] = txns
            manager.recovery["replayed_facts"] = facts
            manager.records_since_checkpoint = txns
        wal.committed = []
        if fresh or manager.should_checkpoint():
            # A fresh directory gets an immediate checkpoint so recovery
            # never needs a from-scratch rematerialization; a recovered one
            # re-checkpoints only when the replayed tail already exceeds
            # the checkpoint interval.
            self.checkpoint()

    def checkpoint(self, store=None, undefined=None):
        """Write a snapshot checkpoint now (atomic temp + fsync + rename);
        returns its path.  ``store``/``undefined`` override the serialized
        source — the serving layer passes a pinned frozen epoch so
        checkpointing never blocks concurrent readers; support counts
        always come from the live store (the two are identical between
        writer batches, which is when this runs).  Raises
        :class:`SessionError` for sessions without a data directory."""
        if self._durable is None:
            raise SessionError(
                "session has no data directory (construct with path=... or "
                "DatabaseSession.open)"
            )
        return self._durable.checkpoint(
            rules_text=self._program_text, mode=self._mode, edb=self._edb,
            store=self._store if store is None else store,
            undefined=self._undefined if undefined is None else undefined,
            supports=self._store._supports,
        )

    def close(self, checkpoint=True):
        """Shut a durable session down cleanly: take a final checkpoint
        (when anything was logged since the last one), fsync and close the
        WAL, release the directory lock.  Idempotent; a no-op for sessions
        without a data directory.  The session's in-memory side stays
        queryable, but further updates raise — reopen with
        :meth:`DatabaseSession.open`."""
        durable = self._durable
        if durable is None or durable.closed:
            return
        if checkpoint and durable.records_since_checkpoint:
            self.checkpoint()
        durable.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    # -- fact coercion ------------------------------------------------------

    def _coerce_facts(self, facts):
        """Normalize user input into a list of ground atoms.

        Accepts a :class:`Term`, a fact :class:`Rule`, program text holding
        only facts, or an iterable of any of those.  Parsed fact strings are
        memoized (terms are interned and immutable, so the cached atoms are
        the canonical objects): update streams re-asserting the same facts
        skip the lexer/parser entirely.
        """
        if isinstance(facts, str):
            cached = self._parse_cache.get(facts)
            if cached is not None:
                return list(cached)
            program = parse_program(facts if facts.rstrip().endswith(".") else facts + ".")
            atoms = []
            for rule in program.rules:
                if not rule.is_fact():
                    raise ValueError("updates must be facts, got rule %r" % (rule,))
                atoms.append(rule.head)
        elif isinstance(facts, Term):
            atoms = [facts]
        elif isinstance(facts, Rule):
            if not facts.is_fact():
                raise ValueError("updates must be facts, got rule %r" % (facts,))
            atoms = [facts.head]
        else:
            atoms = []
            for item in facts:
                atoms.extend(self._coerce_facts(item))
        for atom in atoms:
            if not atom.is_ground():
                raise GroundingError("cannot assert/retract non-ground %r" % (atom,))
        if isinstance(facts, str):
            if len(self._parse_cache) >= 4096:
                self._parse_cache.clear()
            self._parse_cache[facts] = tuple(atoms)
        return atoms

    def _coerce_in_generation(self, facts):
        """Coerce staged facts inside a (short) intern generation, so parse
        transients stay evictable even when staging and commit straddle a
        collection (the staged atoms themselves are pinned through the
        session's transaction registry)."""
        with intern_generation():
            return self._coerce_facts(facts)

    # -- intern-table housekeeping ------------------------------------------

    def _intern_pin_roots(self):
        """Root terms this session retains — the pin set every intern
        collection must keep: stored atoms (IDB + EDB), asserted facts,
        rule terms (covering every compiled-plan constant), and the atoms
        staged in live transactions."""
        yield from self._store.pin_roots()
        yield from self._edb
        yield from self._undefined
        yield from self._pinned
        yield from self._rules.pin_roots()
        if self._plans is not None:
            for plans in self._plans:
                yield from plans.pin_roots()
        for transaction in tuple(self._transactions):
            for _action, atom in transaction._ops:
                yield atom

    def _flush_parse_cache(self):
        """Flush-hook target: drop memoized fact-string parses so the cache
        neither pins evicted-generation atoms nor hands out stale (formerly
        canonical) objects after a collection."""
        self._parse_cache.clear()

    def add_update_listener(self, listener):
        """Register ``listener(summary)`` to run after every applied update
        (insert/retract/update/transaction commit), before any automatic
        intern sweep — the **epoch publication hook** the serving layer
        (:mod:`repro.serve`) uses to turn each maintained batch into an
        immutable reader snapshot while the summary's atoms are still
        guaranteed canonical.  Listeners run on the updating thread, in
        registration order; exceptions propagate to the updater."""
        self._update_listeners.append(listener)
        return listener

    def remove_update_listener(self, listener):
        """Unregister a listener added by :meth:`add_update_listener`
        (no-op when absent)."""
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def _after_update(self, result):
        """Post-update bookkeeping: notify update listeners (the serving
        layer's epoch publication hook), then trigger the automatic intern
        sweep when ``intern_gc`` is configured (skipped while any generation
        is open — an enclosing computation's terms are not yet pinnable).
        The update's own summary is pinned through the sweep: its removed
        atoms just left the store, but the caller has not even received them
        yet, so evicting them here would hand back stale twins."""
        for listener in tuple(self._update_listeners):
            listener(result)
        self._updates_since_collect += 1
        every = self._intern_gc_every
        if every is not None and self._updates_since_collect >= every \
                and current_generation() == 0:
            self.collect(
                pins=result.added + result.removed
                + result.undefined_added + result.undefined_removed
            )

    def pin(self, terms):
        """Keep ``terms`` (a :class:`~repro.hilog.terms.Term` or an iterable
        of them) canonical across every future collection, including the
        automatic ``intern_gc`` sweeps, until :meth:`unpin`.

        This is the retention mechanism for results the session handed out
        — :class:`UpdateSummary` atoms, since-retracted query answers —
        that a caller keeps beyond the next update: automatic sweeps pin
        only the *pending* update's summary, so older held atoms would
        otherwise be evicted and stop matching the live model (terms
        compare by identity).  Re-obtaining a term at top level (parsing
        its text while no generation is open) promotes it to immortal and
        is the zero-bookkeeping alternative.
        """
        if isinstance(terms, Term):
            terms = (terms,)
        for term in terms:
            if not isinstance(term, Term):
                raise TypeError("pin() takes Terms, got %r" % (term,))
            self._pinned[term] = None

    def unpin(self, terms=None):
        """Release pins taken by :meth:`pin` (all of them when ``terms`` is
        ``None``); the terms become reclaimable at the next collection."""
        if terms is None:
            self._pinned.clear()
            return
        if isinstance(terms, Term):
            terms = (terms,)
        for term in terms:
            self._pinned.pop(term, None)

    def collect(self, pins=()):
        """Sweep the global term intern tables: evict every term born in a
        closed generation (this session's past updates, other sessions',
        explicit :func:`~repro.hilog.terms.intern_generation` blocks) that
        no registered pin provider — and no root in ``pins`` — reaches.

        With churn-heavy workloads this is what keeps
        :func:`~repro.hilog.terms.intern_table_sizes` bounded by the *live*
        fact volume instead of growing with every constant ever seen.  Pass
        ``pins`` for terms you received from the session and still hold —
        :meth:`query` answers and :class:`UpdateSummary` atom tuples pin
        directly (``collect(pins=answers)``), substitutions through
        ``Substitution.pin_roots()``.  Returns the collection stats dict.
        """
        started = _perf_counter()
        stats = collect_generation(pins=pins)
        # Reset only after a successful sweep: a GenerationError (collect
        # inside an open generation) must not postpone the next auto-gc.
        self._updates_since_collect = 0
        duration = _perf_counter() - started
        get_registry().histogram(
            "repro_session_collect_seconds", "Intern-table sweep latency",
            family="session",
        ).observe(duration)
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit("collect", duration_s=duration,
                        **{key: value for key, value in stats.items()
                           if isinstance(value, (int, float))})
        return stats

    # -- updates ------------------------------------------------------------

    def insert(self, facts):
        """Assert facts; maintain the model.  Returns an :class:`UpdateSummary`."""
        with intern_generation():
            result = self._apply(self._coerce_facts(facts), [])
        self._after_update(result)
        return result

    def retract(self, facts):
        """Retract facts; maintain the model.  Returns an :class:`UpdateSummary`."""
        with intern_generation():
            result = self._apply([], self._coerce_facts(facts))
        self._after_update(result)
        return result

    def update(self, inserts=(), retracts=()):
        """Apply assertions and retractions as one batch."""
        with intern_generation():
            result = self._apply(
                self._coerce_facts(inserts), self._coerce_facts(retracts)
            )
        self._after_update(result)
        return result

    def transaction(self):
        """A :class:`Transaction` staging updates for one atomic commit.

        Raises :class:`SessionError` while a previously opened transaction
        is still staging (not yet committed or rolled back): interleaving
        two staging batches on one session corrupts the last-operation-wins
        merge and the pin bookkeeping, so re-entrant/nested use is rejected
        up front.  A transaction that is simply dropped (garbage collected)
        without closing releases the slot."""
        active = self._active_transaction() \
            if self._active_transaction is not None else None
        if active is not None and not active._closed:
            raise SessionError(
                "a transaction is already open on this session; commit or "
                "roll it back before opening another (nested/re-entrant "
                "transactions are not supported)"
            )
        transaction = Transaction(self)
        self._active_transaction = weakref.ref(transaction)
        return transaction

    def _owning_stratum(self, atom):
        """The stratum index defining the atom's predicate, or ``None`` for
        purely extensional predicates."""
        indicator = predicate_indicator(atom)
        owner = self._owner.get(indicator)
        if owner is not None:
            return owner
        return self._unknown_stratum

    def _apply(self, inserts, retracts):
        """One maintained update batch, wrapped in the observability layer:
        per-update latency/size metrics (family ``"session"``) and, when a
        tracer is installed, a ``maintenance`` span carrying the register
        executor's fetch/candidate deltas."""
        started = _perf_counter()
        tracer = current_tracer()
        stats_before = EXECUTION_STATS.snapshot() if tracer is not None else None
        registry = get_registry()
        # Durable sessions log the batch ahead of the apply (begin + op
        # frames), then seal it with a commit frame only after the
        # in-memory maintenance succeeded — replay must never redo a batch
        # that raised and rolled back.  A crash between the two leaves a
        # dangling begin, which recovery skips: observably, the batch
        # never happened and its caller was never acknowledged.
        durable = self._durable
        txn = None
        if durable is not None:
            if durable.closed:
                raise SessionError(
                    "durable session is closed; reopen with "
                    "DatabaseSession.open(%r)" % durable.directory
                )
            if durable.active and (inserts or retracts):
                txn = durable.log_begin(inserts, retracts)
        try:
            result = self._apply_inner(inserts, retracts)
        except Exception:
            if txn is not None:
                durable.log_abort(txn)
            registry.counter(
                "repro_session_update_failures",
                "Update batches that raised", family="session",
            ).inc()
            raise
        if txn is not None:
            durable.log_commit(txn)
            if durable.should_checkpoint():
                self.checkpoint()
        duration = _perf_counter() - started
        registry.counter(
            "repro_session_updates", "Update batches applied",
            family="session",
        ).inc()
        registry.histogram(
            "repro_session_update_seconds", "Update batch latency",
            family="session",
        ).observe(duration)
        registry.histogram(
            "repro_session_batch_facts",
            "EDB facts touched per update batch", family="session",
            buckets=COUNT_BUCKETS,
        ).observe(result.inserted + result.retracted)
        if tracer is not None:
            stats = EXECUTION_STATS.diff(stats_before)
            tracer.emit(
                "maintenance", mode=result.mode,
                inserted=result.inserted, retracted=result.retracted,
                added=len(result.added), removed=len(result.removed),
                strata=result.strata_touched, duration_s=duration,
                fetches=stats["fetches"], candidates=stats["candidates"],
                alternations=stats["alternations"],
            )
        return result

    def _apply_inner(self, inserts, retracts):
        overlap = set(inserts) & set(retracts)
        if overlap:
            raise ValueError(
                "atoms both inserted and retracted in one batch: %s"
                % sorted(map(repr, overlap))
            )
        ins = [atom for atom in dict.fromkeys(inserts) if atom not in self._edb]
        rem = [atom for atom in dict.fromkeys(retracts) if atom in self._edb]
        self._edb.update(ins)
        self._edb.difference_update(rem)
        self._version += 1
        self._stats["updates"] += 1

        if self._mode != INCREMENTAL:
            return self._apply_by_recompute(ins, rem)

        delta = Delta()
        base_ins, base_rem = [], []
        stratum_ins, stratum_rem = {}, {}
        for atom in ins:
            owner = self._owning_stratum(atom)
            if owner is None:
                base_ins.append(atom)
            else:
                stratum_ins.setdefault(owner, []).append(atom)
        for atom in rem:
            owner = self._owning_stratum(atom)
            if owner is None:
                base_rem.append(atom)
            else:
                stratum_rem.setdefault(owner, []).append(atom)

        try:
            for atom in base_ins:
                self._limits.check(atom, self._store)
                if self._store.add_support(atom):
                    delta.record_add(atom)
            for atom in base_rem:
                if self._store.remove_support(atom):
                    delta.record_remove(atom)

            touched = 0
            for index, plans in enumerate(self._plans):
                edb_added = stratum_ins.get(index, [])
                edb_removed = stratum_rem.get(index, [])
                if not edb_added and not edb_removed and not delta.touches(plans.reads):
                    continue
                touched += 1
                self._maintain_stratum(plans, delta, edb_added, edb_removed)
        except HiLogError as error:
            # Disaster path: the incremental machinery failed mid-update
            # (resource cap, integrity check) and may have left the store
            # half-mutated.  Rebuild the *pre-update* model first so the
            # summary can report an accurate diff, then rebuild with the
            # new EDB; if the latter fails (the update itself is
            # unevaluable, e.g. it blows the fact cap), stay at the
            # pre-update state and surface the failure.
            self._stats["rebuilds"] += 1
            self._edb.difference_update(ins)
            self._edb.update(rem)
            self._version += 1
            self._materialize()
            old_true = frozenset(self._store)
            self._edb.update(ins)
            self._edb.difference_update(rem)
            self._version += 1
            try:
                self._materialize()
            except HiLogError:
                self._edb.difference_update(ins)
                self._edb.update(rem)
                self._version += 1
                self._materialize()
                raise error
            new_true = frozenset(self._store)
            return UpdateSummary(
                inserted=len(ins),
                retracted=len(rem),
                added=tuple(new_true - old_true),
                removed=tuple(old_true - new_true),
                strata_touched=0,
                mode="rebuild",
            )

        return UpdateSummary(
            inserted=len(ins),
            retracted=len(rem),
            added=tuple(delta.added),
            removed=tuple(delta.removed),
            strata_touched=touched,
            mode=INCREMENTAL,
        )

    def _maintain_stratum(self, plans, delta, edb_added, edb_removed):
        try:
            if plans.strategy == COUNTING:
                counting_update(
                    plans, self._store, delta, edb_added, edb_removed, self._limits
                )
                self._stats["counting_updates"] += 1
            elif plans.strategy == DRED:
                dred_update(
                    plans, self._store, delta, self._edb, edb_added, edb_removed,
                    self._limits,
                )
                self._stats["dred_updates"] += 1
            else:
                recompute_stratum(plans, self._store, delta, self._edb, self._limits)
                self._stats["recompute_updates"] += 1
        except HiLogError:
            if plans.strategy == RECOMPUTE or plans.head_indicators is None:
                raise
            # A delta invalidated the settled stratum in a way the
            # incremental step could not absorb: recompute just this stratum.
            self._stats["stratum_fallbacks"] += 1
            recompute_stratum(plans, self._store, delta, self._edb, self._limits)

    def _apply_by_recompute(self, ins, rem):
        old_true = frozenset(self._store)
        old_undefined = self._undefined
        if self._mode == WELLFOUNDED:
            self._stats["wellfounded_updates"] += 1
        else:
            self._stats["recompute_mode_updates"] += 1
        try:
            self._materialize()
        except HiLogError:
            # Roll the EDB change back; the update made the program
            # unevaluable (e.g. no longer modularly stratified).
            self._edb.difference_update(ins)
            self._edb.update(rem)
            self._version += 1
            raise
        new_true = frozenset(self._store)
        return UpdateSummary(
            inserted=len(ins),
            retracted=len(rem),
            added=tuple(new_true - old_true),
            removed=tuple(old_true - new_true),
            strata_touched=0,
            mode=self._mode,
            undefined_added=tuple(self._undefined - old_undefined),
            undefined_removed=tuple(old_undefined - self._undefined),
        )

    # -- reads --------------------------------------------------------------

    def __len__(self):
        return len(self._store)

    def __contains__(self, atom):
        return atom in self._store

    def ask(self, atom):
        """Whether a ground atom is *true* in the maintained model.

        In well-founded mode the model may be partial: an undefined atom
        answers ``False`` here (it is not certainly true) — use
        :meth:`value` for the three-valued verdict.
        """
        if isinstance(atom, str):
            with intern_generation():
                atom = parse_term(atom)
        if not atom.is_ground():
            raise GroundingError("ask() needs a ground atom, got %r" % (atom,))
        return atom in self._store

    def value(self, atom):
        """The three-valued verdict for a ground atom: ``"true"``,
        ``"undefined"`` or ``"false"`` (closed world).  Outside well-founded
        mode the maintained model is total, so this never answers
        ``"undefined"``."""
        if isinstance(atom, str):
            with intern_generation():
                atom = parse_term(atom)
        if not atom.is_ground():
            raise GroundingError("value() needs a ground atom, got %r" % (atom,))
        if atom in self._store:
            return "true"
        if atom in self._undefined:
            return "undefined"
        return "false"

    def explain(self, fact):
        """Why is this ground atom true (or undefined)?  Returns a
        :class:`~repro.obs.explain.Derivation` tree.

        A true atom gets a proof: a rule instance re-verified against the
        store, its positive body facts recursively explained down to the
        EDB (in incremental mode the maintenance bundles' head-bound
        rederivation plans pre-filter candidate rules, and counting-stratum
        support counts annotate each node).  In well-founded mode an
        undefined atom gets a negation-loop witness: a chain of
        overestimate rule instances hinging on undefined subgoals until the
        chain bites its own tail — the negation SCC the alternating
        fixpoint could not resolve.  A false atom returns a single
        ``"false"`` node.  Raises
        :class:`~repro.obs.explain.ExplainError` for non-ground input and
        atoms derivable only through aggregates.
        """
        from repro.obs.explain import ExplainError, explain_atom

        if isinstance(fact, str):
            with intern_generation():
                fact = parse_term(fact)
        if not isinstance(fact, Term):
            raise ExplainError("explain() takes a ground atom or its text, "
                               "got %r" % (fact,))
        return explain_atom(
            fact, self._rules, self._store,
            edb=frozenset(self._edb), undefined=self._undefined,
            plans=self._plans,
        )

    def query(self, query):
        """Answer a query against the maintained model.

        Every query is answered straight from the store's indexes (the
        session-backed path of
        :func:`repro.core.magic.evaluate.answer_from_store`): the store
        holds exactly the model's *true* atoms, so the evaluating paths'
        answer contract — the true ground instances of the first query
        atom — reduces to an indexed match, whatever the query's shape.
        In well-founded mode the model may be partial: undefined instances
        are not certainly true and hence never answered — inspect
        :attr:`undefined` / :meth:`value` for the third truth value.
        """
        if isinstance(query, str):
            with intern_generation():
                query = parse_query(query)
        if isinstance(query, Term):
            query = (Literal(query),)
        else:
            query = tuple(query)
        if not query:
            raise ValueError("empty query")
        return answer_from_store(self._store, query).answers

    @property
    def true(self):
        """The maintained model's true atoms (a fresh frozenset, O(n))."""
        return frozenset(self._store)

    @property
    def undefined(self):
        """The maintained model's undefined atoms (empty outside
        well-founded mode — the other modes maintain total models)."""
        return self._undefined

    def is_total(self):
        """True when the maintained model leaves nothing undefined."""
        return not self._undefined

    def model(self):
        """The maintained model as an :class:`Interpretation`: total in
        incremental/recompute mode, possibly partial (true atoms explicit,
        undefined atoms in the base) in well-founded mode."""
        true = frozenset(self._store)
        return Interpretation(true=true, base=true | self._undefined)

    def facts(self, name, arity):
        """The maintained extension of one predicate indicator."""
        if isinstance(name, str):
            with intern_generation():
                name = parse_term(name)
        return tuple(self._store.facts(name, arity))

    def edb(self):
        """The current extensional database (asserted facts)."""
        return frozenset(self._edb)

    @property
    def mode(self):
        """``"incremental"``, ``"wellfounded"`` or ``"recompute"``."""
        return self._mode

    @property
    def diagnostics(self):
        """The lint report produced at construction, or ``None`` when the
        session was opened with ``validate="off"``."""
        return self._diagnostics

    @property
    def store(self):
        """The backing relation store (treat as read-only)."""
        return self._store

    def strategies(self):
        """Maintenance strategy per stratum (empty in recompute mode)."""
        if self._plans is None:
            return ()
        return tuple(plans.strategy for plans in self._plans)

    def stats(self):
        """Counters and sizes describing the session so far."""
        info = dict(self._stats)
        info.update(
            mode=self._mode,
            facts=len(self._store),
            undefined_facts=len(self._undefined),
            edb_facts=len(self._edb),
            strata=len(self._plans) if self._plans is not None else 0,
            strategies=self.strategies(),
            store=self._store.stats(),
            intern=intern_table_sizes(),
            updates_since_collect=self._updates_since_collect,
        )
        if self._diagnostics is not None:
            info["lint"] = {
                "errors": len(self._diagnostics.errors),
                "warnings": len(self._diagnostics.warnings),
            }
        if self._durable is not None:
            info["durability"] = self._durable.stats()
        return info

    def recompute_reference(self):
        """The from-scratch model the session's mode is accountable to.

        Incremental sessions replay :func:`~repro.engine.seminaive.seminaive_evaluate`
        (stratum-by-stratum semantics, aggregates folding over the full
        condition extension); well-founded sessions replay
        :func:`~repro.engine.seminaive.wellfounded.seminaive_well_founded`;
        recompute sessions replay the Figure-1 procedure they are built on.
        Returns a frozenset of true atoms.
        """
        # The evaluation's transient terms live in their own generation, so
        # paranoid deployments calling check() under churn do not accrete
        # immortal intermediates.  Atoms of the returned model that are in
        # the maintained store stay pinned through it; divergent atoms are
        # sweepable once the caller lets go of the result.
        with intern_generation():
            if self._mode == INCREMENTAL:
                return seminaive_evaluate(
                    self._rules, extra_facts=sorted(self._edb, key=repr),
                    max_facts=self._limits.max_facts,
                    max_term_depth=self._limits.max_term_depth,
                ).true
            if self._mode == WELLFOUNDED:
                return self._wellfounded_from_scratch().true
            return perfect_model_for_hilog(
                self._full_program(), strategy="seminaive",
                max_atoms=self._limits.max_facts,
            ).true

    def check(self):
        """Verify the maintained model against a from-scratch recomputation
        (:meth:`recompute_reference`); well-founded sessions additionally
        verify the undefined partition.

        As the module docstring notes, each mode is accountable to the
        evaluator it is built on: for incremental sessions this catches
        maintenance-algorithm bugs, while for recompute/well-founded
        sessions — which already rematerialize through the same evaluator
        on every update — it validates the session's state bookkeeping
        (EDB tracking, rollbacks, partition sync), not the evaluator
        itself.  Engine correctness is covered independently by the
        differential harness against the ground oracles
        (``tests/engine/test_wellfounded_agreement.py``).

        Returns ``True`` on agreement; raises :class:`SessionIntegrityError`
        with sample differences otherwise.  Intended for tests, benchmarks
        and paranoid deployments — it costs a full evaluation.
        """
        scratch_undefined = self._undefined
        if self._mode == WELLFOUNDED:
            with intern_generation():
                reference = self._wellfounded_from_scratch()
            scratch = reference.true
            scratch_undefined = reference.undefined
        else:
            scratch = self.recompute_reference()
        maintained = frozenset(self._store)
        if maintained == scratch and self._undefined == scratch_undefined:
            return True
        missing = sorted(map(repr, (scratch - maintained)
                             | (scratch_undefined - self._undefined)))[:5]
        spurious = sorted(map(repr, (maintained - scratch)
                              | (self._undefined - scratch_undefined)))[:5]
        raise SessionIntegrityError(
            "maintained model diverged from recomputation: missing %s, "
            "spurious %s" % (missing, spurious)
        )


def open_session(program, **kwargs):
    """Convenience constructor: ``open_session(text_or_program, ...)``."""
    return DatabaseSession(program, **kwargs)
