"""Part hierarchies and the parts-explosion program (Section 6).

The paper solves the parts-explosion problem generically with a HiLog
program over per-machine part relations ``part_i(X, Y, N)`` ("X has N copies
of Y as an immediate subpart in machine i"), an ``assoc`` relation mapping a
machine name to its part relation, recursive multiplication and a grouped
sum aggregate::

    in(Mach, X, Y, null, N)  <- assoc(Mach, Part), Part(X, Y, N).
    in(Mach, X, Y, Z, N)     <- assoc(Mach, Part), Part(X, Z, P),
                                contains(Mach, Z, Y, M), N = P * M.
    contains(Mach, X, Y, N)  <- N = sum(P : in(Mach, X, Y, _, P)).

``bicycle_parts_program`` builds the paper's running example (a bicycle with
two wheels of 47 spokes each, so a bicycle contains 94 spokes);
``random_hierarchy`` generates acyclic hierarchies of configurable depth for
the benchmark.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.hilog.parser import parse_program
from repro.hilog.program import Program

PARTS_EXPLOSION_RULES = """
in(Mach, X, Y, null, N) :- assoc(Mach, Part), Part(X, Y, N).
in(Mach, X, Y, Z, N) :- assoc(Mach, Part), Part(X, Z, P), contains(Mach, Z, Y, M), N = P * M.
contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, Z, P)).
"""


def parts_explosion_program(machines):
    """Build the parts-explosion HiLog program.

    ``machines`` maps a machine name to a dict ``{relation_name: [(whole,
    part, count), ...]}`` — usually one relation per machine, as in the
    paper's ``assoc`` discussion.
    """
    lines = [PARTS_EXPLOSION_RULES]
    for machine in sorted(machines):
        for relation in sorted(machines[machine]):
            lines.append("assoc(%s, %s)." % (machine, relation))
            for whole, part, count in machines[machine][relation]:
                lines.append("%s(%s, %s, %d)." % (relation, whole, part, count))
    return parse_program("\n".join(lines))


def bicycle_parts_program():
    """The paper's bicycle example: two wheels per bicycle, 47 spokes per wheel."""
    machines = {
        "bike": {
            "part_bike": [
                ("bicycle", "wheel", 2),
                ("bicycle", "frame", 1),
                ("wheel", "spoke", 47),
                ("wheel", "rim", 1),
                ("frame", "tube", 3),
            ]
        }
    }
    return parts_explosion_program(machines)


def random_hierarchy(levels, parts_per_level=3, fanout=2, max_count=4, seed=0, prefix="p"):
    """A random acyclic part hierarchy.

    Parts are organized in ``levels`` layers of ``parts_per_level`` parts
    each; every part has ``fanout`` immediate subparts drawn from the next
    layer with counts in ``1..max_count``.  Returns a list of
    ``(whole, part, count)`` triples.
    """
    rng = random.Random(seed)
    layers = [
        ["%s_%d_%d" % (prefix, level, index) for index in range(parts_per_level)]
        for level in range(levels)
    ]
    triples = []
    for level in range(levels - 1):
        for whole in layers[level]:
            subparts = rng.sample(layers[level + 1], min(fanout, len(layers[level + 1])))
            for part in subparts:
                triples.append((whole, part, rng.randint(1, max_count)))
    return triples


def expected_containment(triples):
    """Reference implementation of parts explosion in plain Python.

    Returns a dict ``(whole, part) -> total count`` over the transitive
    containment relation, used by tests and benchmarks to validate the HiLog
    program's answers.
    """
    direct = {}
    children = {}
    for whole, part, count in triples:
        direct[(whole, part)] = direct.get((whole, part), 0) + count
        children.setdefault(whole, []).append((part, count))

    totals = {}

    def totals_from(node, seen):
        result = {}
        for child, count in children.get(node, ()):
            result[child] = result.get(child, 0) + count
            if child in seen:
                raise ValueError("part hierarchy is cyclic at %r" % (child,))
            for descendant, sub_count in totals_from(child, seen | {child}).items():
                result[descendant] = result.get(descendant, 0) + count * sub_count
        return result

    nodes = set(children)
    for whole, part, _count in triples:
        nodes.add(whole)
        nodes.add(part)
    for node in nodes:
        for descendant, count in totals_from(node, {node}).items():
            totals[(node, descendant)] = count
    return totals
