"""Update-sequence builders for incremental-maintenance workloads.

The one-shot workload generators (:mod:`repro.workloads.closure`,
:mod:`repro.workloads.games`) produce static programs; this module produces
*streams of updates* against them — the scenarios a long-lived
:class:`~repro.db.session.DatabaseSession` exists for.  A stream is a list
of :class:`Update` steps, each an ``insert`` or ``retract`` of a batch of
ground facts; :func:`replay` pushes a stream through a session (optionally
verifying the maintained model against a from-scratch recomputation after
every step, as the E11 benchmark and the property tests do).

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import NamedTuple, Tuple

from repro.hilog.terms import App, Sym, Term

INSERT = "insert"
RETRACT = "retract"


class Update(NamedTuple):
    """One step of an update stream."""

    #: ``"insert"`` or ``"retract"``.
    action: str
    #: The ground atoms of the batch.
    atoms: Tuple[Term, ...]


def edge_atom(relation, source, target):
    """The ground atom ``relation(source, target)``."""
    return App(Sym(relation), (Sym(source), Sym(target)))


def _edge_atoms(relation, edges):
    return tuple(edge_atom(relation, source, target) for source, target in edges)


def insert_edges(relation, edges):
    """An ``insert`` update of edge facts."""
    return Update(INSERT, _edge_atoms(relation, edges))


def retract_edges(relation, edges):
    """A ``retract`` update of edge facts."""
    return Update(RETRACT, _edge_atoms(relation, edges))


def edge_churn_stream(base_edges, relation="e", operations=40, batch=1,
                      node_pool=None, seed=0):
    """Random single/batched edge inserts and retracts over a base edge set.

    Starts from ``base_edges`` (assumed already loaded into the session) and
    alternates randomly between inserting fresh edges drawn from
    ``node_pool`` (default: the nodes of the base edges) and retracting
    currently-present edges.  Returns a list of :class:`Update`.
    """
    rng = random.Random(seed)
    present = set(base_edges)
    if node_pool is None:
        nodes = sorted({n for edge in base_edges for n in edge})
    else:
        nodes = list(node_pool)
    stream = []
    for _ in range(operations):
        retractable = sorted(present)
        if retractable and (rng.random() < 0.5 or len(nodes) < 2):
            chosen = [retractable[rng.randrange(len(retractable))]
                      for _ in range(batch)]
            chosen = list(dict.fromkeys(chosen))
            present.difference_update(chosen)
            stream.append(retract_edges(relation, chosen))
        else:
            fresh = []
            for _ in range(batch * 4):
                if len(fresh) >= batch:
                    break
                source = nodes[rng.randrange(len(nodes))]
                target = nodes[rng.randrange(len(nodes))]
                if source != target and (source, target) not in present:
                    fresh.append((source, target))
                    present.add((source, target))
            if not fresh:
                continue
            stream.append(insert_edges(relation, fresh))
    return stream


def growing_chain_stream(start, length, relation="e", prefix="n"):
    """Extend a chain one edge at a time: ``n<start> -> ... -> n<start+length>``.

    The scenario behind the E11 headline numbers — appending to a
    transitive-closure session where every insert touches a fresh suffix.
    """
    return [
        insert_edges(relation, [("%s%d" % (prefix, i), "%s%d" % (prefix, i + 1))])
        for i in range(start, start + length)
    ]


def sliding_window_stream(edges, relation="e", window=20):
    """Stream a fixed-size window over an edge list: each step inserts the
    next edge and retracts the one falling out of the window (the classic
    stream-join churn shape)."""
    stream = []
    for index, edge in enumerate(edges):
        stream.append(insert_edges(relation, [edge]))
        if index >= window:
            stream.append(retract_edges(relation, [edges[index - window]]))
    return stream


def win_move_stream(nodes, base_edges, relation="m", operations=30, seed=0,
                    prefix="d"):
    """Edge churn over a win/move game graph, kept acyclic.

    Nodes are ``<prefix>0 .. <prefix><nodes-1>`` and every edge goes from a
    lower-numbered node to a higher one, so the game stays modularly
    stratified (a DAG) under every prefix of the stream — the recompute-mode
    session scenario.
    """
    rng = random.Random(seed)
    present = set(base_edges)
    stream = []
    for _ in range(operations):
        retractable = sorted(present)
        if retractable and rng.random() < 0.5:
            edge = retractable[rng.randrange(len(retractable))]
            present.discard(edge)
            stream.append(retract_edges(relation, [edge]))
        elif nodes >= 2:
            source = rng.randrange(0, nodes - 1)
            target = rng.randrange(source + 1, nodes)
            edge = ("%s%d" % (prefix, source), "%s%d" % (prefix, target))
            if edge in present:
                continue
            present.add(edge)
            stream.append(insert_edges(relation, [edge]))
    return stream


def replay(session, stream, verify=False, on_step=None):
    """Push a stream of :class:`Update` steps through a session.

    With ``verify=True`` the maintained model is checked against a
    from-scratch recomputation after every step (slow — for tests and
    benchmarks).  ``on_step(index, update, summary)`` is called after each
    step when given.  Returns the list of
    :class:`~repro.db.session.UpdateSummary` results.
    """
    summaries = []
    for index, update in enumerate(stream):
        if update.action == INSERT:
            summary = session.insert(update.atoms)
        elif update.action == RETRACT:
            summary = session.retract(update.atoms)
        else:
            raise ValueError("unknown stream action %r" % (update.action,))
        summaries.append(summary)
        if verify:
            session.check()
        if on_step is not None:
            on_step(index, update, summary)
    return summaries
