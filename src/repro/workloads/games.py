"""The win/move game programs of Examples 6.1, 6.3 and 6.6.

Three formulations are provided:

* :func:`normal_game_program` — the normal program of Example 6.1,
  ``winning(X) <- move(X, Y), not winning(Y)`` over a single move relation.
* :func:`hilog_game_program` — the parameterized HiLog program of
  Example 6.3, ``winning(M)(X) <- game(M), M(X, Y), not winning(M)(Y)``.
* :func:`datahilog_game_program` — the Datahilog version of Section 6.1,
  ``winning(M, X) <- game(M), M(X, Y), not winning(M, Y)``, whose relevant
  atoms are finite by Lemma 6.3.

``multi_game_program`` builds a HiLog (or Datahilog) game program over many
independent move relations — the workload used by the magic-sets benchmark,
where a query about one game should not touch the others.

For the non-stratified class — win/move over graphs *with cycles*, whose
well-founded model is genuinely three-valued — the module provides cyclic
game builders (:func:`cycle_game_program`, :func:`line_into_cycle_game_program`,
:func:`cycle_with_escape_game_program`, :func:`composed_move_game_program`)
plus :func:`win_move_partition`, an independent game-theoretic reference
for the exact winning/losing/undefined partition: a position is *winning*
when some move reaches a losing position, *losing* when every move (possibly
none) reaches a winning position, and *undefined* otherwise — which is the
well-founded model of the win/move program (every pure cycle is undefined,
lines alternate, an escape edge from a cycle resolves it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.hilog.parser import parse_program
from repro.hilog.program import Program
from repro.workloads.graphs import cycle_edges


def _fact_lines(relation, edges):
    return ["%s(%s, %s)." % (relation, source, target) for source, target in edges]


def normal_game_program(edges, move_name="move", winning_name="winning"):
    """Example 6.1: the normal win/move program over the given edges."""
    lines = ["%s(X) :- %s(X, Y), not %s(Y)." % (winning_name, move_name, winning_name)]
    lines.extend(_fact_lines(move_name, edges))
    return parse_program("\n".join(lines))


def hilog_game_program(games, game_name="game", winning_name="winning"):
    """Example 6.3: the parameterized HiLog win/move program.

    ``games`` maps a move-relation name (e.g. ``"move1"``) to its edge list.
    """
    lines = [
        "%s(M)(X) :- %s(M), M(X, Y), not %s(M)(Y)."
        % (winning_name, game_name, winning_name)
    ]
    for relation in sorted(games):
        lines.append("%s(%s)." % (game_name, relation))
    for relation in sorted(games):
        lines.extend(_fact_lines(relation, games[relation]))
    return parse_program("\n".join(lines))


def datahilog_game_program(games, game_name="game", winning_name="winning"):
    """The Datahilog variant ``winning(M, X)`` of the same game (Section 6.1)."""
    lines = [
        "%s(M, X) :- %s(M), M(X, Y), not %s(M, Y)."
        % (winning_name, game_name, winning_name)
    ]
    for relation in sorted(games):
        lines.append("%s(%s)." % (game_name, relation))
    for relation in sorted(games):
        lines.extend(_fact_lines(relation, games[relation]))
    return parse_program("\n".join(lines))


def cycle_game_program(length, move_name="move", winning_name="winning", prefix="c"):
    """Win/move over a directed cycle of ``length`` nodes.

    A pure cycle has no sink, so no position is certainly losing and the
    well-founded model leaves *every* ``winning`` atom undefined — for even
    and odd lengths alike (parity distinguishes the stable models, not the
    well-founded one).  Returns ``(program, nodes)``.
    """
    edges = cycle_edges(length, prefix)
    nodes = [prefix + str(i) for i in range(length)]
    return normal_game_program(edges, move_name, winning_name), nodes


def line_into_cycle_game_program(line_length, cycle_length, move_name="move",
                                 winning_name="winning", line_prefix="t",
                                 cycle_prefix="c"):
    """A line of ``line_length`` nodes whose last node moves into a cycle.

    The cycle is undefined, and — because each line node's only move leads
    toward it — the undefinedness propagates back up the whole line: every
    position of the program is undefined.  Returns ``(program, line_nodes,
    cycle_nodes)``.
    """
    edges = list(cycle_edges(cycle_length, cycle_prefix))
    line_nodes = [line_prefix + str(i) for i in range(line_length)]
    for index in range(line_length - 1):
        edges.append((line_nodes[index], line_nodes[index + 1]))
    if line_nodes:
        edges.append((line_nodes[-1], cycle_prefix + "0"))
    cycle_nodes = [cycle_prefix + str(i) for i in range(cycle_length)]
    return normal_game_program(edges, move_name, winning_name), line_nodes, cycle_nodes


def cycle_with_escape_game_program(length, escape_from=1, move_name="move",
                                   winning_name="winning", prefix="c",
                                   escape_node="out"):
    """A cycle with one escape edge to a sink: the well-founded model
    becomes total (the escaping position wins, the rest resolve around the
    cycle).  Returns ``(program, nodes)``."""
    edges = list(cycle_edges(length, prefix))
    edges.append((prefix + str(escape_from), escape_node))
    nodes = [prefix + str(i) for i in range(length)] + [escape_node]
    return normal_game_program(edges, move_name, winning_name), nodes


def composed_move_game_program(edges, move_name="move", winning_name="winning",
                               edge_name="edge"):
    """Win/move where a move is a *double step* along ``edges``:
    ``move(X, Z) <- edge(X, Y), edge(Y, Z)``.

    The composed join is derived in its own (stratified) stratum below the
    negation cycle, which is what makes this the E13 benchmark workload:
    the semi-naive path runs it as one indexed join, while the grounding
    path instantiates it by scanning every ``edge`` atom per candidate
    binding — the unindexed-join blowup the register machine avoids.
    """
    lines = [
        "%s(X, Z) :- %s(X, Y), %s(Y, Z)." % (move_name, edge_name, edge_name),
        "%s(X) :- %s(X, Y), not %s(Y)." % (winning_name, move_name, winning_name),
    ]
    lines.extend(_fact_lines(edge_name, edges))
    return parse_program("\n".join(lines))


def two_hop_moves(edges):
    """The composed move relation ``{(x, z) : edge(x, y), edge(y, z)}`` —
    the plain-Python reference for :func:`composed_move_game_program`."""
    successors = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
    moves = set()
    for source, target in edges:
        for final in successors.get(target, ()):
            moves.add((source, final))
    return moves


def win_move_partition(edges):
    """The exact well-founded partition of the win/move game over ``edges``.

    Returns ``(winning, losing, undefined)`` node-name sets, computed by
    the game-theoretic backward induction (no logic engine involved): a
    node is winning when some successor is losing, losing when all its
    successors (possibly none) are winning, undefined otherwise — the
    standard characterization of the win/move well-founded model.
    """
    successors = {}
    nodes = set()
    for source, target in edges:
        successors.setdefault(source, []).append(target)
        nodes.add(source)
        nodes.add(target)
    winning, losing = set(), set()
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node in winning or node in losing:
                continue
            outs = successors.get(node, ())
            if any(target in losing for target in outs):
                winning.add(node)
                changed = True
            elif all(target in winning for target in outs):
                losing.add(node)
                changed = True
    return winning, losing, nodes - winning - losing


def multi_game_program(edge_lists, style="hilog", game_name="g", winning_name="w",
                       relation_prefix="move"):
    """A game program over several independent move relations.

    ``edge_lists`` is a sequence of edge lists; relation ``i`` is named
    ``<relation_prefix><i>``.  Returns ``(program, relation_names)``.
    """
    games = {}
    for index, edges in enumerate(edge_lists):
        games["%s%d" % (relation_prefix, index)] = list(edges)
    if style == "hilog":
        program = hilog_game_program(games, game_name=game_name, winning_name=winning_name)
    elif style == "datahilog":
        program = datahilog_game_program(games, game_name=game_name, winning_name=winning_name)
    else:
        raise ValueError("style must be 'hilog' or 'datahilog'")
    return program, sorted(games)
