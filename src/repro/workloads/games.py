"""The win/move game programs of Examples 6.1, 6.3 and 6.6.

Three formulations are provided:

* :func:`normal_game_program` — the normal program of Example 6.1,
  ``winning(X) <- move(X, Y), not winning(Y)`` over a single move relation.
* :func:`hilog_game_program` — the parameterized HiLog program of
  Example 6.3, ``winning(M)(X) <- game(M), M(X, Y), not winning(M)(Y)``.
* :func:`datahilog_game_program` — the Datahilog version of Section 6.1,
  ``winning(M, X) <- game(M), M(X, Y), not winning(M, Y)``, whose relevant
  atoms are finite by Lemma 6.3.

``multi_game_program`` builds a HiLog (or Datahilog) game program over many
independent move relations — the workload used by the magic-sets benchmark,
where a query about one game should not touch the others.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hilog.parser import parse_program
from repro.hilog.program import Program


def _fact_lines(relation, edges):
    return ["%s(%s, %s)." % (relation, source, target) for source, target in edges]


def normal_game_program(edges, move_name="move", winning_name="winning"):
    """Example 6.1: the normal win/move program over the given edges."""
    lines = ["%s(X) :- %s(X, Y), not %s(Y)." % (winning_name, move_name, winning_name)]
    lines.extend(_fact_lines(move_name, edges))
    return parse_program("\n".join(lines))


def hilog_game_program(games, game_name="game", winning_name="winning"):
    """Example 6.3: the parameterized HiLog win/move program.

    ``games`` maps a move-relation name (e.g. ``"move1"``) to its edge list.
    """
    lines = [
        "%s(M)(X) :- %s(M), M(X, Y), not %s(M)(Y)."
        % (winning_name, game_name, winning_name)
    ]
    for relation in sorted(games):
        lines.append("%s(%s)." % (game_name, relation))
    for relation in sorted(games):
        lines.extend(_fact_lines(relation, games[relation]))
    return parse_program("\n".join(lines))


def datahilog_game_program(games, game_name="game", winning_name="winning"):
    """The Datahilog variant ``winning(M, X)`` of the same game (Section 6.1)."""
    lines = [
        "%s(M, X) :- %s(M), M(X, Y), not %s(M, Y)."
        % (winning_name, game_name, winning_name)
    ]
    for relation in sorted(games):
        lines.append("%s(%s)." % (game_name, relation))
    for relation in sorted(games):
        lines.extend(_fact_lines(relation, games[relation]))
    return parse_program("\n".join(lines))


def multi_game_program(edge_lists, style="hilog", game_name="g", winning_name="w",
                       relation_prefix="move"):
    """A game program over several independent move relations.

    ``edge_lists`` is a sequence of edge lists; relation ``i`` is named
    ``<relation_prefix><i>``.  Returns ``(program, relation_names)``.
    """
    games = {}
    for index, edges in enumerate(edge_lists):
        games["%s%d" % (relation_prefix, index)] = list(edges)
    if style == "hilog":
        program = hilog_game_program(games, game_name=game_name, winning_name=winning_name)
    elif style == "datahilog":
        program = datahilog_game_program(games, game_name=game_name, winning_name=winning_name)
    else:
        raise ValueError("style must be 'hilog' or 'datahilog'")
    return program, sorted(games)
