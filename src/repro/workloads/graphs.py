"""Generators for the edge relations used by the game and transitive-closure
experiments.

All generators return lists of ``(source, target)`` string pairs; the
program builders in :mod:`repro.workloads.games` turn them into facts.
Generation is deterministic given the ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def _node(prefix, index):
    return "%s%d" % (prefix, index)


def chain_edges(length, prefix="n"):
    """A simple path ``n0 -> n1 -> ... -> n<length>`` (acyclic)."""
    return [(_node(prefix, i), _node(prefix, i + 1)) for i in range(length)]


def cycle_edges(length, prefix="c"):
    """A directed cycle of the given length (not acyclic)."""
    if length < 1:
        return []
    edges = [(_node(prefix, i), _node(prefix, (i + 1) % length)) for i in range(length)]
    return edges


def tree_edges(depth, branching=2, prefix="t"):
    """A complete tree of the given depth and branching factor, edges parent -> child."""
    edges = []
    current = [_node(prefix, 0)]
    counter = 1
    for _level in range(depth):
        next_level = []
        for parent in current:
            for _ in range(branching):
                child = _node(prefix, counter)
                counter += 1
                edges.append((parent, child))
                next_level.append(child)
        current = next_level
    return edges


def random_dag_edges(nodes, edges, seed=0, prefix="d"):
    """A random DAG: edges always go from a lower-numbered node to a higher one."""
    rng = random.Random(seed)
    if nodes < 2:
        return []
    result = set()
    attempts = 0
    while len(result) < edges and attempts < edges * 20:
        attempts += 1
        source = rng.randrange(0, nodes - 1)
        target = rng.randrange(source + 1, nodes)
        result.add((_node(prefix, source), _node(prefix, target)))
    return sorted(result)


def random_graph_edges(nodes, edges, seed=0, prefix="g", allow_self_loops=False):
    """A random directed graph (may contain cycles)."""
    rng = random.Random(seed)
    if nodes < 1:
        return []
    result = set()
    attempts = 0
    while len(result) < edges and attempts < edges * 20:
        attempts += 1
        source = rng.randrange(0, nodes)
        target = rng.randrange(0, nodes)
        if source == target and not allow_self_loops:
            continue
        result.add((_node(prefix, source), _node(prefix, target)))
    return sorted(result)


def is_acyclic(edge_list):
    """True when the edge list has no directed cycle (Kahn's algorithm)."""
    successors = {}
    indegree = {}
    nodes = set()
    for source, target in edge_list:
        successors.setdefault(source, []).append(target)
        indegree[target] = indegree.get(target, 0) + 1
        nodes.add(source)
        nodes.add(target)
    queue = [node for node in nodes if indegree.get(node, 0) == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for successor in successors.get(node, ()):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    return visited == len(nodes)
