"""Transitive-closure programs over generated edge relations.

The scaling workload of the semi-naive benchmark (E10): plain Datalog
transitive closure, its Datahilog variant parameterized by a graph name,
and the higher-order HiLog variant ``tc(G)`` of Example 5.2 (in its guarded,
strongly range-restricted form).  All builders take the ``(source, target)``
edge lists produced by :mod:`repro.workloads.graphs`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hilog.parser import parse_program
from repro.hilog.program import Program


def transitive_closure_program(edges, edge_name="e", tc_name="tc"):
    """Plain transitive closure: ``tc(X, Y) :- e(X, Y) | e(X, Z), tc(Z, Y)``."""
    lines = [
        "%s(X, Y) :- %s(X, Y)." % (tc_name, edge_name),
        "%s(X, Y) :- %s(X, Z), %s(Z, Y)." % (tc_name, edge_name, tc_name),
    ]
    lines.extend("%s(%s, %s)." % (edge_name, source, target) for source, target in edges)
    return parse_program("\n".join(lines))


def datahilog_closure_program(graphs, tc_name="tc", graph_name="graph"):
    """Datahilog closure over several named edge relations.

    ``graphs`` maps a relation name to its edge list; the generic rules are
    ``tc(G, X, Y) :- graph(G), G(X, Y)`` and its recursive twin, which stay
    within Datahilog (Definition 6.7) so the relevant atom set is finite.
    """
    lines = [
        "%s(G, X, Y) :- %s(G), G(X, Y)." % (tc_name, graph_name),
        "%s(G, X, Y) :- %s(G), G(X, Z), %s(G, Z, Y)." % (tc_name, graph_name, tc_name),
    ]
    for relation in sorted(graphs):
        lines.append("%s(%s)." % (graph_name, relation))
    for relation in sorted(graphs):
        lines.extend("%s(%s, %s)." % (relation, s, t) for s, t in graphs[relation])
    return parse_program("\n".join(lines))


def hilog_closure_program(graphs, tc_name="tc", graph_name="graph"):
    """The guarded higher-order closure of Example 5.2: ``tc(G)(X, Y)``."""
    lines = [
        "%s(G)(X, Y) :- %s(G), G(X, Y)." % (tc_name, graph_name),
        "%s(G)(X, Y) :- %s(G), G(X, Z), %s(G)(Z, Y)." % (tc_name, graph_name, tc_name),
    ]
    for relation in sorted(graphs):
        lines.append("%s(%s)." % (graph_name, relation))
    for relation in sorted(graphs):
        lines.extend("%s(%s, %s)." % (relation, s, t) for s, t in graphs[relation])
    return parse_program("\n".join(lines))


def expected_closure(edges):
    """Reference transitive closure in plain Python: set of ``(x, y)`` pairs."""
    successors = {}
    for source, target in edges:
        successors.setdefault(source, set()).add(target)
    closure = set()
    for start in list(successors):
        stack = list(successors.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(successors.get(node, ()))
    return closure
