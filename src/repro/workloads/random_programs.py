"""Random range-restricted normal programs.

These generators feed the reduction-theorem experiment (E2): Theorems 4.1
and 4.2 state that for *range-restricted* normal programs the HiLog
well-founded model (respectively the HiLog stable models) conservatively
extend the normal ones.  The benchmark samples many random range-restricted
programs and checks the conservative-extension relation on each.

The generated programs are deliberately modest in size (the check grounds
them over a HiLog universe fragment) and are stratified by construction so
that both semantics are total and stable models exist; a switch allows
unstratified negation for stress tests of the well-founded comparison.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Sym, Var


def random_range_restricted_program(n_predicates=3, n_constants=3, n_facts=6, n_rules=4,
                                    max_body=3, arity=2, negation="stratified", seed=0):
    """Generate a random range-restricted normal program.

    Args:
        n_predicates: number of IDB/EDB predicate symbols ``p0, p1, ...``.
        n_constants: number of constants ``c0, c1, ...``.
        n_facts: number of ground facts.
        n_rules: number of proper rules.
        max_body: maximum number of body literals per rule.
        arity: arity of every predicate.
        negation: ``"none"``, ``"stratified"`` (negations only on
            lower-numbered predicates, keeping the program stratified) or
            ``"free"`` (negation on any predicate).
        seed: RNG seed (generation is deterministic given the seed).
    """
    if negation not in ("none", "stratified", "free"):
        raise ValueError("negation must be 'none', 'stratified' or 'free'")
    rng = random.Random(seed)
    predicates = [Sym("p%d" % i) for i in range(n_predicates)]
    constants = [Sym("c%d" % i) for i in range(n_constants)]

    def random_ground_atom(predicate=None):
        predicate = predicate if predicate is not None else rng.choice(predicates)
        return App(predicate, tuple(rng.choice(constants) for _ in range(arity)))

    rules = [Rule(random_ground_atom()) for _ in range(n_facts)]

    variables = [Var("X%d" % i) for i in range(arity * 2)]
    for _ in range(n_rules):
        head_index = rng.randrange(n_predicates)
        head_vars = [rng.choice(variables) for _ in range(arity)]
        head = App(predicates[head_index], tuple(head_vars))

        body = []
        # One positive literal containing every head variable keeps the rule
        # range restricted (Definition 4.1).
        anchor_vars = list(head_vars)
        while len(anchor_vars) < arity:
            anchor_vars.append(rng.choice(variables))
        body.append(Literal(App(rng.choice(predicates), tuple(anchor_vars[:arity]))))
        if len(set(head_vars)) > arity:
            body.append(Literal(App(rng.choice(predicates), tuple(head_vars[arity:]))))

        for _ in range(rng.randint(0, max_body - 1)):
            literal_vars = [rng.choice(head_vars + [rng.choice(variables)]) for _ in range(arity)]
            predicate_index = rng.randrange(n_predicates)
            positive = True
            if negation != "none" and rng.random() < 0.4:
                if negation == "stratified":
                    if predicate_index < head_index:
                        positive = False
                else:
                    positive = False
            atom = App(predicates[predicate_index], tuple(literal_vars))
            if positive:
                body.append(Literal(atom))
            else:
                # Negative literals only over variables already bound by the
                # anchor literal, preserving range restriction.
                bound_vars = [v for v in literal_vars if v in anchor_vars[:arity] or v in head_vars]
                while len(bound_vars) < arity:
                    bound_vars.append(rng.choice(anchor_vars[:arity] + head_vars))
                body.append(Literal(App(predicates[predicate_index], tuple(bound_vars[:arity])),
                                    positive=False))
        rules.append(Rule(head, tuple(body)))
    return Program(tuple(rules))
