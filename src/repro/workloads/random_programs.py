"""Random range-restricted normal programs.

These generators feed the reduction-theorem experiment (E2): Theorems 4.1
and 4.2 state that for *range-restricted* normal programs the HiLog
well-founded model (respectively the HiLog stable models) conservatively
extend the normal ones.  The benchmark samples many random range-restricted
programs and checks the conservative-extension relation on each.

The generated programs are deliberately modest in size (the check grounds
them over a HiLog universe fragment) and are stratified by construction so
that both semantics are total and stable models exist; a switch allows
unstratified negation for stress tests of the well-founded comparison.

:func:`random_nonstratified_program` targets the class *between* stratified
and arbitrary normal programs — range-restricted programs with controlled
cycles through negation (win/move-shaped loops seeded deliberately, plus
free negation elsewhere).  It feeds the differential-testing harness for
the well-founded semantics (``tests/engine/test_wellfounded_agreement.py``):
its samples routinely have genuinely three-valued well-founded models, so
the semi-naive alternating fixpoint, the ground alternating fixpoint and
the paper-faithful ``W_P`` iteration can be compared on all three truth
values instead of only on totals.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Sym, Var


def random_range_restricted_program(n_predicates=3, n_constants=3, n_facts=6, n_rules=4,
                                    max_body=3, arity=2, negation="stratified", seed=0):
    """Generate a random range-restricted normal program.

    Args:
        n_predicates: number of IDB/EDB predicate symbols ``p0, p1, ...``.
        n_constants: number of constants ``c0, c1, ...``.
        n_facts: number of ground facts.
        n_rules: number of proper rules.
        max_body: maximum number of body literals per rule.
        arity: arity of every predicate.
        negation: ``"none"``, ``"stratified"`` (negations only on
            lower-numbered predicates, keeping the program stratified) or
            ``"free"`` (negation on any predicate).
        seed: RNG seed (generation is deterministic given the seed).
    """
    if negation not in ("none", "stratified", "free"):
        raise ValueError("negation must be 'none', 'stratified' or 'free'")
    rng = random.Random(seed)
    predicates = [Sym("p%d" % i) for i in range(n_predicates)]
    constants = [Sym("c%d" % i) for i in range(n_constants)]

    def random_ground_atom(predicate=None):
        predicate = predicate if predicate is not None else rng.choice(predicates)
        return App(predicate, tuple(rng.choice(constants) for _ in range(arity)))

    rules = [Rule(random_ground_atom()) for _ in range(n_facts)]

    variables = [Var("X%d" % i) for i in range(arity * 2)]
    for _ in range(n_rules):
        head_index = rng.randrange(n_predicates)
        head_vars = [rng.choice(variables) for _ in range(arity)]
        head = App(predicates[head_index], tuple(head_vars))

        body = []
        # One positive literal containing every head variable keeps the rule
        # range restricted (Definition 4.1).
        anchor_vars = list(head_vars)
        while len(anchor_vars) < arity:
            anchor_vars.append(rng.choice(variables))
        body.append(Literal(App(rng.choice(predicates), tuple(anchor_vars[:arity]))))
        if len(set(head_vars)) > arity:
            body.append(Literal(App(rng.choice(predicates), tuple(head_vars[arity:]))))

        for _ in range(rng.randint(0, max_body - 1)):
            literal_vars = [rng.choice(head_vars + [rng.choice(variables)]) for _ in range(arity)]
            predicate_index = rng.randrange(n_predicates)
            positive = True
            if negation != "none" and rng.random() < 0.4:
                if negation == "stratified":
                    if predicate_index < head_index:
                        positive = False
                else:
                    positive = False
            atom = App(predicates[predicate_index], tuple(literal_vars))
            if positive:
                body.append(Literal(atom))
            else:
                # Negative literals only over variables already bound by the
                # anchor literal, preserving range restriction.
                bound_vars = [v for v in literal_vars if v in anchor_vars[:arity] or v in head_vars]
                while len(bound_vars) < arity:
                    bound_vars.append(rng.choice(anchor_vars[:arity] + head_vars))
                body.append(Literal(App(predicates[predicate_index], tuple(bound_vars[:arity])),
                                    positive=False))
        rules.append(Rule(head, tuple(body)))
    return Program(tuple(rules))


def random_nonstratified_program(n_predicates=4, n_constants=3, n_facts=8,
                                 n_rules=5, max_body=3, arity=2,
                                 cycle_length=2, seed=0):
    """Generate a random range-restricted normal program with a *guaranteed*
    cycle through negation.

    On top of a :func:`random_range_restricted_program` sample with free
    negation, ``cycle_length`` win/move-shaped rules are added that close a
    negation loop through the first ``cycle_length`` predicates::

        p0(X0, X1) :- p1(X0, X1), not p1(X1, X0).   # and cyclically on

    Each rule's positive literal binds every variable (range restriction,
    Definition 4.1) and its negated predicate is the *next* predicate in
    the loop, so the predicate dependency graph always has a negative
    cycle ``p0 -> p1 -> ... -> p0`` — the class the stratified engine
    refuses and the alternating-fixpoint evaluator exists for.  Whether any
    ground instance actually loops depends on the random facts, so samples
    cover total and genuinely partial well-founded models alike.
    """
    if cycle_length < 1:
        raise ValueError("cycle_length must be at least 1")
    if cycle_length > n_predicates:
        raise ValueError("cycle_length cannot exceed n_predicates")
    base = random_range_restricted_program(
        n_predicates=n_predicates,
        n_constants=n_constants,
        n_facts=n_facts,
        n_rules=n_rules,
        max_body=max_body,
        arity=arity,
        negation="free",
        seed=seed,
    )
    rng = random.Random(seed * 7919 + 13)
    predicates = [Sym("p%d" % i) for i in range(n_predicates)]
    variables = [Var("X%d" % i) for i in range(arity)]
    cycle_rules = []
    for index in range(cycle_length):
        head_pred = predicates[index]
        next_pred = predicates[(index + 1) % cycle_length]
        head_vars = tuple(variables)
        # The positive anchor binds every head variable; the negated
        # literal permutes them so ground loops can actually close.
        anchor = App(next_pred, head_vars)
        negated_vars = list(head_vars)
        rng.shuffle(negated_vars)
        cycle_rules.append(
            Rule(
                App(head_pred, head_vars),
                (
                    Literal(anchor),
                    Literal(App(next_pred, tuple(negated_vars)), positive=False),
                ),
            )
        )
    return Program(base.rules + tuple(cycle_rules))
