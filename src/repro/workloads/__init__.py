"""Workload generators for the experiments and benchmarks.

The paper's examples revolve around a handful of program families; this
package generates parameterized instances of each:

* :mod:`repro.workloads.graphs` — random directed graphs (acyclic chains,
  DAGs, cyclic graphs) used for transitive closure and the win/move game.
* :mod:`repro.workloads.games` — the win/move game programs of Examples 6.1,
  6.3 and 6.6, in normal, HiLog and Datahilog forms, over generated move
  relations, plus cyclic-game builders (pure cycles, lines into cycles,
  escapes, composed moves) and the game-theoretic
  ``win_move_partition`` reference for three-valued models.
* :mod:`repro.workloads.parts` — part hierarchies and the parts-explosion
  HiLog program with aggregation (Section 6).
* :mod:`repro.workloads.random_programs` — random range-restricted normal
  programs for the reduction-theorem and preservation experiments, and
  random *non-stratified* programs (controlled negation cycles) for the
  well-founded differential-testing harness.
* :mod:`repro.workloads.closure` — transitive-closure programs (plain,
  Datahilog and higher-order) for the semi-naive scaling benchmark.
* :mod:`repro.workloads.streams` — update-sequence builders (edge churn,
  growing chains, sliding windows, win/move streams) for the incremental
  maintenance benchmark and the session property tests.
"""

from repro.workloads.closure import (
    datahilog_closure_program,
    expected_closure,
    hilog_closure_program,
    transitive_closure_program,
)
from repro.workloads.graphs import (
    chain_edges,
    cycle_edges,
    random_dag_edges,
    random_graph_edges,
    tree_edges,
)
from repro.workloads.games import (
    composed_move_game_program,
    cycle_game_program,
    cycle_with_escape_game_program,
    datahilog_game_program,
    hilog_game_program,
    line_into_cycle_game_program,
    normal_game_program,
    multi_game_program,
    two_hop_moves,
    win_move_partition,
)
from repro.workloads.parts import bicycle_parts_program, parts_explosion_program, random_hierarchy
from repro.workloads.random_programs import (
    random_nonstratified_program,
    random_range_restricted_program,
)
from repro.workloads.streams import (
    Update,
    edge_atom,
    edge_churn_stream,
    growing_chain_stream,
    insert_edges,
    replay,
    retract_edges,
    sliding_window_stream,
    win_move_stream,
)

__all__ = [
    "chain_edges",
    "cycle_edges",
    "tree_edges",
    "random_dag_edges",
    "random_graph_edges",
    "normal_game_program",
    "hilog_game_program",
    "datahilog_game_program",
    "multi_game_program",
    "cycle_game_program",
    "line_into_cycle_game_program",
    "cycle_with_escape_game_program",
    "composed_move_game_program",
    "two_hop_moves",
    "win_move_partition",
    "random_nonstratified_program",
    "bicycle_parts_program",
    "parts_explosion_program",
    "random_hierarchy",
    "random_range_restricted_program",
    "transitive_closure_program",
    "datahilog_closure_program",
    "hilog_closure_program",
    "expected_closure",
    "Update",
    "edge_atom",
    "insert_edges",
    "retract_edges",
    "edge_churn_stream",
    "growing_chain_stream",
    "sliding_window_stream",
    "win_move_stream",
    "replay",
]
