"""Comparison and reporting helpers used by the experiments."""

from repro.analysis.compare import (
    ComparisonResult,
    compare_interpretations,
    hilog_vs_normal_reduction,
)
from repro.analysis.report import ExperimentRow, format_table, print_table

__all__ = [
    "ComparisonResult",
    "compare_interpretations",
    "hilog_vs_normal_reduction",
    "ExperimentRow",
    "format_table",
    "print_table",
]
