"""Small plain-text table formatting used by the benchmark harness.

Every benchmark prints the rows it reproduces in a uniform format so that
EXPERIMENTS.md can paste them verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence


class ExperimentRow(NamedTuple):
    """One printed row: a label plus a mapping of column name to value."""

    label: str
    values: dict


def format_table(title, columns, rows):
    """Render rows as a fixed-width text table.

    ``columns`` is the ordered list of column names (the first column is the
    row label); ``rows`` is an iterable of :class:`ExperimentRow`.
    """
    rows = list(rows)
    widths = [max(len(columns[0]), max((len(str(row.label)) for row in rows), default=0))]
    for column in columns[1:]:
        width = len(column)
        for row in rows:
            width = max(width, len(_fmt(row.values.get(column, ""))))
        widths.append(width)

    lines = [title, "=" * len(title)]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        cells = [str(row.label).ljust(widths[0])]
        for column, width in zip(columns[1:], widths[1:]):
            cells.append(_fmt(row.values.get(column, "")).rjust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def print_table(title, columns, rows):
    """Format and print a table, returning the formatted string."""
    text = format_table(title, columns, rows)
    print("\n" + text + "\n")
    return text


def _fmt(value):
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)
