"""Model comparison utilities.

The experiments repeatedly ask the same two questions:

* do two three-valued interpretations agree (and where do they differ)?
* does the HiLog semantics of a normal program conservatively extend its
  normal semantics (Theorems 4.1 and 4.2)?

This module packages both as reusable functions returning structured
results that the benchmarks print.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple, Optional, Tuple

from repro.core.semantics import (
    hilog_stable_models,
    hilog_well_founded_model,
    normal_stable_models,
    normal_well_founded_model,
)
from repro.engine.interpretation import Interpretation, conservatively_extends
from repro.hilog.program import Program
from repro.hilog.terms import Term


class ComparisonResult(NamedTuple):
    """Differences between two interpretations over a shared atom set."""

    equal: bool
    only_true_in_first: FrozenSet[Term]
    only_true_in_second: FrozenSet[Term]
    only_false_in_first: FrozenSet[Term]
    only_false_in_second: FrozenSet[Term]
    undefined_disagreements: FrozenSet[Term]


def compare_interpretations(first, second, atoms=None):
    """Compare two interpretations on ``atoms`` (default: union of bases)."""
    if atoms is None:
        atoms = set(first.base) | set(second.base)
    only_true_first = set()
    only_true_second = set()
    only_false_first = set()
    only_false_second = set()
    undefined_disagreements = set()
    for atom in atoms:
        first_value = first.value(atom)
        second_value = second.value(atom)
        if first_value == second_value:
            continue
        if first_value == "true":
            only_true_first.add(atom)
        if second_value == "true":
            only_true_second.add(atom)
        if first_value == "false":
            only_false_first.add(atom)
        if second_value == "false":
            only_false_second.add(atom)
        if "undefined" in (first_value, second_value):
            undefined_disagreements.add(atom)
    equal = not (only_true_first or only_true_second or only_false_first or only_false_second)
    return ComparisonResult(
        equal,
        frozenset(only_true_first),
        frozenset(only_true_second),
        frozenset(only_false_first),
        frozenset(only_false_second),
        frozenset(undefined_disagreements),
    )


class ReductionCheck(NamedTuple):
    """Outcome of the Theorem 4.1 / 4.2 check on one normal program."""

    well_founded_conservative: bool
    stable_correspondence: Optional[bool]
    hilog_model: Interpretation
    normal_model: Interpretation


def hilog_vs_normal_reduction(program, grounding="relevant", max_depth=1, check_stable=True,
                              max_branch_atoms=22):
    """Check Theorems 4.1/4.2 on a (range-restricted) normal program.

    Computes the well-founded model both as a normal program (over its
    constants) and as a HiLog program, checks that the latter conservatively
    extends the former, and — when ``check_stable`` is set — checks the
    one-to-one correspondence of stable models (every HiLog stable model
    conservatively extends exactly one normal stable model and vice versa).

    ``grounding`` selects the HiLog grounding strategy: ``"relevant"``
    (default — sound for range-restricted programs and fast enough for
    random-program sweeps) or ``"universe"`` (faithful exhaustive
    instantiation over a depth-``max_depth`` fragment; use only for very
    small vocabularies, since the instantiation is exponential in the number
    of rule variables).
    """
    normal_model = normal_well_founded_model(program)
    hilog_model = hilog_well_founded_model(program, grounding=grounding, max_depth=max_depth)
    program_symbols = program.symbols()
    wf_ok = conservatively_extends(hilog_model, normal_model, smaller_symbols=program_symbols)

    stable_ok = None
    if check_stable:
        normal_stables = normal_stable_models(program, max_branch_atoms=max_branch_atoms)
        hilog_stables = hilog_stable_models(
            program, grounding=grounding, max_depth=max_depth, max_branch_atoms=max_branch_atoms
        )
        if len(normal_stables) != len(hilog_stables):
            stable_ok = False
        else:
            matched = []
            for hilog_stable in hilog_stables:
                partners = [
                    index
                    for index, normal_stable in enumerate(normal_stables)
                    if conservatively_extends(hilog_stable, normal_stable,
                                              smaller_symbols=program_symbols)
                ]
                matched.append(partners)
            used = set()
            stable_ok = True
            for partners in matched:
                free = [index for index in partners if index not in used]
                if not free:
                    stable_ok = False
                    break
                used.add(free[0])
    return ReductionCheck(wf_ok, stable_ok, hilog_model, normal_model)
